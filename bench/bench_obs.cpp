// Observability hot-path cost: what a request pays for being traced.
//
// The serving stack wraps every request in spans (server.request,
// engine.query, discovery steps), so span begin+end sits on the latency
// path of every served query.  The per-thread span buffers exist to keep
// that cost flat under concurrency — span end appends under a mutex only
// its own thread touches, and the tracer's global lock is taken only by
// the exporter.  Reported cases:
//
//   span_disabled        obs off: a span must cost ~nothing (the common
//                        production configuration)
//   span_enabled         begin+end on one thread (~100ns is the bar the
//                        header comment of obs/trace.hpp commits to)
//   span_enabled_traced  the same under a TraceScope — adds the id
//                        bookkeeping a served request actually does
//   span_contended       8 threads recording concurrently; per-thread
//                        buffers should keep per-span cost near the
//                        single-thread number instead of serializing
//   histogram_record     one Histogram::record — the other per-request
//                        obs cost (latency histograms)
//   trace_id_roundtrip   generate + format + parse of a wire trace id
#include <benchmark/benchmark.h>

#include "obs/obs.hpp"

namespace {

using namespace upsim;

void BM_SpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span", "bench");
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span", "bench");
    benchmark::DoNotOptimize(span);
  }
  obs::Tracer::global().clear();
  obs::set_enabled(false);
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanEnabledTraced(benchmark::State& state) {
  obs::set_enabled(true);
  obs::TraceScope trace({obs::generate_trace_id(), 0});
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span", "bench");
    benchmark::DoNotOptimize(span);
  }
  obs::Tracer::global().clear();
  obs::set_enabled(false);
}
BENCHMARK(BM_SpanEnabledTraced);

// ->Threads(8): google-benchmark runs the loop body on 8 threads at once,
// so this measures recording *contention*, the case the per-thread
// buffers are for.
void BM_SpanContended(benchmark::State& state) {
  if (state.thread_index() == 0) obs::set_enabled(true);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span", "bench");
    benchmark::DoNotOptimize(span);
  }
  if (state.thread_index() == 0) {
    obs::Tracer::global().clear();
    obs::set_enabled(false);
  }
}
BENCHMARK(BM_SpanContended)->Threads(8);

void BM_HistogramRecord(benchmark::State& state) {
  obs::set_enabled(true);
  auto& h = obs::Registry::global().histogram("bench.latency_us");
  double v = 1.0;
  for (auto _ : state) {
    h.record(v);
    v = v < 1e6 ? v * 1.01 : 1.0;
  }
  obs::set_enabled(false);
}
BENCHMARK(BM_HistogramRecord);

void BM_TraceIdRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    const std::uint64_t id = obs::generate_trace_id();
    benchmark::DoNotOptimize(obs::parse_trace_id(obs::format_trace_id(id)));
  }
}
BENCHMARK(BM_TraceIdRoundtrip);

}  // namespace
