// E8 — scalability of all-paths discovery (Sec. V-D of the paper).
//
// Expected shapes:
//   * trees/campus: near-linear in vertex count (one or few paths);
//   * Erdős–Rényi: cost grows with edge density;
//   * complete graphs: factorial blow-up — the O(n!) worst case the paper
//     names; n is capped accordingly;
//   * recursive vs iterative DFS: same visits, different constant;
//   * serial vs thread-pool multi-pair: parallel wins once pairs >> cores;
//   * legacy vs CSR (BM_DiscoverTree / BM_DiscoverCampus): the flat-array
//     kernel against the generic-graph walk on identical topologies from
//     ~10^2 to ~10^5 components, plus the one-off projection cost
//     (BM_CsrProjection) the engine pays per structural epoch.
#include <benchmark/benchmark.h>

#include "netgen/generators.hpp"
#include "pathdisc/csr.hpp"
#include "pathdisc/path_discovery.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace upsim;
using graph::VertexId;

void BM_Tree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::tree(n, 2);
  const VertexId s{static_cast<std::uint32_t>(n / 2)};
  const VertexId t{static_cast<std::uint32_t>(n - 1)};
  for (auto _ : state) {
    auto set = pathdisc::discover(g, s, t);
    benchmark::DoNotOptimize(set);
  }
  state.counters["vertices"] = static_cast<double>(n);
}
BENCHMARK(BM_Tree)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Campus(benchmark::State& state) {
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::campus(spec);
  const auto endpoints = netgen::campus_endpoints(spec);
  const VertexId s = g.vertex_by_name(endpoints.client);
  const VertexId t = g.vertex_by_name(endpoints.server);
  std::size_t paths = 0;
  for (auto _ : state) {
    auto set = pathdisc::discover(g, s, t);
    paths = set.count();
    benchmark::DoNotOptimize(set);
  }
  state.counters["vertices"] = static_cast<double>(g.vertex_count());
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_Campus)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ErdosRenyiDensity(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  const auto g = netgen::erdos_renyi(12, p, 7);
  std::size_t paths = 0;
  for (auto _ : state) {
    auto set = pathdisc::discover(g, VertexId{0}, VertexId{11});
    paths = set.count();
    benchmark::DoNotOptimize(set);
  }
  state.counters["density_pct"] = static_cast<double>(state.range(0));
  state.counters["edges"] = static_cast<double>(g.edge_count());
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_ErdosRenyiDensity)->Arg(0)->Arg(10)->Arg(25)->Arg(50);

void BM_CompleteGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::complete(n);
  std::size_t paths = 0;
  for (auto _ : state) {
    auto set = pathdisc::discover(
        g, VertexId{0}, VertexId{static_cast<std::uint32_t>(n - 1)});
    paths = set.count();
    benchmark::DoNotOptimize(set);
  }
  state.counters["paths"] = static_cast<double>(paths);  // ~ (n-2)! * e
}
BENCHMARK(BM_CompleteGraph)->DenseRange(4, 11);

void BM_FatTree(benchmark::State& state) {
  // Data-center redundancy: inter-pod host pairs in a k-ary fat tree.
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::fat_tree(k);
  const VertexId s = g.vertex_by_name("h0");
  const VertexId t =
      g.vertex_by_name("h" + std::to_string(k * k * k / 4 - 1));
  std::size_t paths = 0;
  for (auto _ : state) {
    auto set = pathdisc::discover(g, s, t);
    paths = set.count();
    benchmark::DoNotOptimize(set);
  }
  state.counters["vertices"] = static_cast<double>(g.vertex_count());
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_FatTree)->Arg(2)->Arg(4);

void BM_Algorithm(benchmark::State& state) {
  const auto algorithm = state.range(0) == 0
                             ? pathdisc::Algorithm::RecursiveDfs
                             : pathdisc::Algorithm::IterativeDfs;
  const auto g = netgen::erdos_renyi(16, 0.3, 3);
  pathdisc::Options options;
  options.algorithm = algorithm;
  for (auto _ : state) {
    auto set = pathdisc::discover(g, VertexId{0}, VertexId{15}, options);
    benchmark::DoNotOptimize(set);
  }
  state.SetLabel(state.range(0) == 0 ? "recursive" : "iterative");
}
BENCHMARK(BM_Algorithm)->Arg(0)->Arg(1);

void BM_MultiPair(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  netgen::CampusSpec spec;
  spec.distribution = 16;
  spec.clients_per_edge = 4;
  const auto g = netgen::campus(spec);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  const VertexId server = g.vertex_by_name("srv0");
  for (std::uint32_t i = 0; i < 64; ++i) {
    pairs.emplace_back(g.vertex_by_name("t" + std::to_string(i)), server);
  }
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  for (auto _ : state) {
    auto sets = pathdisc::discover_all(g, pairs, {}, pool.get());
    benchmark::DoNotOptimize(sets);
  }
  state.SetLabel(threads == 0 ? "serial" : std::to_string(threads) + "T");
  state.counters["pairs"] = static_cast<double>(pairs.size());
}
BENCHMARK(BM_MultiPair)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// -- legacy vs CSR (the ROADMAP item 2 comparison) ---------------------------
//
// Identical topology, identical endpoints, identical Options: the only
// variable is the data layout the kernel walks.  Tree sizes step decades
// from 10^2 to 10^5 vertices.  Campus sizes step component counts the same
// way via the distribution-switch count (components ~= 9*D + 6); the
// largest rung drops redundant uplinks because the redundant all-paths
// walk is quadratic in D, which would swamp the layout comparison.

void BM_DiscoverTreeLegacy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::tree(n, 2);
  const VertexId s{static_cast<std::uint32_t>(n / 2)};
  const VertexId t{static_cast<std::uint32_t>(n - 1)};
  for (auto _ : state) {
    auto set = pathdisc::discover(g, s, t);
    benchmark::DoNotOptimize(set);
  }
  state.counters["vertices"] = static_cast<double>(n);
}
BENCHMARK(BM_DiscoverTreeLegacy)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DiscoverTreeCsr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::tree(n, 2);
  const pathdisc::CsrView view(g);
  const VertexId s{static_cast<std::uint32_t>(n / 2)};
  const VertexId t{static_cast<std::uint32_t>(n - 1)};
  for (auto _ : state) {
    auto set = view.discover(s, t);
    benchmark::DoNotOptimize(set);
  }
  state.counters["vertices"] = static_cast<double>(n);
}
BENCHMARK(BM_DiscoverTreeCsr)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

netgen::CampusSpec scaled_campus(std::int64_t distribution) {
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(distribution);
  spec.redundant_uplinks = distribution <= 1110;
  return spec;
}

void BM_DiscoverCampusLegacy(benchmark::State& state) {
  const auto spec = scaled_campus(state.range(0));
  const auto g = netgen::campus(spec);
  const auto endpoints = netgen::campus_endpoints(spec);
  const VertexId s = g.vertex_by_name(endpoints.client);
  const VertexId t = g.vertex_by_name(endpoints.server);
  std::size_t paths = 0;
  for (auto _ : state) {
    auto set = pathdisc::discover(g, s, t);
    paths = set.count();
    benchmark::DoNotOptimize(set);
  }
  state.counters["vertices"] = static_cast<double>(g.vertex_count());
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_DiscoverCampusLegacy)
    ->Arg(10)->Arg(110)->Arg(1110)->Arg(11110)->Unit(benchmark::kMicrosecond);

void BM_DiscoverCampusCsr(benchmark::State& state) {
  const auto spec = scaled_campus(state.range(0));
  const auto g = netgen::campus(spec);
  const pathdisc::CsrView view(g);
  const auto endpoints = netgen::campus_endpoints(spec);
  const VertexId s = g.vertex_by_name(endpoints.client);
  const VertexId t = g.vertex_by_name(endpoints.server);
  std::size_t paths = 0;
  for (auto _ : state) {
    auto set = view.discover(s, t);
    paths = set.count();
    benchmark::DoNotOptimize(set);
  }
  state.counters["vertices"] = static_cast<double>(g.vertex_count());
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_DiscoverCampusCsr)
    ->Arg(10)->Arg(110)->Arg(1110)->Arg(11110)->Unit(benchmark::kMicrosecond);

void BM_CsrProjection(benchmark::State& state) {
  // What the engine pays once per structural epoch to enable the flat
  // kernel for every discovery until the next topology change.
  const auto spec = scaled_campus(state.range(0));
  const auto g = netgen::campus(spec);
  for (auto _ : state) {
    pathdisc::CsrView view(g);
    benchmark::DoNotOptimize(view);
  }
  state.counters["vertices"] = static_cast<double>(g.vertex_count());
  state.counters["edges"] = static_cast<double>(g.edge_count());
}
BENCHMARK(BM_CsrProjection)
    ->Arg(10)->Arg(110)->Arg(1110)->Arg(11110)->Unit(benchmark::kMicrosecond);

void BM_BoundedLength(benchmark::State& state) {
  // k-hop bounded discovery keeps dense cores tractable.
  const auto g = netgen::complete(12);
  pathdisc::Options options;
  options.max_path_length = static_cast<std::size_t>(state.range(0));
  std::size_t paths = 0;
  for (auto _ : state) {
    auto set = pathdisc::discover(g, VertexId{0}, VertexId{11}, options);
    paths = set.count();
    benchmark::DoNotOptimize(set);
  }
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_BoundedLength)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

}  // namespace
