// E9 — the dynamicity argument of Sec. V-A3, quantified.
//
// The methodology separates infrastructure model, service description and
// mapping precisely so that each change class touches as little as
// possible.  Expected shape: a mapping-only perspective change is orders of
// magnitude cheaper than rebuilding and re-importing the whole model, and
// re-import cost scales with topology size while per-perspective cost does
// not (on tree-like networks).
#include <benchmark/benchmark.h>

#include "casestudy/usi.hpp"
#include "core/upsim_generator.hpp"
#include "netgen/generators.hpp"

namespace {

using namespace upsim;

void BM_UserMoves_MappingOnly(benchmark::State& state) {
  // The user moves between two clients; regenerate by re-mapping only.
  const auto cs = casestudy::make_usi_case_study();
  const auto& printing =
      cs.services->get_composite(casestudy::printing_service_name());
  core::UpsimGenerator generator(*cs.infrastructure);
  const auto m1 = cs.printing_mapping("t1", "p2");
  const auto m2 = cs.printing_mapping("t15", "p3");
  bool flip = false;
  for (auto _ : state) {
    auto result = generator.generate(printing, flip ? m1 : m2, "view");
    flip = !flip;
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UserMoves_MappingOnly);

void BM_UserMoves_FullRebuild(benchmark::State& state) {
  // The naive alternative: rebuild the models and re-import everything for
  // every perspective change.
  bool flip = false;
  for (auto _ : state) {
    const auto cs = casestudy::make_usi_case_study();
    const auto& printing =
        cs.services->get_composite(casestudy::printing_service_name());
    core::UpsimGenerator generator(*cs.infrastructure);
    auto result = generator.generate(
        printing,
        flip ? cs.printing_mapping("t1", "p2")
             : cs.printing_mapping("t15", "p3"),
        "view");
    flip = !flip;
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UserMoves_FullRebuild);

void BM_ServiceMigration_MappingOnly(benchmark::State& state) {
  const auto cs = casestudy::make_usi_case_study();
  const auto& printing =
      cs.services->get_composite(casestudy::printing_service_name());
  core::UpsimGenerator generator(*cs.infrastructure);
  const auto on_printS = cs.mapping_t1_p2();
  auto on_file1 = on_printS;
  for (const auto& pair : on_file1.pairs()) {
    const auto swap = [](const std::string& id) {
      return id == "printS" ? std::string("file1") : id;
    };
    on_file1.map(pair.atomic_service, swap(pair.requester),
                 swap(pair.provider));
  }
  bool flip = false;
  for (auto _ : state) {
    auto result =
        generator.generate(printing, flip ? on_printS : on_file1, "view");
    flip = !flip;
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ServiceMigration_MappingOnly);

void BM_PerspectiveChange_ScalesWithTopology(benchmark::State& state) {
  // Mapping-only regeneration cost versus campus size: stays flat-ish
  // because discovery touches only the user's region plus the core.
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto net = netgen::uml_campus(spec);
  service::ServiceCatalog services;
  services.define_atomic("request");
  services.define_atomic("respond");
  const auto& svc = services.define_sequence("echo", {"request", "respond"});
  mapping::ServiceMapping m1;
  m1.map("request", "t0", "srv0");
  m1.map("respond", "srv0", "t0");
  mapping::ServiceMapping m2;
  m2.map("request", "t1", "srv0");
  m2.map("respond", "srv0", "t1");
  core::UpsimGenerator generator(*net.infrastructure);
  bool flip = false;
  for (auto _ : state) {
    auto result = generator.generate(svc, flip ? m1 : m2, "view");
    flip = !flip;
    benchmark::DoNotOptimize(result);
  }
  state.counters["components"] =
      static_cast<double>(net.infrastructure->instance_count());
}
BENCHMARK(BM_PerspectiveChange_ScalesWithTopology)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);

void BM_TopologyChange_RequiresReimport(benchmark::State& state) {
  // The change class that DOES require a new import: measure it for scale
  // comparison against the mapping-only path above.
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto net = netgen::uml_campus(spec);
  for (auto _ : state) {
    core::UpsimGenerator generator(*net.infrastructure);
    benchmark::DoNotOptimize(generator.infrastructure_graph().vertex_count());
  }
  state.counters["components"] =
      static_cast<double>(net.infrastructure->instance_count());
}
BENCHMARK(BM_TopologyChange_RequiresReimport)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
