// E9 — the dynamicity argument of Sec. V-A3, quantified.
//
// The methodology separates infrastructure model, service description and
// mapping precisely so that each change class touches as little as
// possible.  Two families of cases:
//
//   - Change-class costs (the original E9 table in EXPERIMENTS.md): a
//     mapping-only perspective change versus the naive full rebuild, and
//     re-import cost versus topology size.
//
//   - Sustained churn (the scenario subsystem's headline): a campus
//     network absorbs a continuous fail/repair event stream while serving
//     perspective queries.  _Fine replays through the engine's
//     reverse-index overlay invalidation, _Coarse forces the pre-index
//     epoch flush on every event — same events, same answers, different
//     work.  items_per_second is the sustained QPS under churn; the
//     path_evictions_per_event counter is the eviction-granularity proof
//     (0 in fine mode — baseline path sets survive fail AND repair —
//     versus the whole cache per event in coarse mode).
//
// CI runs this with --bench-json=BENCH_dynamicity.json (bench_main's
// writer) and archives the JSON as the perf trajectory.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "casestudy/usi.hpp"
#include "core/upsim_generator.hpp"
#include "engine/perspective_engine.hpp"
#include "netgen/generators.hpp"
#include "scenario/player.hpp"
#include "service/service.hpp"

namespace {

using namespace upsim;

void BM_UserMoves_MappingOnly(benchmark::State& state) {
  // The user moves between two clients; regenerate by re-mapping only.
  const auto cs = casestudy::make_usi_case_study();
  const auto& printing =
      cs.services->get_composite(casestudy::printing_service_name());
  core::UpsimGenerator generator(*cs.infrastructure);
  const auto m1 = cs.printing_mapping("t1", "p2");
  const auto m2 = cs.printing_mapping("t15", "p3");
  bool flip = false;
  for (auto _ : state) {
    auto result = generator.generate(printing, flip ? m1 : m2, "view");
    flip = !flip;
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UserMoves_MappingOnly);

void BM_UserMoves_FullRebuild(benchmark::State& state) {
  // The naive alternative: rebuild the models and re-import everything for
  // every perspective change.
  bool flip = false;
  for (auto _ : state) {
    const auto cs = casestudy::make_usi_case_study();
    const auto& printing =
        cs.services->get_composite(casestudy::printing_service_name());
    core::UpsimGenerator generator(*cs.infrastructure);
    auto result = generator.generate(
        printing,
        flip ? cs.printing_mapping("t1", "p2")
             : cs.printing_mapping("t15", "p3"),
        "view");
    flip = !flip;
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UserMoves_FullRebuild);

void BM_ServiceMigration_MappingOnly(benchmark::State& state) {
  const auto cs = casestudy::make_usi_case_study();
  const auto& printing =
      cs.services->get_composite(casestudy::printing_service_name());
  core::UpsimGenerator generator(*cs.infrastructure);
  const auto on_printS = cs.mapping_t1_p2();
  auto on_file1 = on_printS;
  for (const auto& pair : on_file1.pairs()) {
    const auto swap = [](const std::string& id) {
      return id == "printS" ? std::string("file1") : id;
    };
    on_file1.map(pair.atomic_service, swap(pair.requester),
                 swap(pair.provider));
  }
  bool flip = false;
  for (auto _ : state) {
    auto result =
        generator.generate(printing, flip ? on_printS : on_file1, "view");
    flip = !flip;
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ServiceMigration_MappingOnly);

void BM_PerspectiveChange_ScalesWithTopology(benchmark::State& state) {
  // Mapping-only regeneration cost versus campus size: stays flat-ish
  // because discovery touches only the user's region plus the core.
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto net = netgen::uml_campus(spec);
  service::ServiceCatalog services;
  services.define_atomic("request");
  services.define_atomic("respond");
  const auto& svc = services.define_sequence("echo", {"request", "respond"});
  mapping::ServiceMapping m1;
  m1.map("request", "t0", "srv0");
  m1.map("respond", "srv0", "t0");
  mapping::ServiceMapping m2;
  m2.map("request", "t1", "srv0");
  m2.map("respond", "srv0", "t1");
  core::UpsimGenerator generator(*net.infrastructure);
  bool flip = false;
  for (auto _ : state) {
    auto result = generator.generate(svc, flip ? m1 : m2, "view");
    flip = !flip;
    benchmark::DoNotOptimize(result);
  }
  state.counters["components"] =
      static_cast<double>(net.infrastructure->instance_count());
}
BENCHMARK(BM_PerspectiveChange_ScalesWithTopology)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);

void BM_TopologyChange_RequiresReimport(benchmark::State& state) {
  // The change class that DOES require a new import: measure it for scale
  // comparison against the mapping-only path above.
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto net = netgen::uml_campus(spec);
  for (auto _ : state) {
    core::UpsimGenerator generator(*net.infrastructure);
    benchmark::DoNotOptimize(generator.infrastructure_graph().vertex_count());
  }
  state.counters["components"] =
      static_cast<double>(net.infrastructure->instance_count());
}
BENCHMARK(BM_TopologyChange_RequiresReimport)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// --- sustained churn -------------------------------------------------------

/// One iteration = one scenario event absorbed + every perspective served
/// once.  The event stream cycles a core-switch fail/repair pair (global:
/// every pair's answer changes, but the redundant core keeps all services
/// up) and a far-away edge-switch pair (local: no queried pair is
/// affected at all — the case fine-grained invalidation wins outright).
void sustained_churn(benchmark::State& state, bool coarse) {
  netgen::CampusSpec spec;  // defaults: 2 cores, 4 dists, 8 edges, 24 clients
  const auto net = netgen::uml_campus(spec);
  service::ServiceCatalog services;
  services.define_atomic("request");
  services.define_atomic("respond");
  const auto& svc = services.define_sequence("echo", {"request", "respond"});

  // One perspective per distribution switch: clients t0/t6/t12/t18 sit
  // behind edge0/2/4/6 — srv0 hangs off the last distribution switch.
  std::vector<mapping::ServiceMapping> mappings;
  for (const char* client : {"t0", "t6", "t12", "t18"}) {
    mapping::ServiceMapping m;
    m.map("request", client, "srv0");
    m.map("respond", "srv0", client);
    mappings.push_back(std::move(m));
  }

  engine::EngineOptions engine_options;
  engine_options.record_in_space = false;
  engine::PerspectiveEngine engine(*net.infrastructure, engine_options);
  scenario::PlayerOptions player_options;
  player_options.coarse = coarse;
  scenario::ScenarioPlayer player(engine, player_options);

  // The repeating event cycle; "edge7" serves clients t21..t23, which no
  // queried perspective touches.
  std::vector<scenario::Event> cycle;
  for (const char* element : {"core0", "edge7"}) {
    scenario::Event fail;
    fail.kind = scenario::EventKind::FailComponent;
    fail.element = element;
    scenario::Event repair = fail;
    repair.kind = scenario::EventKind::RepairComponent;
    cycle.push_back(fail);
    cycle.push_back(repair);
  }

  // Warm every perspective so there is state worth invalidating.
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    (void)engine.query(svc, mappings[i], "churn" + std::to_string(i));
  }

  std::size_t next = 0;
  for (auto _ : state) {
    (void)player.apply(cycle[next]);
    next = (next + 1) % cycle.size();
    for (std::size_t i = 0; i < mappings.size(); ++i) {
      auto result = engine.query(svc, mappings[i], "churn" + std::to_string(i));
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mappings.size()));

  const auto stats = engine.cache_stats();
  const auto inv = engine.invalidation_stats();
  const double events = static_cast<double>(state.iterations());
  state.counters["path_evictions_per_event"] =
      events == 0.0 ? 0.0 : static_cast<double>(stats.evictions) / events;
  state.counters["affected_pairs_per_event"] =
      events == 0.0
          ? 0.0
          : static_cast<double>(player.stats().affected_keys) / events;
  state.counters["full_flushes"] = static_cast<double>(inv.full_flushes);
  state.counters["cache_hit_rate"] = stats.hit_rate();
}

void BM_SustainedChurn_Fine(benchmark::State& state) {
  sustained_churn(state, /*coarse=*/false);
}
BENCHMARK(BM_SustainedChurn_Fine);

void BM_SustainedChurn_Coarse(benchmark::State& state) {
  sustained_churn(state, /*coarse=*/true);
}
BENCHMARK(BM_SustainedChurn_Coarse);

}  // namespace
