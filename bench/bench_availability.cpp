// E6 ablation — the availability estimators against each other.
//
// Expected shapes: exact factoring is fast on tree-like UPSIMs and grows
// with redundancy; inclusion-exclusion explodes with the path count (2^p
// terms); Monte-Carlo cost is linear in samples and independent of
// structure; the RBD evaluation is the cheapest but biased (over-estimates
// with shared components).
#include <benchmark/benchmark.h>

#include "casestudy/usi.hpp"
#include "core/analysis.hpp"
#include "core/upsim_generator.hpp"
#include "depend/bdd_availability.hpp"
#include "depend/reduction.hpp"
#include "depend/reliability.hpp"
#include "netgen/generators.hpp"
#include "pathdisc/path_discovery.hpp"

namespace {

using namespace upsim;
using graph::VertexId;

depend::ReliabilityProblem campus_problem(std::size_t distribution,
                                          const graph::Graph& g) {
  (void)distribution;
  return depend::ReliabilityProblem::from_attributes(
      g, {{g.vertex_by_name("t0"), g.vertex_by_name("srv0")}});
}

void BM_ExactFactoring(benchmark::State& state) {
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::campus(spec);
  const auto problem = campus_problem(spec.distribution, g);
  double a = 0;
  for (auto _ : state) {
    a = depend::exact_availability(problem);
    benchmark::DoNotOptimize(a);
  }
  state.counters["availability"] = a;
  state.counters["components"] = static_cast<double>(g.vertex_count());
}
// Exact two-terminal reliability is #P-hard: cost grows exponentially with
// the number of redundant bridge structures (dual-homed distribution
// switches), which is exactly the shape this sweep demonstrates.
BENCHMARK(BM_ExactFactoring)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ExactFactoringReduced(benchmark::State& state) {
  // Ablation: series-parallel preprocessing collapses the campus bridge
  // structures, turning the exponential raw factoring into near-constant
  // work — compare against BM_ExactFactoring at the same sizes (and note
  // the reduced engine also handles sizes the raw one cannot).
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::campus(spec);
  const auto problem = campus_problem(spec.distribution, g);
  double a = 0;
  for (auto _ : state) {
    a = depend::exact_availability_reduced(problem);
    benchmark::DoNotOptimize(a);
  }
  state.counters["availability"] = a;
  state.counters["components"] = static_cast<double>(g.vertex_count());
}
BENCHMARK(BM_ExactFactoringReduced)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(32)->Arg(128);

void BM_InclusionExclusion(benchmark::State& state) {
  // Path count grows with core redundancy; 2^p terms dominate.
  netgen::CampusSpec spec;
  spec.core = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::campus(spec);
  const auto problem = campus_problem(spec.distribution, g);
  const auto paths =
      pathdisc::discover(g, g.vertex_by_name("t0"), g.vertex_by_name("srv0"));
  if (paths.count() > 25) {
    state.SkipWithError("path set too large for inclusion-exclusion");
    return;
  }
  for (auto _ : state) {
    auto a = depend::path_inclusion_exclusion(problem, paths.paths);
    benchmark::DoNotOptimize(a);
  }
  state.counters["paths"] = static_cast<double>(paths.count());
}
BENCHMARK(BM_InclusionExclusion)->Arg(1)->Arg(2)->Arg(3);

void BM_BddAvailability(benchmark::State& state) {
  // The BDD engine scales with diagram size, not 2^paths: sweep core
  // redundancy past the inclusion-exclusion limit.
  netgen::CampusSpec spec;
  spec.core = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::campus(spec);
  const auto problem = campus_problem(spec.distribution, g);
  std::size_t paths = 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    auto result = depend::bdd_availability(problem);
    paths = result.paths;
    nodes = result.bdd_nodes;
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = static_cast<double>(paths);
  state.counters["bdd_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_BddAvailability)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_MonteCarlo(benchmark::State& state) {
  netgen::CampusSpec spec;
  const auto g = netgen::campus(spec);
  const auto problem = campus_problem(spec.distribution, g);
  const auto samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = depend::monte_carlo_availability(problem, samples, 42);
    benchmark::DoNotOptimize(result);
  }
  state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_MonteCarlo)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MonteCarloParallel(benchmark::State& state) {
  netgen::CampusSpec spec;
  spec.distribution = 16;
  const auto g = netgen::campus(spec);
  const auto problem = campus_problem(spec.distribution, g);
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  for (auto _ : state) {
    auto result =
        depend::monte_carlo_availability(problem, 100000, 42, pool.get());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(threads == 0 ? "serial" : std::to_string(threads) + "T");
}
BENCHMARK(BM_MonteCarloParallel)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_CaseStudyFullAnalysis(benchmark::State& state) {
  // The complete Sec. VII analysis of the t1 -> p2 printing UPSIM.
  const auto cs = casestudy::make_usi_case_study();
  core::UpsimGenerator generator(*cs.infrastructure);
  const auto result = generator.generate(
      cs.services->get_composite(casestudy::printing_service_name()),
      cs.mapping_t1_p2(), "bench");
  core::AnalysisOptions options;
  options.monte_carlo_samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto report = core::analyze_availability(result, options);
    benchmark::DoNotOptimize(report);
  }
  state.counters["mc_samples"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CaseStudyFullAnalysis)->Arg(0)->Arg(50000);

void BM_MultiPairExactVsIndependent(benchmark::State& state) {
  // Correlation-aware joint availability over all 5 printing pairs versus
  // the independence product (5 single-pair factorings).
  const auto cs = casestudy::make_usi_case_study();
  core::UpsimGenerator generator(*cs.infrastructure);
  const auto result = generator.generate(
      cs.services->get_composite(casestudy::printing_service_name()),
      cs.mapping_t1_p2(), "bench");
  const auto problem = depend::ReliabilityProblem::from_attributes(
      result.upsim_graph, result.terminal_pairs());
  const bool independent = state.range(0) == 1;
  for (auto _ : state) {
    const double a = independent
                         ? depend::independent_pairs_approximation(problem)
                         : depend::exact_availability(problem);
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel(independent ? "independent-product" : "correlation-aware");
}
BENCHMARK(BM_MultiPairExactVsIndependent)->Arg(0)->Arg(1);

}  // namespace
