// Experiment report: regenerates every table and figure of the paper's
// evaluation (DESIGN.md experiments E1-E7) and prints them next to the
// published ground truth so the reproduction can be checked line by line.
//
//   E1  Table I        service mapping pairs
//   E2  Sec. VI-G      path listing for (t1, printS)
//   E3  Figs. 5/9      infrastructure census
//   E4  Fig. 11        UPSIM node set for t1 -> p2
//   E5  Fig. 12        UPSIM node set for t15 -> p3 (mapping-only change)
//   E6  Formula 1/VII  component and service availabilities
//   E7  Fig. 8         component class catalog
#include <algorithm>
#include <iostream>
#include <set>

#include "casestudy/usi.hpp"
#include "core/analysis.hpp"
#include "core/upsim_generator.hpp"
#include "obs/obs.hpp"
#include "depend/availability.hpp"
#include "depend/importance.hpp"
#include "depend/performability.hpp"
#include "depend/reliability.hpp"
#include "depend/responsiveness.hpp"
#include "depend/sensitivity.hpp"
#include "depend/simulator.hpp"
#include "depend/sla.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace upsim;

std::string node_set_string(const uml::ObjectModel& m) {
  std::vector<std::string> names;
  for (const auto* inst : m.instances()) names.push_back(inst->name());
  std::sort(names.begin(), names.end());
  return util::join(names, " ");
}

std::string sorted_join(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  return util::join(names, " ");
}

void header(const char* id, const char* title) {
  std::cout << "\n=== " << id << " — " << title << " ===\n";
}

/// Times the report sections back to back: lap() closes the previous
/// window and opens the next, so one stopwatch covers the whole report.
class SectionTimer {
 public:
  void section_done(const std::string& id) {
    upsim::obs::Registry::global()
        .gauge("exp.case_study." + id + ".ms")
        .set(watch_.lap_millis());
  }

 private:
  upsim::util::Stopwatch watch_;
};

}  // namespace

int main() {
  SectionTimer timer;
  const auto cs = casestudy::make_usi_case_study();
  const auto& printing =
      cs.services->get_composite(casestudy::printing_service_name());
  core::UpsimGenerator generator(*cs.infrastructure);
  timer.section_done("setup");

  std::cout << "upsim case-study reproduction report\n"
            << "paper: A Model for Evaluation of User-Perceived Service "
               "Properties (Dittrich et al., 2013)\n";

  // -- E7 / Fig. 8 ----------------------------------------------------------
  header("E7", "Fig. 8 component classes");
  {
    util::TextTable table({"class", "stereotypes", "MTBF [h]", "MTTR [h]",
                           "A (exact)", "A (Formula 1)"});
    for (const uml::Class* cls : cs.classes->classes()) {
      std::string stereotypes;
      for (const auto& app : cls->applications()) {
        if (!stereotypes.empty()) stereotypes += ";";
        stereotypes += util::to_lower(app.stereotype().name());
      }
      const double mtbf = cls->stereotype_value("MTBF")->as_real();
      const double mttr = cls->stereotype_value("MTTR")->as_real();
      table.add_row({cls->name(), "<<" + stereotypes + ">>",
                     util::format_sig(mtbf, 6), util::format_sig(mttr, 3),
                     util::format_sig(depend::availability_exact(mtbf, mttr), 8),
                     util::format_sig(depend::availability_linear(mtbf, mttr),
                                      8)});
    }
    std::cout << table.render(2)
              << "  (link values are the documented substitution: MTBF=500000,"
                 " MTTR=0.5)\n";
  }
  timer.section_done("E7");

  // -- E3 / Figs. 5 and 9 ---------------------------------------------------
  header("E3", "Figs. 5/9 infrastructure object diagram");
  {
    std::cout << "  components: " << cs.infrastructure->instance_count()
              << " (paper: 32)   links: " << cs.infrastructure->link_count()
              << " (reconstruction: 34)\n";
    util::TextTable table({"class", "instances"});
    for (const auto& [cls, count] : cs.infrastructure->census()) {
      table.add_row({cls, std::to_string(count)});
    }
    std::cout << table.render(2);
    const auto problems = cs.infrastructure->validate();
    std::cout << "  model validation: "
              << (problems.empty() ? "clean" : util::join(problems, "; "))
              << "\n";
  }
  timer.section_done("E3");

  // -- E1 / Table I ---------------------------------------------------------
  header("E1", "Table I service mapping pairs");
  {
    util::TextTable table({"AS", "RQ (ours)", "PR (ours)", "RQ (paper)",
                           "PR (paper)", "match"});
    const auto mapping = cs.mapping_t1_p2();
    const std::vector<std::array<const char*, 3>> published = {
        {"request_printing", "t1", "printS"},
        {"login_to_printer", "p2", "printS"},
        {"send_document_list", "printS", "p2"},
        {"select_documents", "p2", "printS"},
        {"send_documents", "printS", "p2"},
    };
    for (const auto& [atomic, rq, pr] : published) {
      const auto pair = mapping.get(atomic);
      const bool match = pair.requester == rq && pair.provider == pr;
      table.add_row({atomic, pair.requester, pair.provider, rq, pr,
                     match ? "yes" : "NO"});
    }
    std::cout << table.render(2);
  }
  timer.section_done("E1");

  // -- E2 / Sec. VI-G -------------------------------------------------------
  header("E2", "Sec. VI-G path discovery for pair (t1, printS)");
  const auto t1_p2 = generator.generate(printing, cs.mapping_t1_p2(), "t1_p2");
  {
    const auto& paths = t1_p2.path_names(0);
    std::cout << "  discovered " << paths.size()
              << " redundant paths (discovery order):\n";
    for (std::size_t i = 0; i < paths.size(); ++i) {
      std::cout << "    " << i + 1 << ". " << util::join(paths[i], " - ")
                << "\n";
    }
    const auto& expected = casestudy::expected_first_paths_t1_printS();
    const bool match = paths.size() >= 2 && paths[0] == expected[0] &&
                       paths[1] == expected[1];
    std::cout << "  paper prints the first two paths; match: "
              << (match ? "yes" : "NO") << "\n";
  }
  timer.section_done("E2");

  // -- E4 / Fig. 11 ---------------------------------------------------------
  header("E4", "Fig. 11 UPSIM for printing t1 -> p2 via printS");
  {
    const std::string ours = node_set_string(t1_p2.upsim);
    const std::string published =
        sorted_join(casestudy::expected_upsim_t1_p2());
    std::cout << "  ours:  " << ours << "\n  paper: " << published
              << "\n  match: " << (ours == published ? "yes" : "NO") << "\n";
  }
  timer.section_done("E4");

  // -- E5 / Fig. 12 ---------------------------------------------------------
  header("E5", "Fig. 12 UPSIM for printing t15 -> p3 (mapping-only change)");
  const auto t15_p3 =
      generator.generate(printing, cs.mapping_t15_p3(), "t15_p3");
  {
    const std::string ours = node_set_string(t15_p3.upsim);
    const std::string published =
        sorted_join(casestudy::expected_upsim_t15_p3());
    std::cout << "  ours:  " << ours << "\n  paper: " << published
              << "\n  match: " << (ours == published ? "yes" : "NO") << "\n";
  }
  timer.section_done("E5");

  // -- E6 / Formula 1 + Sec. VII -------------------------------------------
  header("E6", "user-perceived steady-state availability (Sec. VII)");
  {
    core::AnalysisOptions options;
    options.monte_carlo_samples = 500000;
    util::TextTable table({"perspective", "exact", "Formula-1 exact",
                           "indep. pairs", "RBD [20]", "Monte Carlo"});
    for (const auto& [label, result] :
         {std::pair<const char*, const core::UpsimResult*>{"t1 -> p2",
                                                            &t1_p2},
          {"t15 -> p3", &t15_p3}}) {
      const auto report = core::analyze_availability(*result, options);
      table.add_row(
          {label, util::format_sig(report.exact, 8),
           util::format_sig(report.exact_linear, 8),
           util::format_sig(report.independent_pairs, 8),
           util::format_sig(report.rbd, 12),
           util::format_sig(report.monte_carlo.estimate, 8) + " +/- " +
               util::format_sig(report.monte_carlo.std_error, 2)});
    }
    std::cout << table.render(2);
    std::cout
        << "  shapes to check: RBD >= exact >= independent-pairs product;\n"
           "  Formula-1 variant within ~1e-4 of exact; Monte Carlo within a\n"
           "  few standard errors of exact.\n";
  }
  timer.section_done("E6");

  // -- E6b: the wider Sec. VII property suite on the t1 -> p2 UPSIM --------
  header("E6b", "component importance and repair-time sensitivity");
  {
    const auto problem = depend::ReliabilityProblem::from_attributes(
        t1_p2.upsim_graph, t1_p2.terminal_pairs());
    depend::ImportanceOptions ioptions;
    ioptions.include_edges = false;
    util::TextTable table({"component", "Birnbaum", "A if down", "SPOF",
                           "downtime saved per MTTR hour [h/yr]"});
    const auto importance = depend::importance_ranking(problem, ioptions);
    depend::SensitivityOptions soptions;
    soptions.include_edges = false;
    const auto sensitivity = depend::sensitivity_analysis(problem, soptions);
    auto saved_of = [&](const std::string& name) {
      for (const auto& r : sensitivity) {
        if (r.component == name) return r.downtime_saved_per_mttr_hour;
      }
      return 0.0;
    };
    for (const auto& record : importance) {
      table.add_row({record.component, util::format_sig(record.birnbaum, 4),
                     util::format_sig(record.system_when_down, 4),
                     record.single_point_of_failure() ? "yes" : "no",
                     util::format_sig(saved_of(record.component), 4)});
    }
    std::cout << table.render(2);
    std::cout << "  shape: the fragile endpoints (t1, p2) dominate; the\n"
                 "  redundant core switches are the only non-SPOFs and\n"
                 "  contribute negligibly.\n";
  }
  timer.section_done("E6b");

  header("E6c", "SLA classification, performability and responsiveness");
  {
    const auto problem = depend::ReliabilityProblem::from_attributes(
        t1_p2.upsim_graph, t1_p2.terminal_pairs());
    const double a = depend::exact_availability(problem);
    std::cout << "  service class: " << depend::availability_class(a)
              << ", expected downtime "
              << util::format_sig(depend::downtime_hours_per_year(a), 4)
              << " h/year; meets 99% SLA: "
              << (depend::meets_sla(a, 0.99) ? "yes" : "no")
              << ", meets 99.9%: "
              << (depend::meets_sla(a, 0.999) ? "yes" : "no") << "\n";

    // Performability of the request_printing pair (Fig. 7 throughput).
    depend::ReliabilityProblem pair0 = problem;
    pair0.terminal_pairs = {t1_p2.terminal_pairs()[0]};
    const auto perf = depend::exact_performability(pair0);
    std::cout << "  performability (t1 -> printS): nominal "
              << util::format_sig(perf.nominal_throughput, 4)
              << " Mbps, expected "
              << util::format_sig(perf.expected_throughput, 6) << " Mbps\n";

    // Responsiveness with per-hop default latencies.
    const auto resp =
        depend::exact_responsiveness(pair0, {}, {0.86, 1.01, 2.0});
    std::cout << "  responsiveness (t1 -> printS): best case "
              << util::format_sig(resp.best_case_ms, 3) << " ms; P(<=0.86ms)="
              << util::format_sig(resp.probability[0], 6) << ", P(<=2ms)="
              << util::format_sig(resp.probability[2], 6) << "\n";
  }
  timer.section_done("E6c");

  header("E6d", "simulated operation versus analytic steady state");
  {
    const auto model = depend::SimulationModel::from_attributes(
        t1_p2.upsim_graph, t1_p2.terminal_pairs());
    const double analytic =
        depend::exact_availability(model.steady_state_problem());
    util::TextTable table(
        {"simulated years", "measured A", "analytic A", "outages"});
    for (const double years : {1.0, 10.0, 100.0}) {
      depend::SimulationOptions options;
      options.horizon_hours = years * 365.0 * 24.0;
      options.seed = 2013;
      const auto sim = depend::simulate(model, options);
      table.add_row({util::format_sig(years, 3),
                     util::format_sig(sim.availability(), 6),
                     util::format_sig(analytic, 6),
                     std::to_string(sim.outages)});
    }
    std::cout << table.render(2)
              << "  shape: the measured value converges to the analytic one "
                 "as ~1/sqrt(T).\n";
  }
  timer.section_done("E6d");

  obs::Registry::global().snapshot().write_json("BENCH_case_study.json");
  std::cout << "\nreport complete; wrote section timings to "
               "BENCH_case_study.json\n";
  return 0;
}
