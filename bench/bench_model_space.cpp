// Supporting micro-bench — the VPM model space and pattern matcher that
// the importers and the path-storage step run on (Sec. V-C).
#include <benchmark/benchmark.h>

#include "netgen/generators.hpp"
#include "transform/uml_importer.hpp"
#include "vpm/model_space.hpp"
#include "vpm/pattern.hpp"

namespace {

using namespace upsim;

void BM_EntityCreation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    vpm::ModelSpace space;
    const auto ns = space.ensure_path("models.net");
    for (std::size_t i = 0; i < n; ++i) {
      space.create_entity(ns, "e" + std::to_string(i));
    }
    benchmark::DoNotOptimize(space.entity_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EntityCreation)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FqnLookup(benchmark::State& state) {
  vpm::ModelSpace space;
  const auto ns = space.ensure_path("models.net.instances");
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    space.create_entity(ns, "e" + std::to_string(i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto e = space.find("models.net.instances.e" + std::to_string(i % n));
    benchmark::DoNotOptimize(e);
    ++i;
  }
}
BENCHMARK(BM_FqnLookup)->Arg(100)->Arg(10000);

void BM_UmlImport(benchmark::State& state) {
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto net = netgen::uml_campus(spec);
  for (auto _ : state) {
    vpm::ModelSpace space;
    transform::import_class_model(space, net.infrastructure->class_model());
    transform::import_object_model(space, *net.infrastructure);
    benchmark::DoNotOptimize(space.entity_count());
  }
  state.counters["components"] =
      static_cast<double>(net.infrastructure->instance_count());
}
BENCHMARK(BM_UmlImport)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_PatternTypeScan(benchmark::State& state) {
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto net = netgen::uml_campus(spec);
  vpm::ModelSpace space;
  transform::import_class_model(space, net.infrastructure->class_model());
  transform::import_object_model(space, *net.infrastructure);
  vpm::Pattern pattern("clients");
  pattern.type_of("c", "models.campus_classes.classes.Client");
  for (auto _ : state) {
    auto n = pattern.count(space);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_PatternTypeScan)->Arg(2)->Arg(32)->Arg(128);

void BM_PatternRelationalJoin(benchmark::State& state) {
  // Client --link--> edge switch joins across the whole instance set.
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto net = netgen::uml_campus(spec);
  vpm::ModelSpace space;
  transform::import_class_model(space, net.infrastructure->class_model());
  transform::import_object_model(space, *net.infrastructure);
  vpm::Pattern pattern("client_uplinks");
  pattern.type_of("c", "models.campus_classes.classes.Client")
      .type_of("s", "models.campus_classes.classes.Switch")
      .related("c", "link", "s");
  std::size_t matches = 0;
  for (auto _ : state) {
    matches = pattern.count(space);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_PatternRelationalJoin)->Arg(2)->Arg(8)->Arg(32);

void BM_SubtreeDelete(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    vpm::ModelSpace space;
    const auto ns = space.ensure_path("paths.run");
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = space.create_entity(ns, "p" + std::to_string(i));
      space.create_entity(p, "hop0");
    }
    state.ResumeTiming();
    space.delete_entity(space.get("paths.run"));
    benchmark::DoNotOptimize(space.entity_count());
  }
}
BENCHMARK(BM_SubtreeDelete)->Arg(100)->Arg(1000);

}  // namespace
