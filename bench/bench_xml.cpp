// Supporting micro-bench — mapping-file XML parse/serialise throughput
// (Step 4/6 of the methodology exchange mappings on disk).
#include <benchmark/benchmark.h>

#include <string>

#include "mapping/mapping.hpp"
#include "xml/parser.hpp"

namespace {

using namespace upsim;

std::string synthetic_mapping_xml(std::size_t pairs) {
  std::string xml = "<servicemapping>";
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::string n = std::to_string(i);
    xml += "<atomicservice id=\"service_" + n + "\"><requester id=\"rq_" + n +
           "\"/><provider id=\"pr_" + n + "\"/></atomicservice>";
  }
  xml += "</servicemapping>";
  return xml;
}

void BM_ParseMappingXml(benchmark::State& state) {
  const auto xml = synthetic_mapping_xml(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto doc = xml::parse(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_ParseMappingXml)->Arg(5)->Arg(100)->Arg(2000);

void BM_MappingFromXml(benchmark::State& state) {
  // Parse + semantic construction (duplicate-key checks, identifiers).
  const auto xml = synthetic_mapping_xml(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto mapping = mapping::ServiceMapping::from_xml(xml);
    benchmark::DoNotOptimize(mapping);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MappingFromXml)->Arg(5)->Arg(100)->Arg(2000);

void BM_MappingToXml(benchmark::State& state) {
  mapping::ServiceMapping mapping;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    const std::string n = std::to_string(i);
    mapping.map("service_" + n, "rq_" + n, "pr_" + n);
  }
  for (auto _ : state) {
    auto xml = mapping.to_xml();
    benchmark::DoNotOptimize(xml);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MappingToXml)->Arg(5)->Arg(100)->Arg(2000);

void BM_EntityHeavyDocument(benchmark::State& state) {
  // Text with many escaped entities stresses the entity decoder.
  std::string xml = "<doc>";
  for (int i = 0; i < 500; ++i) xml += "x &amp; y &lt;z&gt; ";
  xml += "</doc>";
  for (auto _ : state) {
    auto doc = xml::parse(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_EntityHeavyDocument);

}  // namespace
