// Shared main for every bench_* binary: runs google-benchmark as usual but
// additionally records each case's timings into the obs registry and writes
// them as BENCH_<binary>.json on exit (the machine-readable perf
// trajectory; one gauge triple per case plus an iteration counter).
//
//   bench_pipeline                          # writes BENCH_bench_pipeline.json
//   bench_pipeline --bench-json=out.json    # writes out.json
//   bench_pipeline --bench-json=            # disables the JSON report
//
// obs stays *disabled* during measurement so the instrumentation sites in
// the library cost nothing inside timed loops; the reporter writes through
// Registry/MetricsSnapshot directly, which works regardless of the switch.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace {

/// Console output as usual, plus one metrics record per finished run.
class ObsReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    auto& registry = upsim::obs::Registry::global();
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string base = "bench." + run.benchmark_name();
      const double iterations = static_cast<double>(run.iterations);
      registry.gauge(base + ".real_ms")
          .set(run.real_accumulated_time / iterations * 1e3);
      registry.gauge(base + ".cpu_ms")
          .set(run.cpu_accumulated_time / iterations * 1e3);
      registry.gauge(base + ".iterations").set(iterations);
      for (const auto& [name, counter] : run.counters) {
        registry.gauge(base + "." + name).set(counter.value);
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  // Our flag first: google-benchmark rejects flags it does not know.
  std::string json_path;
  bool json_enabled = true;
  {
    const std::string prefix = "--bench-json=";
    std::vector<char*> kept;
    kept.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind(prefix, 0) == 0) {
        json_path = arg.substr(prefix.size());
        json_enabled = !json_path.empty();
      } else {
        kept.push_back(argv[i]);
      }
    }
    argc = static_cast<int>(kept.size());
    for (int i = 0; i < argc; ++i) argv[i] = kept[static_cast<std::size_t>(i)];
  }
  if (json_enabled && json_path.empty()) {
    std::string name = argv[0];
    const auto slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    json_path = "BENCH_" + name + ".json";
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ObsReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (json_enabled && ran > 0) {
    upsim::obs::Registry::global().snapshot().write_json(json_path);
    std::cerr << "wrote per-case timings to " << json_path << "\n";
  }
  return 0;
}
