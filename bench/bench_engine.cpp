// E10 — batch perspective serving: PerspectiveEngine vs sequential
// UpsimGenerator::generate_batch.
//
// The workload is the ROADMAP scenario scaled down to bench size: one
// campus infrastructure (netgen, Fig. 5 shape), a printing-style composite
// of five atomic services (Table I shape — provider-side pairs repeat
// within every perspective), and >= 100 user perspectives cycling over the
// campus clients and printer-like servers, so pairs also repeat *across*
// perspectives.  Reported counters:
//
//   qps              perspectives served per second
//   speedup          vs. one sequential generate_batch of the same batch,
//                    measured in the same process right before the run
//   cache_hit_rate   fraction of pair discoveries answered by the cache
//   perspectives     batch size
//
// The acceptance bar for this PR: speedup >= 2 on >= 100 perspectives with
// 8 pool threads, engine answers being differentially tested elsewhere.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/upsim_generator.hpp"
#include "engine/perspective_engine.hpp"
#include "netgen/generators.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace upsim;

struct ServeWorkload {
  netgen::UmlNetwork net;
  service::ServiceCatalog services;
  std::vector<mapping::ServiceMapping> perspectives;

  [[nodiscard]] const service::CompositeService& composite() const {
    return services.get_composite("printing_like");
  }
};

/// `perspectives` users print from cycling clients through cycling
/// "printer" servers behind the campus core.
ServeWorkload make_workload(std::size_t perspectives) {
  netgen::CampusSpec spec;
  spec.distribution = 4;
  spec.edge_per_distribution = 2;
  spec.clients_per_edge = 3;
  spec.servers = 4;
  ServeWorkload w{netgen::uml_campus(spec), {}, {}};
  for (const char* atomic : {"request_print", "login", "send_list",
                             "select", "send_documents"}) {
    w.services.define_atomic(atomic);
  }
  (void)w.services.define_sequence(
      "printing_like",
      {"request_print", "login", "send_list", "select", "send_documents"});

  const std::size_t clients =
      spec.distribution * spec.edge_per_distribution * spec.clients_per_edge;
  for (std::size_t u = 0; u < perspectives; ++u) {
    const std::string client = "t" + std::to_string(u % clients);
    const std::string frontend = "srv0";
    const std::string printer =
        "srv" + std::to_string(1 + u % (spec.servers - 1));
    mapping::ServiceMapping m;
    m.map("request_print", client, frontend);
    m.map("login", printer, frontend);
    m.map("send_list", frontend, printer);
    m.map("select", printer, frontend);
    m.map("send_documents", frontend, printer);
    w.perspectives.push_back(std::move(m));
  }
  return w;
}

void BM_BatchServe_SequentialGenerator(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  core::UpsimGenerator generator(*w.net.infrastructure);
  for (auto _ : state) {
    auto results =
        generator.generate_batch(w.composite(), w.perspectives, "seq");
    benchmark::DoNotOptimize(results);
  }
  state.counters["perspectives"] =
      static_cast<double>(w.perspectives.size());
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(w.perspectives.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchServe_SequentialGenerator)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_BatchServe_Engine(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));

  // The yardstick first: one sequential generate_batch of the same batch.
  core::UpsimGenerator generator(*w.net.infrastructure);
  util::Stopwatch watch;
  auto sequential =
      generator.generate_batch(w.composite(), w.perspectives, "seq");
  const double sequential_ms = watch.lap_millis();
  benchmark::DoNotOptimize(sequential);

  engine::EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(1));
  // Serving mode: the returned UpsimResults are identical either way
  // (test_engine proves structural equality), but recording every run
  // into the shared model space is a serialized tail that exists for
  // Step 8 interop, not for serving — BM_BatchServe_EngineRecorded below
  // keeps it on to show that cost.
  options.record_in_space = false;
  engine::PerspectiveEngine engine(*w.net.infrastructure, options);
  double engine_ms_total = 0.0;
  for (auto _ : state) {
    // Fresh cache every round so each iteration measures a full cold
    // batch, not an ever-warmer steady state.
    state.PauseTiming();
    engine.notify_topology_changed();
    state.ResumeTiming();
    watch.lap_millis();
    auto results = engine.query_batch(w.composite(), w.perspectives, "srv");
    engine_ms_total += watch.lap_millis();
    benchmark::DoNotOptimize(results);
  }

  const auto stats = engine.cache_stats();
  const double engine_ms =
      engine_ms_total / static_cast<double>(state.iterations());
  state.counters["perspectives"] =
      static_cast<double>(w.perspectives.size());
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["speedup"] = sequential_ms / engine_ms;
  state.counters["cache_hit_rate"] = stats.hit_rate();
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(w.perspectives.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchServe_Engine)
    ->Args({100, 8})
    ->Args({100, 2})
    ->Args({400, 8})
    ->Unit(benchmark::kMillisecond);

void BM_BatchServe_EngineRecorded(benchmark::State& state) {
  // Same cold batch, but with model-space run recording on (the default).
  // Every perspective's Step 8 insertion serializes on the shared
  // containment tree, so this bounds the speedup à la Amdahl — the number
  // to watch if recorded serving ever needs to scale.
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  core::UpsimGenerator generator(*w.net.infrastructure);
  util::Stopwatch watch;
  auto sequential =
      generator.generate_batch(w.composite(), w.perspectives, "seq");
  const double sequential_ms = watch.lap_millis();
  benchmark::DoNotOptimize(sequential);

  engine::EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(1));
  engine::PerspectiveEngine engine(*w.net.infrastructure, options);
  double engine_ms_total = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    engine.notify_topology_changed();
    state.ResumeTiming();
    watch.lap_millis();
    auto results = engine.query_batch(w.composite(), w.perspectives, "srv");
    engine_ms_total += watch.lap_millis();
    benchmark::DoNotOptimize(results);
  }
  state.counters["speedup"] =
      sequential_ms /
      (engine_ms_total / static_cast<double>(state.iterations()));
  state.counters["cache_hit_rate"] = engine.cache_stats().hit_rate();
}
BENCHMARK(BM_BatchServe_EngineRecorded)
    ->Args({100, 8})
    ->Unit(benchmark::kMillisecond);

void BM_BatchServe_EngineWarm(benchmark::State& state) {
  // Steady-state serving: the cache stays warm across rounds — the
  // "millions of users, one infrastructure" regime the ROADMAP points at.
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  engine::EngineOptions options;
  options.threads = 8;
  options.record_in_space = false;  // pure serving mode
  engine::PerspectiveEngine engine(*w.net.infrastructure, options);
  for (auto _ : state) {
    auto results = engine.query_batch(w.composite(), w.perspectives, "srv");
    benchmark::DoNotOptimize(results);
  }
  state.counters["perspectives"] =
      static_cast<double>(w.perspectives.size());
  state.counters["cache_hit_rate"] = engine.cache_stats().hit_rate();
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(w.perspectives.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchServe_EngineWarm)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_EpochInvalidation(benchmark::State& state) {
  // Cost of the expensive change class: full re-import + re-projection +
  // cache eviction, the engine's notify_topology_changed.
  const auto w = make_workload(16);
  engine::PerspectiveEngine engine(*w.net.infrastructure);
  auto warmup = engine.query_batch(w.composite(), w.perspectives, "w");
  benchmark::DoNotOptimize(warmup);
  for (auto _ : state) {
    engine.notify_topology_changed();
  }
  state.counters["epoch"] = static_cast<double>(engine.epoch());
}
BENCHMARK(BM_EpochInvalidation)->Unit(benchmark::kMillisecond);

}  // namespace
