// E8 — full 8-step pipeline cost versus topology size, split by step.
//
// Expected shapes: the one-time import (Step 5, generator construction)
// scales with model size; per-perspective generation (Steps 6-8) is
// dominated by path discovery and stays cheap on tree-like networks.
#include <benchmark/benchmark.h>

#include "core/upsim_generator.hpp"
#include "netgen/generators.hpp"
#include "pathdisc/path_discovery.hpp"
#include "transform/projection.hpp"
#include "transform/space_discovery.hpp"
#include "transform/uml_importer.hpp"

namespace {

using namespace upsim;

netgen::CampusSpec spec_for(std::int64_t distribution) {
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(distribution);
  spec.edge_per_distribution = 2;
  spec.clients_per_edge = 3;
  return spec;
}

struct EchoService {
  service::ServiceCatalog services;
  const service::CompositeService* svc;
  mapping::ServiceMapping mapping;

  EchoService() {
    services.define_atomic("request");
    services.define_atomic("respond");
    svc = &services.define_sequence("echo", {"request", "respond"});
    mapping.map("request", "t0", "srv0");
    mapping.map("respond", "srv0", "t0");
  }
};

void BM_Step5_Import(benchmark::State& state) {
  const auto net = netgen::uml_campus(spec_for(state.range(0)));
  for (auto _ : state) {
    core::UpsimGenerator generator(*net.infrastructure);
    benchmark::DoNotOptimize(generator.space().entity_count());
  }
  state.counters["components"] =
      static_cast<double>(net.infrastructure->instance_count());
}
BENCHMARK(BM_Step5_Import)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_Steps6to8_Generate(benchmark::State& state) {
  const auto net = netgen::uml_campus(spec_for(state.range(0)));
  EchoService echo;
  core::UpsimGenerator generator(*net.infrastructure);
  for (auto _ : state) {
    auto result = generator.generate(*echo.svc, echo.mapping, "run");
    benchmark::DoNotOptimize(result);
  }
  state.counters["components"] =
      static_cast<double>(net.infrastructure->instance_count());
}
BENCHMARK(BM_Steps6to8_Generate)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_EndToEnd(benchmark::State& state) {
  // Model construction + import + generation: what a cold start costs.
  EchoService echo;
  for (auto _ : state) {
    const auto net = netgen::uml_campus(spec_for(state.range(0)));
    core::UpsimGenerator generator(*net.infrastructure);
    auto result = generator.generate(*echo.svc, echo.mapping, "run");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EndToEnd)->Arg(2)->Arg(8)->Arg(32);

void BM_FiveAtomicServices(benchmark::State& state) {
  // A printing-shaped composite (5 pairs) on a campus, versus the 2-pair
  // echo service: per-pair discovery dominates, so cost ~2.5x.
  const auto net = netgen::uml_campus(spec_for(state.range(0)));
  service::ServiceCatalog services;
  for (const char* atomic : {"a1", "a2", "a3", "a4", "a5"}) {
    services.define_atomic(atomic);
  }
  const auto& svc =
      services.define_sequence("printing_like", {"a1", "a2", "a3", "a4", "a5"});
  mapping::ServiceMapping m;
  m.map("a1", "t0", "srv0");
  m.map("a2", "t1", "srv0");
  m.map("a3", "srv0", "t1");
  m.map("a4", "t1", "srv0");
  m.map("a5", "srv0", "t1");
  core::UpsimGenerator generator(*net.infrastructure);
  for (auto _ : state) {
    auto result = generator.generate(svc, m, "run");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FiveAtomicServices)->Arg(2)->Arg(8)->Arg(32);

void BM_DiscoveryEngine(benchmark::State& state) {
  // Ablation: path discovery on the graph projection (our optimisation)
  // versus interpreting the VPM model space directly (the paper's VTCL
  // design point).  Both return identical path lists (tested); the model
  // space pays for name-indexed children and relation filtering per hop.
  const bool use_space = state.range(0) == 1;
  const auto net = netgen::uml_campus(spec_for(8));
  vpm::ModelSpace space;
  transform::import_class_model(space, net.infrastructure->class_model());
  transform::import_object_model(space, *net.infrastructure);
  const graph::Graph g = transform::project(*net.infrastructure);
  const std::string ns = "models.campus.instances";
  std::size_t paths = 0;
  for (auto _ : state) {
    if (use_space) {
      auto result = transform::discover_in_space(space, ns, "t0", "srv0");
      paths = result.paths.size();
      benchmark::DoNotOptimize(result);
    } else {
      auto result = pathdisc::discover(g, "t0", "srv0");
      paths = result.count();
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetLabel(use_space ? "model-space" : "graph-projection");
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_DiscoveryEngine)->Arg(0)->Arg(1);

}  // namespace
