// Extended dependability machinery: event-driven simulation throughput and
// convergence, responsiveness estimators, importance ranking cost.
//
// Expected shapes: simulation cost is linear in component events (hence in
// horizon and in failure rates); exact responsiveness explodes with the
// path count like inclusion-exclusion does; importance ranking costs two
// factoring runs per component.
#include <benchmark/benchmark.h>

#include "casestudy/usi.hpp"
#include "core/upsim_generator.hpp"
#include "depend/importance.hpp"
#include "depend/responsiveness.hpp"
#include "depend/simulator.hpp"
#include "netgen/generators.hpp"

namespace {

using namespace upsim;

/// The t1 -> p2 printing UPSIM of the case study, shared by the benches.
struct CaseStudyUpsim {
  casestudy::UsiCaseStudy cs = casestudy::make_usi_case_study();
  core::UpsimGenerator generator{*cs.infrastructure};
  core::UpsimResult result = generator.generate(
      cs.services->get_composite(casestudy::printing_service_name()),
      cs.mapping_t1_p2(), "bench");
};

void BM_SimulateHorizon(benchmark::State& state) {
  CaseStudyUpsim fixture;
  const auto model = depend::SimulationModel::from_attributes(
      fixture.result.upsim_graph, fixture.result.terminal_pairs());
  depend::SimulationOptions options;
  options.horizon_hours = static_cast<double>(state.range(0)) * 24.0 * 365.0;
  options.seed = 5;
  std::size_t events = 0;
  for (auto _ : state) {
    auto sim = depend::simulate(model, options);
    events = sim.component_events;
    benchmark::DoNotOptimize(sim);
  }
  state.counters["years"] = static_cast<double>(state.range(0));
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_SimulateHorizon)->Arg(1)->Arg(10)->Arg(100);

void BM_SimulateTopologySize(benchmark::State& state) {
  netgen::DefaultAttributes attrs;
  attrs.node_mtbf = 2000.0;  // frequent events to stress the engine
  attrs.node_mttr = 10.0;
  netgen::CampusSpec spec;
  spec.distribution = static_cast<std::size_t>(state.range(0));
  const auto g = netgen::campus(spec, attrs);
  const auto model = depend::SimulationModel::from_attributes(
      g, {{g.vertex_by_name("t0"), g.vertex_by_name("srv0")}});
  depend::SimulationOptions options;
  options.horizon_hours = 24.0 * 365.0;
  options.seed = 5;
  std::size_t events = 0;
  for (auto _ : state) {
    auto sim = depend::simulate(model, options);
    events = sim.component_events;
    benchmark::DoNotOptimize(sim);
  }
  state.counters["components"] = static_cast<double>(g.vertex_count());
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_SimulateTopologySize)->Arg(2)->Arg(8)->Arg(32);

void BM_SimulationConvergence(benchmark::State& state) {
  // Gap between measured and analytic availability versus horizon — the
  // "how long must monitoring run" question, reported as a counter.
  CaseStudyUpsim fixture;
  const auto model = depend::SimulationModel::from_attributes(
      fixture.result.upsim_graph, fixture.result.terminal_pairs());
  const double analytic =
      depend::exact_availability(model.steady_state_problem());
  depend::SimulationOptions options;
  options.horizon_hours = static_cast<double>(state.range(0)) * 24.0 * 365.0;
  double gap = 0.0;
  for (auto _ : state) {
    // Average over seeds inside the timing loop for a stable estimate.
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      options.seed = seed;
      total += depend::simulate(model, options).availability();
    }
    gap = std::abs(total / 8.0 - analytic);
    benchmark::DoNotOptimize(gap);
  }
  state.counters["years"] = static_cast<double>(state.range(0));
  state.counters["abs_gap"] = gap;
}
BENCHMARK(BM_SimulationConvergence)->Arg(1)->Arg(10)->Arg(100);

void BM_ResponsivenessExact(benchmark::State& state) {
  CaseStudyUpsim fixture;
  const auto problem = depend::ReliabilityProblem::from_attributes(
      fixture.result.upsim_graph, {fixture.result.terminal_pairs()[0]});
  const std::vector<double> deadlines{0.5, 1.0, 2.0, 5.0};
  for (auto _ : state) {
    auto r = depend::exact_responsiveness(problem, {}, deadlines);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ResponsivenessExact);

void BM_ResponsivenessMonteCarlo(benchmark::State& state) {
  CaseStudyUpsim fixture;
  const auto problem = depend::ReliabilityProblem::from_attributes(
      fixture.result.upsim_graph, {fixture.result.terminal_pairs()[0]});
  const std::vector<double> deadlines{0.5, 1.0, 2.0, 5.0};
  const auto samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r =
        depend::monte_carlo_responsiveness(problem, {}, deadlines, samples, 7);
    benchmark::DoNotOptimize(r);
  }
  state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_ResponsivenessMonteCarlo)->Arg(1000)->Arg(10000);

void BM_ImportanceRanking(benchmark::State& state) {
  CaseStudyUpsim fixture;
  const auto problem = depend::ReliabilityProblem::from_attributes(
      fixture.result.upsim_graph, fixture.result.terminal_pairs());
  depend::ImportanceOptions options;
  options.include_edges = state.range(0) == 1;
  std::size_t ranked = 0;
  for (auto _ : state) {
    auto ranking = depend::importance_ranking(problem, options);
    ranked = ranking.size();
    benchmark::DoNotOptimize(ranking);
  }
  state.SetLabel(options.include_edges ? "vertices+edges" : "vertices-only");
  state.counters["components"] = static_cast<double>(ranked);
}
BENCHMARK(BM_ImportanceRanking)->Arg(0)->Arg(1);

}  // namespace
