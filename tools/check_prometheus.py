#!/usr/bin/env python3
"""Validate a Prometheus text-format scrape written by upsimd --prom-port.

Structural checks on the exposition format 0.0.4 that upsim's renderer
commits to (stdlib only, no prometheus client needed):

  * every sample name matches [a-zA-Z_:][a-zA-Z0-9_:]*
  * every `# TYPE` line names a known type, and the samples that follow
    belong to that family
  * counter samples end in `_total` and are non-negative
  * every histogram family has cumulative, monotone non-decreasing
    `le` buckets in ascending edge order, a `+Inf` bucket, and
    `_sum`/`_count` samples with `+Inf` == `_count` — checked per
    label-set, so one family broken out by {tenant,model} is validated
    as N independent bucket series

Optionally cross-checks the rest of the observability pipeline (the
repo's acceptance criterion: one id correlates every surface):

  * --access-log access.jsonl : every line is valid JSON with the
    documented schema keys and a 16-hex trace id
  * --trace trace.json        : every *served* (status 200) access-log
    line's trace id appears as a stitched per-request process row
    ("trace <id>") in the Chrome trace export

Usage:
  check_prometheus.py scrape.prom [--require NAME]...
                      [--require-label KEY=VALUE]...
                      [--access-log FILE] [--trace FILE]

Exits 0 when every check passes, 1 with one line per failure otherwise.
"""

import argparse
import json
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LE_RE = re.compile(r'le="([^"]+)"')
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def label_pairs(labels):
    """`{a="x",b="y"}` -> [("a", "x"), ("b", "y")] (empty for no labels)."""
    return LABEL_PAIR_RE.findall(labels) if labels else []


def series_key(labels):
    """The label-set minus `le`: identifies one bucket series within a
    histogram family that is broken out by e.g. {tenant,model}."""
    pairs = [(k, v) for k, v in label_pairs(labels) if k != "le"]
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"

ACCESS_KEYS = (
    "ts_us", "level", "method", "status", "id", "trace",
    "bytes_in", "bytes_out", "queue_wait_us", "handle_us", "cache_hit",
)

errors = []


def fail(msg):
    errors.append(msg)


def parse_scrape(path):
    """Returns (types: {family: type}, samples: [(name, labels, value)])."""
    types = {}
    samples = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4:
                    fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
                    continue
                _, _, family, kind = parts
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    fail(f"{path}:{lineno}: unknown metric type {kind!r}")
                types[family] = kind
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: unparseable sample line: {line!r}")
                continue
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            if not NAME_RE.match(name):
                fail(f"{path}:{lineno}: invalid metric name {name!r}")
            try:
                samples.append((name, labels, float(value)))
            except ValueError:
                fail(f"{path}:{lineno}: non-numeric value {value!r}")
    return types, samples


def family_of(name, types):
    """Maps a sample name back to its TYPE'd family, if any."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def check_scrape(path, required, required_labels=()):
    types, samples = parse_scrape(path)
    if not samples:
        fail(f"{path}: scrape contains no samples")

    by_family = {}
    for name, labels, value in samples:
        fam = family_of(name, types)
        if fam is None:
            fail(f"{path}: sample {name!r} belongs to no '# TYPE' family")
            continue
        by_family.setdefault(fam, []).append((name, labels, value))

    for fam, kind in types.items():
        rows = by_family.get(fam, [])
        if not rows:
            fail(f"{path}: family {fam!r} declared but has no samples")
            continue
        if kind == "counter":
            for name, _, value in rows:
                if not name.endswith("_total"):
                    fail(f"{path}: counter sample {name!r} lacks _total")
                if value < 0:
                    fail(f"{path}: counter {name!r} is negative ({value})")
        elif kind == "histogram":
            # One family may carry many bucket series (per-tenant/model
            # label-sets); each series is validated independently.
            series = {}
            for name, labels, value in rows:
                s = series.setdefault(series_key(labels),
                                      {"buckets": [], "sum": None,
                                       "count": None})
                if name == fam + "_bucket":
                    m = LE_RE.search(labels)
                    if not m:
                        fail(f"{path}: bucket of {fam!r} has no le label")
                        continue
                    edge = (math.inf if m.group(1) == "+Inf"
                            else float(m.group(1)))
                    s["buckets"].append((edge, value))
                elif name == fam + "_sum":
                    s["sum"] = value
                elif name == fam + "_count":
                    s["count"] = value
            for key, s in series.items():
                who = f"{fam}{key}"
                buckets = s["buckets"]
                if s["sum"] is None or s["count"] is None:
                    fail(f"{path}: histogram {who!r} missing _sum or _count")
                    continue
                if not buckets or buckets[-1][0] != math.inf:
                    fail(f"{path}: histogram {who!r} has no trailing "
                         f"+Inf bucket")
                    continue
                for (e1, v1), (e2, v2) in zip(buckets, buckets[1:]):
                    if e2 <= e1:
                        fail(f"{path}: {who!r} bucket edges not ascending "
                             f"({e1} then {e2})")
                    if v2 < v1:
                        fail(f"{path}: {who!r} buckets not cumulative "
                             f"(le={e2} count {v2} < le={e1} count {v1})")
                if buckets[-1][1] != s["count"]:
                    fail(f"{path}: {who!r} +Inf bucket {buckets[-1][1]} "
                         f"!= _count {s['count']}")

    for want in required:
        if not any(fam.startswith(want) for fam in types):
            fail(f"{path}: required metric family {want!r} not exposed")

    for want in required_labels:
        key, _, value = want.partition("=")
        if not any((key, value) in label_pairs(labels)
                   for _, labels, _ in samples):
            fail(f'{path}: no sample carries label {key}="{value}"')


def check_access_log(path):
    """Parses the access log; returns the trace ids of served requests."""
    served = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not valid JSON ({e})")
                continue
            for key in ACCESS_KEYS:
                if key not in rec:
                    fail(f"{path}:{lineno}: missing key {key!r}")
            trace = rec.get("trace", "")
            if not re.fullmatch(r"[0-9a-f]{16}", trace):
                fail(f"{path}:{lineno}: trace id {trace!r} is not 16 hex")
            if rec.get("level") == "warn" and "spans" not in rec:
                fail(f"{path}:{lineno}: warn record embeds no span tree")
            if rec.get("status") == 200:
                served.append(trace)
    if not served:
        fail(f"{path}: no served (status 200) requests logged")
    return served


def check_trace_correlation(trace_path, served):
    with open(trace_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    stitched = set()
    for ev in events:
        if ev.get("name") == "process_name":
            label = ev.get("args", {}).get("name", "")
            if label.startswith("trace "):
                stitched.add(label[len("trace "):])
    missing = [t for t in served if t not in stitched]
    for t in missing[:10]:
        fail(f"{trace_path}: served trace id {t} has no stitched "
             f"process row in the export")
    if len(missing) > 10:
        fail(f"{trace_path}: ...and {len(missing) - 10} more missing ids")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("scrape", help="Prometheus text-format scrape file")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="fail unless a metric family starts with NAME "
                         "(repeatable)")
    ap.add_argument("--require-label", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="fail unless some sample carries the label pair "
                         "(repeatable; e.g. tenant=acme)")
    ap.add_argument("--access-log", metavar="FILE",
                    help="structured access log (JSON lines) to validate")
    ap.add_argument("--trace", metavar="FILE",
                    help="Chrome trace export to correlate 200-lines against"
                         " (needs --access-log)")
    args = ap.parse_args()

    check_scrape(args.scrape, args.require, args.require_label)
    served = check_access_log(args.access_log) if args.access_log else []
    if args.trace:
        if not args.access_log:
            ap.error("--trace needs --access-log")
        check_trace_correlation(args.trace, served)

    if errors:
        for e in errors:
            print(f"check_prometheus: {e}", file=sys.stderr)
        print(f"check_prometheus: FAILED ({len(errors)} problem(s))",
              file=sys.stderr)
        return 1
    n = f"{args.scrape}" + (f" + {args.access_log}" if args.access_log else "")
    print(f"check_prometheus: OK ({n})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
