#!/usr/bin/env python3
"""Validate a SARIF 2.1.0 file written by upsim_cli --check --sarif-out.

Structural checks on the SARIF essentials the lint renderer commits to
(stdlib only, no jsonschema needed):

  * version is "2.1.0" and a $schema URI is present
  * exactly the members the renderer writes: runs -> tool.driver with
    name/version and a rules array
  * every rule has a stable id (UPSnnn), a PascalCase name, a
    shortDescription and an absolute helpUri
  * the rules array is fired-only and duplicate-free: every result's
    ruleId appears in it, every rule id is used by some result, and
    each result's ruleIndex points at its own rule
  * every result has level (error|warning|note), message.text, a
    physicalLocation whose region (when present) has positive
    startLine/startColumn, and a partialFingerprints object carrying
    the 16-hex "upsimFingerprint/v1" member the baseline workflow keys
    on

Optional gates for CI:

  * --max-errors N   : fail when more than N results have level error
  * --require-rule R : fail unless rule R fired (planted-finding check)
  * --forbid-rule R  : fail if rule R fired

Usage:
  check_sarif.py file.sarif [--max-errors N]
                 [--require-rule UPSnnn]... [--forbid-rule UPSnnn]...

Exits 0 when every check passes, 1 with one line per failure otherwise.
"""

import argparse
import json
import re
import sys

RULE_ID_RE = re.compile(r"^UPS\d{3}$")
NAME_RE = re.compile(r"^[A-Z][A-Za-z0-9]*$")
FINGERPRINT_RE = re.compile(r"^[0-9a-f]{16}$")
LEVELS = {"error", "warning", "note"}


def check(sarif, failures):
    if sarif.get("version") != "2.1.0":
        failures.append(f"version is {sarif.get('version')!r}, want '2.1.0'")
    if not str(sarif.get("$schema", "")).startswith("http"):
        failures.append("$schema missing or not a URI")
    runs = sarif.get("runs")
    if not isinstance(runs, list) or not runs:
        failures.append("runs must be a non-empty array")
        return

    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            failures.append(f"{where}: tool.driver.name missing")
        if not driver.get("version"):
            failures.append(f"{where}: tool.driver.version missing")

        rules = driver.get("rules")
        if not isinstance(rules, list):
            failures.append(f"{where}: tool.driver.rules must be an array")
            rules = []
        rule_ids = []
        for i, rule in enumerate(rules):
            rid = rule.get("id", "")
            if not RULE_ID_RE.match(rid):
                failures.append(f"{where}.rules[{i}]: bad id {rid!r}")
            if not NAME_RE.match(rule.get("name", "")):
                failures.append(
                    f"{where}.rules[{i}] ({rid}): bad name "
                    f"{rule.get('name')!r}"
                )
            if not rule.get("shortDescription", {}).get("text"):
                failures.append(
                    f"{where}.rules[{i}] ({rid}): shortDescription.text "
                    "missing"
                )
            if not str(rule.get("helpUri", "")).startswith("https://"):
                failures.append(
                    f"{where}.rules[{i}] ({rid}): helpUri missing or not "
                    "absolute"
                )
            rule_ids.append(rid)
        if len(set(rule_ids)) != len(rule_ids):
            failures.append(f"{where}: duplicate rule ids")

        results = run.get("results")
        if not isinstance(results, list):
            failures.append(f"{where}: results must be an array")
            results = []
        fired = set()
        for i, result in enumerate(results):
            rwhere = f"{where}.results[{i}]"
            rid = result.get("ruleId", "")
            fired.add(rid)
            if rid not in rule_ids:
                failures.append(
                    f"{rwhere}: ruleId {rid!r} not in the rules array"
                )
            index = result.get("ruleIndex")
            if (
                not isinstance(index, int)
                or not 0 <= index < len(rule_ids)
                or rule_ids[index] != rid
            ):
                failures.append(
                    f"{rwhere}: ruleIndex {index!r} does not point at {rid}"
                )
            if result.get("level") not in LEVELS:
                failures.append(
                    f"{rwhere}: level {result.get('level')!r} not in "
                    f"{sorted(LEVELS)}"
                )
            if not result.get("message", {}).get("text"):
                failures.append(f"{rwhere}: message.text missing")
            for loc in result.get("locations", []):
                physical = loc.get("physicalLocation", {})
                if not physical.get("artifactLocation", {}).get("uri"):
                    failures.append(
                        f"{rwhere}: physicalLocation without an "
                        "artifactLocation.uri"
                    )
                region = physical.get("region")
                if region is not None:
                    for key in ("startLine", "startColumn"):
                        value = region.get(key)
                        if not isinstance(value, int) or value < 1:
                            failures.append(
                                f"{rwhere}: region.{key} = {value!r}, want "
                                "a positive integer"
                            )
            fingerprint = result.get("partialFingerprints", {}).get(
                "upsimFingerprint/v1"
            )
            if not isinstance(fingerprint, str) or not FINGERPRINT_RE.match(
                fingerprint
            ):
                failures.append(
                    f"{rwhere}: partialFingerprints['upsimFingerprint/v1'] "
                    f"= {fingerprint!r}, want 16 lowercase hex chars"
                )
        unused = set(rule_ids) - fired
        if unused:
            failures.append(
                f"{where}: rules array is not fired-only, unused: "
                f"{sorted(unused)}"
            )
    return


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("sarif", help="SARIF file to validate")
    parser.add_argument("--max-errors", type=int, default=None)
    parser.add_argument("--require-rule", action="append", default=[])
    parser.add_argument("--forbid-rule", action="append", default=[])
    args = parser.parse_args()

    failures = []
    try:
        with open(args.sarif, encoding="utf-8") as handle:
            sarif = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: {args.sarif}: {error}", file=sys.stderr)
        return 1

    check(sarif, failures)

    fired = {
        result.get("ruleId")
        for run in sarif.get("runs", []) or []
        for result in run.get("results", []) or []
    }
    error_count = sum(
        1
        for run in sarif.get("runs", []) or []
        for result in run.get("results", []) or []
        if result.get("level") == "error"
    )
    if args.max_errors is not None and error_count > args.max_errors:
        failures.append(
            f"{error_count} error-level results, --max-errors {args.max_errors}"
        )
    for rule in args.require_rule:
        if rule not in fired:
            failures.append(f"--require-rule {rule}: rule did not fire")
    for rule in args.forbid_rule:
        if rule in fired:
            failures.append(f"--forbid-rule {rule}: rule fired")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    results = sum(len(run.get("results", [])) for run in sarif["runs"])
    print(f"ok: {args.sarif}: {results} result(s), {error_count} error(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
