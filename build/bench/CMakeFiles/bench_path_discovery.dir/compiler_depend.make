# Empty compiler generated dependencies file for bench_path_discovery.
# This may be replaced when dependencies are built.
