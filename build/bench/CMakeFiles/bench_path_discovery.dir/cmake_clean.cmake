file(REMOVE_RECURSE
  "CMakeFiles/bench_path_discovery.dir/bench_path_discovery.cpp.o"
  "CMakeFiles/bench_path_discovery.dir/bench_path_discovery.cpp.o.d"
  "bench_path_discovery"
  "bench_path_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
