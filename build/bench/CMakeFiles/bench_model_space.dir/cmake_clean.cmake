file(REMOVE_RECURSE
  "CMakeFiles/bench_model_space.dir/bench_model_space.cpp.o"
  "CMakeFiles/bench_model_space.dir/bench_model_space.cpp.o.d"
  "bench_model_space"
  "bench_model_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
