file(REMOVE_RECURSE
  "CMakeFiles/bench_depend.dir/bench_depend.cpp.o"
  "CMakeFiles/bench_depend.dir/bench_depend.cpp.o.d"
  "bench_depend"
  "bench_depend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_depend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
