# Empty dependencies file for bench_depend.
# This may be replaced when dependencies are built.
