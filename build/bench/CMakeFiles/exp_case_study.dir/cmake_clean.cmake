file(REMOVE_RECURSE
  "CMakeFiles/exp_case_study.dir/exp_case_study.cpp.o"
  "CMakeFiles/exp_case_study.dir/exp_case_study.cpp.o.d"
  "exp_case_study"
  "exp_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
