file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamicity.dir/bench_dynamicity.cpp.o"
  "CMakeFiles/bench_dynamicity.dir/bench_dynamicity.cpp.o.d"
  "bench_dynamicity"
  "bench_dynamicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
