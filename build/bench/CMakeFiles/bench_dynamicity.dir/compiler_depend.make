# Empty compiler generated dependencies file for bench_dynamicity.
# This may be replaced when dependencies are built.
