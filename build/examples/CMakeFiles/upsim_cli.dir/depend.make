# Empty dependencies file for upsim_cli.
# This may be replaced when dependencies are built.
