file(REMOVE_RECURSE
  "CMakeFiles/upsim_cli.dir/upsim_cli.cpp.o"
  "CMakeFiles/upsim_cli.dir/upsim_cli.cpp.o.d"
  "upsim_cli"
  "upsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
