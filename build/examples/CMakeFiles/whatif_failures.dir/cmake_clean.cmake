file(REMOVE_RECURSE
  "CMakeFiles/whatif_failures.dir/whatif_failures.cpp.o"
  "CMakeFiles/whatif_failures.dir/whatif_failures.cpp.o.d"
  "whatif_failures"
  "whatif_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
