# Empty dependencies file for whatif_failures.
# This may be replaced when dependencies are built.
