# Empty compiler generated dependencies file for availability_matrix.
# This may be replaced when dependencies are built.
