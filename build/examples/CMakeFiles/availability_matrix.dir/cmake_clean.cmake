file(REMOVE_RECURSE
  "CMakeFiles/availability_matrix.dir/availability_matrix.cpp.o"
  "CMakeFiles/availability_matrix.dir/availability_matrix.cpp.o.d"
  "availability_matrix"
  "availability_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
