file(REMOVE_RECURSE
  "CMakeFiles/service_migration.dir/service_migration.cpp.o"
  "CMakeFiles/service_migration.dir/service_migration.cpp.o.d"
  "service_migration"
  "service_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
