file(REMOVE_RECURSE
  "CMakeFiles/monitoring_simulation.dir/monitoring_simulation.cpp.o"
  "CMakeFiles/monitoring_simulation.dir/monitoring_simulation.cpp.o.d"
  "monitoring_simulation"
  "monitoring_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
