# Empty compiler generated dependencies file for monitoring_simulation.
# This may be replaced when dependencies are built.
