# Empty compiler generated dependencies file for usi_printing.
# This may be replaced when dependencies are built.
