file(REMOVE_RECURSE
  "CMakeFiles/usi_printing.dir/usi_printing.cpp.o"
  "CMakeFiles/usi_printing.dir/usi_printing.cpp.o.d"
  "usi_printing"
  "usi_printing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usi_printing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
