file(REMOVE_RECURSE
  "CMakeFiles/mobile_user.dir/mobile_user.cpp.o"
  "CMakeFiles/mobile_user.dir/mobile_user.cpp.o.d"
  "mobile_user"
  "mobile_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
