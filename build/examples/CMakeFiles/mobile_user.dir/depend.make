# Empty dependencies file for mobile_user.
# This may be replaced when dependencies are built.
