file(REMOVE_RECURSE
  "CMakeFiles/test_uml_profile.dir/test_uml_profile.cpp.o"
  "CMakeFiles/test_uml_profile.dir/test_uml_profile.cpp.o.d"
  "test_uml_profile"
  "test_uml_profile.pdb"
  "test_uml_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uml_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
