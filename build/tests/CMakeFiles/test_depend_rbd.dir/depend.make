# Empty dependencies file for test_depend_rbd.
# This may be replaced when dependencies are built.
