file(REMOVE_RECURSE
  "CMakeFiles/test_depend_rbd.dir/test_depend_rbd.cpp.o"
  "CMakeFiles/test_depend_rbd.dir/test_depend_rbd.cpp.o.d"
  "test_depend_rbd"
  "test_depend_rbd.pdb"
  "test_depend_rbd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_rbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
