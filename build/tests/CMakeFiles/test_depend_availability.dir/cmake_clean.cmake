file(REMOVE_RECURSE
  "CMakeFiles/test_depend_availability.dir/test_depend_availability.cpp.o"
  "CMakeFiles/test_depend_availability.dir/test_depend_availability.cpp.o.d"
  "test_depend_availability"
  "test_depend_availability.pdb"
  "test_depend_availability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
