# Empty dependencies file for test_depend_availability.
# This may be replaced when dependencies are built.
