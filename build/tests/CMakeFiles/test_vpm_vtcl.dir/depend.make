# Empty dependencies file for test_vpm_vtcl.
# This may be replaced when dependencies are built.
