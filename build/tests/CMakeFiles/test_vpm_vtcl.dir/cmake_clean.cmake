file(REMOVE_RECURSE
  "CMakeFiles/test_vpm_vtcl.dir/test_vpm_vtcl.cpp.o"
  "CMakeFiles/test_vpm_vtcl.dir/test_vpm_vtcl.cpp.o.d"
  "test_vpm_vtcl"
  "test_vpm_vtcl.pdb"
  "test_vpm_vtcl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vpm_vtcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
