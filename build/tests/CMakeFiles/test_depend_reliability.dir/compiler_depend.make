# Empty compiler generated dependencies file for test_depend_reliability.
# This may be replaced when dependencies are built.
