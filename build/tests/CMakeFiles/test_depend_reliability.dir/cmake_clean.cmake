file(REMOVE_RECURSE
  "CMakeFiles/test_depend_reliability.dir/test_depend_reliability.cpp.o"
  "CMakeFiles/test_depend_reliability.dir/test_depend_reliability.cpp.o.d"
  "test_depend_reliability"
  "test_depend_reliability.pdb"
  "test_depend_reliability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
