# Empty compiler generated dependencies file for test_depend_sensitivity_sla.
# This may be replaced when dependencies are built.
