file(REMOVE_RECURSE
  "CMakeFiles/test_depend_sensitivity_sla.dir/test_depend_sensitivity_sla.cpp.o"
  "CMakeFiles/test_depend_sensitivity_sla.dir/test_depend_sensitivity_sla.cpp.o.d"
  "test_depend_sensitivity_sla"
  "test_depend_sensitivity_sla.pdb"
  "test_depend_sensitivity_sla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_sensitivity_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
