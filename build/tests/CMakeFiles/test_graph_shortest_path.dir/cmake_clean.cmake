file(REMOVE_RECURSE
  "CMakeFiles/test_graph_shortest_path.dir/test_graph_shortest_path.cpp.o"
  "CMakeFiles/test_graph_shortest_path.dir/test_graph_shortest_path.cpp.o.d"
  "test_graph_shortest_path"
  "test_graph_shortest_path.pdb"
  "test_graph_shortest_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_shortest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
