file(REMOVE_RECURSE
  "CMakeFiles/test_pathdisc.dir/test_pathdisc.cpp.o"
  "CMakeFiles/test_pathdisc.dir/test_pathdisc.cpp.o.d"
  "test_pathdisc"
  "test_pathdisc.pdb"
  "test_pathdisc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pathdisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
