# Empty dependencies file for test_pathdisc.
# This may be replaced when dependencies are built.
