file(REMOVE_RECURSE
  "CMakeFiles/test_pathdisc_stats.dir/test_pathdisc_stats.cpp.o"
  "CMakeFiles/test_pathdisc_stats.dir/test_pathdisc_stats.cpp.o.d"
  "test_pathdisc_stats"
  "test_pathdisc_stats.pdb"
  "test_pathdisc_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pathdisc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
