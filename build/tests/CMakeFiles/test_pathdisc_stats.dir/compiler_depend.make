# Empty compiler generated dependencies file for test_pathdisc_stats.
# This may be replaced when dependencies are built.
