# Empty dependencies file for test_depend_simulator.
# This may be replaced when dependencies are built.
