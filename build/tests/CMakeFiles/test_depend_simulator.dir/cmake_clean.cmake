file(REMOVE_RECURSE
  "CMakeFiles/test_depend_simulator.dir/test_depend_simulator.cpp.o"
  "CMakeFiles/test_depend_simulator.dir/test_depend_simulator.cpp.o.d"
  "test_depend_simulator"
  "test_depend_simulator.pdb"
  "test_depend_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
