file(REMOVE_RECURSE
  "CMakeFiles/test_depend_performability.dir/test_depend_performability.cpp.o"
  "CMakeFiles/test_depend_performability.dir/test_depend_performability.cpp.o.d"
  "test_depend_performability"
  "test_depend_performability.pdb"
  "test_depend_performability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_performability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
