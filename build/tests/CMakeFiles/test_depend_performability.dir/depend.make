# Empty dependencies file for test_depend_performability.
# This may be replaced when dependencies are built.
