file(REMOVE_RECURSE
  "CMakeFiles/test_vpm_rules.dir/test_vpm_rules.cpp.o"
  "CMakeFiles/test_vpm_rules.dir/test_vpm_rules.cpp.o.d"
  "test_vpm_rules"
  "test_vpm_rules.pdb"
  "test_vpm_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vpm_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
