# Empty compiler generated dependencies file for test_vpm_rules.
# This may be replaced when dependencies are built.
