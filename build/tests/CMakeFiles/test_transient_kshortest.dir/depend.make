# Empty dependencies file for test_transient_kshortest.
# This may be replaced when dependencies are built.
