file(REMOVE_RECURSE
  "CMakeFiles/test_transient_kshortest.dir/test_transient_kshortest.cpp.o"
  "CMakeFiles/test_transient_kshortest.dir/test_transient_kshortest.cpp.o.d"
  "test_transient_kshortest"
  "test_transient_kshortest.pdb"
  "test_transient_kshortest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient_kshortest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
