file(REMOVE_RECURSE
  "CMakeFiles/test_uml_activity.dir/test_uml_activity.cpp.o"
  "CMakeFiles/test_uml_activity.dir/test_uml_activity.cpp.o.d"
  "test_uml_activity"
  "test_uml_activity.pdb"
  "test_uml_activity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uml_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
