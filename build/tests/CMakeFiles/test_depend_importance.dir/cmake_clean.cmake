file(REMOVE_RECURSE
  "CMakeFiles/test_depend_importance.dir/test_depend_importance.cpp.o"
  "CMakeFiles/test_depend_importance.dir/test_depend_importance.cpp.o.d"
  "test_depend_importance"
  "test_depend_importance.pdb"
  "test_depend_importance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
