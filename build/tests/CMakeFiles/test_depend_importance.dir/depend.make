# Empty dependencies file for test_depend_importance.
# This may be replaced when dependencies are built.
