file(REMOVE_RECURSE
  "CMakeFiles/test_depend_responsiveness.dir/test_depend_responsiveness.cpp.o"
  "CMakeFiles/test_depend_responsiveness.dir/test_depend_responsiveness.cpp.o.d"
  "test_depend_responsiveness"
  "test_depend_responsiveness.pdb"
  "test_depend_responsiveness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
