# Empty compiler generated dependencies file for test_depend_responsiveness.
# This may be replaced when dependencies are built.
