file(REMOVE_RECURSE
  "CMakeFiles/test_umlio.dir/test_umlio.cpp.o"
  "CMakeFiles/test_umlio.dir/test_umlio.cpp.o.d"
  "test_umlio"
  "test_umlio.pdb"
  "test_umlio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_umlio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
