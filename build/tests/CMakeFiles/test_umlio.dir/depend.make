# Empty dependencies file for test_umlio.
# This may be replaced when dependencies are built.
