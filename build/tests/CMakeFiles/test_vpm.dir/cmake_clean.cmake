file(REMOVE_RECURSE
  "CMakeFiles/test_vpm.dir/test_vpm.cpp.o"
  "CMakeFiles/test_vpm.dir/test_vpm.cpp.o.d"
  "test_vpm"
  "test_vpm.pdb"
  "test_vpm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
