# Empty compiler generated dependencies file for test_vpm.
# This may be replaced when dependencies are built.
