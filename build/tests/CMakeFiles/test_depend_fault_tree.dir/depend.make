# Empty dependencies file for test_depend_fault_tree.
# This may be replaced when dependencies are built.
