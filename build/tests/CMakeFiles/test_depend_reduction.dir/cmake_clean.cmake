file(REMOVE_RECURSE
  "CMakeFiles/test_depend_reduction.dir/test_depend_reduction.cpp.o"
  "CMakeFiles/test_depend_reduction.dir/test_depend_reduction.cpp.o.d"
  "test_depend_reduction"
  "test_depend_reduction.pdb"
  "test_depend_reduction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
