# Empty dependencies file for test_depend_reduction.
# This may be replaced when dependencies are built.
