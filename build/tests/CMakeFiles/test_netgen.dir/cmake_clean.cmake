file(REMOVE_RECURSE
  "CMakeFiles/test_netgen.dir/test_netgen.cpp.o"
  "CMakeFiles/test_netgen.dir/test_netgen.cpp.o.d"
  "test_netgen"
  "test_netgen.pdb"
  "test_netgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
