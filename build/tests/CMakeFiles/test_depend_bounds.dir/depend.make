# Empty dependencies file for test_depend_bounds.
# This may be replaced when dependencies are built.
