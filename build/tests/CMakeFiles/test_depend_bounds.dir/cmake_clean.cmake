file(REMOVE_RECURSE
  "CMakeFiles/test_depend_bounds.dir/test_depend_bounds.cpp.o"
  "CMakeFiles/test_depend_bounds.dir/test_depend_bounds.cpp.o.d"
  "test_depend_bounds"
  "test_depend_bounds.pdb"
  "test_depend_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depend_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
