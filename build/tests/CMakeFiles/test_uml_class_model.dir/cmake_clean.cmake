file(REMOVE_RECURSE
  "CMakeFiles/test_uml_class_model.dir/test_uml_class_model.cpp.o"
  "CMakeFiles/test_uml_class_model.dir/test_uml_class_model.cpp.o.d"
  "test_uml_class_model"
  "test_uml_class_model.pdb"
  "test_uml_class_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uml_class_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
