file(REMOVE_RECURSE
  "libupsim_bdd.a"
)
