file(REMOVE_RECURSE
  "CMakeFiles/upsim_bdd.dir/bdd/bdd.cpp.o"
  "CMakeFiles/upsim_bdd.dir/bdd/bdd.cpp.o.d"
  "libupsim_bdd.a"
  "libupsim_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
