# Empty compiler generated dependencies file for upsim_bdd.
# This may be replaced when dependencies are built.
