file(REMOVE_RECURSE
  "libupsim_service.a"
)
