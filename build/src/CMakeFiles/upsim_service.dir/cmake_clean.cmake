file(REMOVE_RECURSE
  "CMakeFiles/upsim_service.dir/service/service.cpp.o"
  "CMakeFiles/upsim_service.dir/service/service.cpp.o.d"
  "libupsim_service.a"
  "libupsim_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
