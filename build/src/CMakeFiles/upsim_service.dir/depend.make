# Empty dependencies file for upsim_service.
# This may be replaced when dependencies are built.
