file(REMOVE_RECURSE
  "libupsim_xml.a"
)
