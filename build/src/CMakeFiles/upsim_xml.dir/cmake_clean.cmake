file(REMOVE_RECURSE
  "CMakeFiles/upsim_xml.dir/xml/dom.cpp.o"
  "CMakeFiles/upsim_xml.dir/xml/dom.cpp.o.d"
  "CMakeFiles/upsim_xml.dir/xml/parser.cpp.o"
  "CMakeFiles/upsim_xml.dir/xml/parser.cpp.o.d"
  "libupsim_xml.a"
  "libupsim_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
