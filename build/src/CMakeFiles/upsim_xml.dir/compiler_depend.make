# Empty compiler generated dependencies file for upsim_xml.
# This may be replaced when dependencies are built.
