file(REMOVE_RECURSE
  "libupsim_transform.a"
)
