# Empty dependencies file for upsim_transform.
# This may be replaced when dependencies are built.
