file(REMOVE_RECURSE
  "CMakeFiles/upsim_transform.dir/transform/mapping_importer.cpp.o"
  "CMakeFiles/upsim_transform.dir/transform/mapping_importer.cpp.o.d"
  "CMakeFiles/upsim_transform.dir/transform/projection.cpp.o"
  "CMakeFiles/upsim_transform.dir/transform/projection.cpp.o.d"
  "CMakeFiles/upsim_transform.dir/transform/space_discovery.cpp.o"
  "CMakeFiles/upsim_transform.dir/transform/space_discovery.cpp.o.d"
  "CMakeFiles/upsim_transform.dir/transform/uml_importer.cpp.o"
  "CMakeFiles/upsim_transform.dir/transform/uml_importer.cpp.o.d"
  "CMakeFiles/upsim_transform.dir/transform/upsim_emitter.cpp.o"
  "CMakeFiles/upsim_transform.dir/transform/upsim_emitter.cpp.o.d"
  "libupsim_transform.a"
  "libupsim_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
