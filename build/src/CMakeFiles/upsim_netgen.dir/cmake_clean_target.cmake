file(REMOVE_RECURSE
  "libupsim_netgen.a"
)
