# Empty compiler generated dependencies file for upsim_netgen.
# This may be replaced when dependencies are built.
