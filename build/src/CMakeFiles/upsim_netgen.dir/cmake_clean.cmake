file(REMOVE_RECURSE
  "CMakeFiles/upsim_netgen.dir/netgen/generators.cpp.o"
  "CMakeFiles/upsim_netgen.dir/netgen/generators.cpp.o.d"
  "libupsim_netgen.a"
  "libupsim_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
