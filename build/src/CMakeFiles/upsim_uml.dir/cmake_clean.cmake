file(REMOVE_RECURSE
  "CMakeFiles/upsim_uml.dir/uml/activity.cpp.o"
  "CMakeFiles/upsim_uml.dir/uml/activity.cpp.o.d"
  "CMakeFiles/upsim_uml.dir/uml/class_model.cpp.o"
  "CMakeFiles/upsim_uml.dir/uml/class_model.cpp.o.d"
  "CMakeFiles/upsim_uml.dir/uml/object_model.cpp.o"
  "CMakeFiles/upsim_uml.dir/uml/object_model.cpp.o.d"
  "CMakeFiles/upsim_uml.dir/uml/profile.cpp.o"
  "CMakeFiles/upsim_uml.dir/uml/profile.cpp.o.d"
  "CMakeFiles/upsim_uml.dir/uml/value.cpp.o"
  "CMakeFiles/upsim_uml.dir/uml/value.cpp.o.d"
  "libupsim_uml.a"
  "libupsim_uml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_uml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
