file(REMOVE_RECURSE
  "libupsim_uml.a"
)
