
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uml/activity.cpp" "src/CMakeFiles/upsim_uml.dir/uml/activity.cpp.o" "gcc" "src/CMakeFiles/upsim_uml.dir/uml/activity.cpp.o.d"
  "/root/repo/src/uml/class_model.cpp" "src/CMakeFiles/upsim_uml.dir/uml/class_model.cpp.o" "gcc" "src/CMakeFiles/upsim_uml.dir/uml/class_model.cpp.o.d"
  "/root/repo/src/uml/object_model.cpp" "src/CMakeFiles/upsim_uml.dir/uml/object_model.cpp.o" "gcc" "src/CMakeFiles/upsim_uml.dir/uml/object_model.cpp.o.d"
  "/root/repo/src/uml/profile.cpp" "src/CMakeFiles/upsim_uml.dir/uml/profile.cpp.o" "gcc" "src/CMakeFiles/upsim_uml.dir/uml/profile.cpp.o.d"
  "/root/repo/src/uml/value.cpp" "src/CMakeFiles/upsim_uml.dir/uml/value.cpp.o" "gcc" "src/CMakeFiles/upsim_uml.dir/uml/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
