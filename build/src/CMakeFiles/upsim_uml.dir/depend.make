# Empty dependencies file for upsim_uml.
# This may be replaced when dependencies are built.
