
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/upsim_core.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/upsim_core.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/diff.cpp" "src/CMakeFiles/upsim_core.dir/core/diff.cpp.o" "gcc" "src/CMakeFiles/upsim_core.dir/core/diff.cpp.o.d"
  "/root/repo/src/core/rbd_builder.cpp" "src/CMakeFiles/upsim_core.dir/core/rbd_builder.cpp.o" "gcc" "src/CMakeFiles/upsim_core.dir/core/rbd_builder.cpp.o.d"
  "/root/repo/src/core/upsim_generator.cpp" "src/CMakeFiles/upsim_core.dir/core/upsim_generator.cpp.o" "gcc" "src/CMakeFiles/upsim_core.dir/core/upsim_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upsim_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_pathdisc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_depend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_service.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_uml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_vpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
