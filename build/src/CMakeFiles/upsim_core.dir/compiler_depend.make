# Empty compiler generated dependencies file for upsim_core.
# This may be replaced when dependencies are built.
