file(REMOVE_RECURSE
  "CMakeFiles/upsim_core.dir/core/analysis.cpp.o"
  "CMakeFiles/upsim_core.dir/core/analysis.cpp.o.d"
  "CMakeFiles/upsim_core.dir/core/diff.cpp.o"
  "CMakeFiles/upsim_core.dir/core/diff.cpp.o.d"
  "CMakeFiles/upsim_core.dir/core/rbd_builder.cpp.o"
  "CMakeFiles/upsim_core.dir/core/rbd_builder.cpp.o.d"
  "CMakeFiles/upsim_core.dir/core/upsim_generator.cpp.o"
  "CMakeFiles/upsim_core.dir/core/upsim_generator.cpp.o.d"
  "libupsim_core.a"
  "libupsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
