file(REMOVE_RECURSE
  "libupsim_core.a"
)
