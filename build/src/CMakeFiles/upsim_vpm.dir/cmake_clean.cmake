file(REMOVE_RECURSE
  "CMakeFiles/upsim_vpm.dir/vpm/model_space.cpp.o"
  "CMakeFiles/upsim_vpm.dir/vpm/model_space.cpp.o.d"
  "CMakeFiles/upsim_vpm.dir/vpm/pattern.cpp.o"
  "CMakeFiles/upsim_vpm.dir/vpm/pattern.cpp.o.d"
  "CMakeFiles/upsim_vpm.dir/vpm/rules.cpp.o"
  "CMakeFiles/upsim_vpm.dir/vpm/rules.cpp.o.d"
  "CMakeFiles/upsim_vpm.dir/vpm/vtcl.cpp.o"
  "CMakeFiles/upsim_vpm.dir/vpm/vtcl.cpp.o.d"
  "libupsim_vpm.a"
  "libupsim_vpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_vpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
