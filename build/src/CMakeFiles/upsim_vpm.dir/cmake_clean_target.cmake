file(REMOVE_RECURSE
  "libupsim_vpm.a"
)
