
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vpm/model_space.cpp" "src/CMakeFiles/upsim_vpm.dir/vpm/model_space.cpp.o" "gcc" "src/CMakeFiles/upsim_vpm.dir/vpm/model_space.cpp.o.d"
  "/root/repo/src/vpm/pattern.cpp" "src/CMakeFiles/upsim_vpm.dir/vpm/pattern.cpp.o" "gcc" "src/CMakeFiles/upsim_vpm.dir/vpm/pattern.cpp.o.d"
  "/root/repo/src/vpm/rules.cpp" "src/CMakeFiles/upsim_vpm.dir/vpm/rules.cpp.o" "gcc" "src/CMakeFiles/upsim_vpm.dir/vpm/rules.cpp.o.d"
  "/root/repo/src/vpm/vtcl.cpp" "src/CMakeFiles/upsim_vpm.dir/vpm/vtcl.cpp.o" "gcc" "src/CMakeFiles/upsim_vpm.dir/vpm/vtcl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
