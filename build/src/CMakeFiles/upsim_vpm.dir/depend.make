# Empty dependencies file for upsim_vpm.
# This may be replaced when dependencies are built.
