# Empty dependencies file for upsim_depend.
# This may be replaced when dependencies are built.
