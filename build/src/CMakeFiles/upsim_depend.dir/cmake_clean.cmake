file(REMOVE_RECURSE
  "CMakeFiles/upsim_depend.dir/depend/availability.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/availability.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/bdd_availability.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/bdd_availability.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/bounds.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/bounds.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/export.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/export.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/fault_tree.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/fault_tree.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/importance.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/importance.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/performability.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/performability.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/rbd.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/rbd.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/reduction.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/reduction.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/reliability.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/reliability.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/responsiveness.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/responsiveness.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/sensitivity.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/sensitivity.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/simulator.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/simulator.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/sla.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/sla.cpp.o.d"
  "CMakeFiles/upsim_depend.dir/depend/transient.cpp.o"
  "CMakeFiles/upsim_depend.dir/depend/transient.cpp.o.d"
  "libupsim_depend.a"
  "libupsim_depend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_depend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
