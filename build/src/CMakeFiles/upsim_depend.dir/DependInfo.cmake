
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/depend/availability.cpp" "src/CMakeFiles/upsim_depend.dir/depend/availability.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/availability.cpp.o.d"
  "/root/repo/src/depend/bdd_availability.cpp" "src/CMakeFiles/upsim_depend.dir/depend/bdd_availability.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/bdd_availability.cpp.o.d"
  "/root/repo/src/depend/bounds.cpp" "src/CMakeFiles/upsim_depend.dir/depend/bounds.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/bounds.cpp.o.d"
  "/root/repo/src/depend/export.cpp" "src/CMakeFiles/upsim_depend.dir/depend/export.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/export.cpp.o.d"
  "/root/repo/src/depend/fault_tree.cpp" "src/CMakeFiles/upsim_depend.dir/depend/fault_tree.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/fault_tree.cpp.o.d"
  "/root/repo/src/depend/importance.cpp" "src/CMakeFiles/upsim_depend.dir/depend/importance.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/importance.cpp.o.d"
  "/root/repo/src/depend/performability.cpp" "src/CMakeFiles/upsim_depend.dir/depend/performability.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/performability.cpp.o.d"
  "/root/repo/src/depend/rbd.cpp" "src/CMakeFiles/upsim_depend.dir/depend/rbd.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/rbd.cpp.o.d"
  "/root/repo/src/depend/reduction.cpp" "src/CMakeFiles/upsim_depend.dir/depend/reduction.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/reduction.cpp.o.d"
  "/root/repo/src/depend/reliability.cpp" "src/CMakeFiles/upsim_depend.dir/depend/reliability.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/reliability.cpp.o.d"
  "/root/repo/src/depend/responsiveness.cpp" "src/CMakeFiles/upsim_depend.dir/depend/responsiveness.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/responsiveness.cpp.o.d"
  "/root/repo/src/depend/sensitivity.cpp" "src/CMakeFiles/upsim_depend.dir/depend/sensitivity.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/sensitivity.cpp.o.d"
  "/root/repo/src/depend/simulator.cpp" "src/CMakeFiles/upsim_depend.dir/depend/simulator.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/simulator.cpp.o.d"
  "/root/repo/src/depend/sla.cpp" "src/CMakeFiles/upsim_depend.dir/depend/sla.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/sla.cpp.o.d"
  "/root/repo/src/depend/transient.cpp" "src/CMakeFiles/upsim_depend.dir/depend/transient.cpp.o" "gcc" "src/CMakeFiles/upsim_depend.dir/depend/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upsim_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_pathdisc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
