file(REMOVE_RECURSE
  "libupsim_depend.a"
)
