file(REMOVE_RECURSE
  "libupsim_casestudy.a"
)
