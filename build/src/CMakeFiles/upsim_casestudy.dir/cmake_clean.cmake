file(REMOVE_RECURSE
  "CMakeFiles/upsim_casestudy.dir/casestudy/usi.cpp.o"
  "CMakeFiles/upsim_casestudy.dir/casestudy/usi.cpp.o.d"
  "libupsim_casestudy.a"
  "libupsim_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
