# Empty dependencies file for upsim_casestudy.
# This may be replaced when dependencies are built.
