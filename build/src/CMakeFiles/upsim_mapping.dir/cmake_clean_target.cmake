file(REMOVE_RECURSE
  "libupsim_mapping.a"
)
