file(REMOVE_RECURSE
  "CMakeFiles/upsim_mapping.dir/mapping/mapping.cpp.o"
  "CMakeFiles/upsim_mapping.dir/mapping/mapping.cpp.o.d"
  "libupsim_mapping.a"
  "libupsim_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
