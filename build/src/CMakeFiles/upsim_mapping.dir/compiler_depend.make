# Empty compiler generated dependencies file for upsim_mapping.
# This may be replaced when dependencies are built.
