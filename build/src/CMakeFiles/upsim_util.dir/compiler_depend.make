# Empty compiler generated dependencies file for upsim_util.
# This may be replaced when dependencies are built.
