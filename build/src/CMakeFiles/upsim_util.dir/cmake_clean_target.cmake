file(REMOVE_RECURSE
  "libupsim_util.a"
)
