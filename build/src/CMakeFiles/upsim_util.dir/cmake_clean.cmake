file(REMOVE_RECURSE
  "CMakeFiles/upsim_util.dir/util/error.cpp.o"
  "CMakeFiles/upsim_util.dir/util/error.cpp.o.d"
  "CMakeFiles/upsim_util.dir/util/strings.cpp.o"
  "CMakeFiles/upsim_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/upsim_util.dir/util/table.cpp.o"
  "CMakeFiles/upsim_util.dir/util/table.cpp.o.d"
  "CMakeFiles/upsim_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/upsim_util.dir/util/thread_pool.cpp.o.d"
  "libupsim_util.a"
  "libupsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
