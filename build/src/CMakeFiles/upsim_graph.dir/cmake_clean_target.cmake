file(REMOVE_RECURSE
  "libupsim_graph.a"
)
