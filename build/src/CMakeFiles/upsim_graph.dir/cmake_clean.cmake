file(REMOVE_RECURSE
  "CMakeFiles/upsim_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/upsim_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/upsim_graph.dir/graph/k_shortest.cpp.o"
  "CMakeFiles/upsim_graph.dir/graph/k_shortest.cpp.o.d"
  "CMakeFiles/upsim_graph.dir/graph/shortest_path.cpp.o"
  "CMakeFiles/upsim_graph.dir/graph/shortest_path.cpp.o.d"
  "CMakeFiles/upsim_graph.dir/graph/widest_path.cpp.o"
  "CMakeFiles/upsim_graph.dir/graph/widest_path.cpp.o.d"
  "libupsim_graph.a"
  "libupsim_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
