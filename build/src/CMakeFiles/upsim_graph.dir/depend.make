# Empty dependencies file for upsim_graph.
# This may be replaced when dependencies are built.
