
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/upsim_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/upsim_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/k_shortest.cpp" "src/CMakeFiles/upsim_graph.dir/graph/k_shortest.cpp.o" "gcc" "src/CMakeFiles/upsim_graph.dir/graph/k_shortest.cpp.o.d"
  "/root/repo/src/graph/shortest_path.cpp" "src/CMakeFiles/upsim_graph.dir/graph/shortest_path.cpp.o" "gcc" "src/CMakeFiles/upsim_graph.dir/graph/shortest_path.cpp.o.d"
  "/root/repo/src/graph/widest_path.cpp" "src/CMakeFiles/upsim_graph.dir/graph/widest_path.cpp.o" "gcc" "src/CMakeFiles/upsim_graph.dir/graph/widest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
