# Empty dependencies file for upsim_umlio.
# This may be replaced when dependencies are built.
