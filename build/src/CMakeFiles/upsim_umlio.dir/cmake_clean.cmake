file(REMOVE_RECURSE
  "CMakeFiles/upsim_umlio.dir/umlio/serialize.cpp.o"
  "CMakeFiles/upsim_umlio.dir/umlio/serialize.cpp.o.d"
  "libupsim_umlio.a"
  "libupsim_umlio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_umlio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
