file(REMOVE_RECURSE
  "libupsim_umlio.a"
)
