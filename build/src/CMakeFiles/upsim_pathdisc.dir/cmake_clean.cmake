file(REMOVE_RECURSE
  "CMakeFiles/upsim_pathdisc.dir/pathdisc/path_discovery.cpp.o"
  "CMakeFiles/upsim_pathdisc.dir/pathdisc/path_discovery.cpp.o.d"
  "CMakeFiles/upsim_pathdisc.dir/pathdisc/stats.cpp.o"
  "CMakeFiles/upsim_pathdisc.dir/pathdisc/stats.cpp.o.d"
  "libupsim_pathdisc.a"
  "libupsim_pathdisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsim_pathdisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
