# Empty compiler generated dependencies file for upsim_pathdisc.
# This may be replaced when dependencies are built.
