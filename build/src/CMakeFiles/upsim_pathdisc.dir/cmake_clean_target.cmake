file(REMOVE_RECURSE
  "libupsim_pathdisc.a"
)
