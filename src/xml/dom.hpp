// Minimal XML document object model.
//
// upsim reads service-mapping files (the Figure 3 format of the paper) and
// writes UPSIM/object-diagram exports in XML.  The supported subset is:
// elements, attributes, character data, comments (skipped), CDATA sections,
// XML declarations (skipped), and the five predefined entities.  Namespaces
// are treated as plain prefixes in names; DTDs and processing instructions
// are rejected with a ParseError.  This covers everything the methodology
// exchanges on disk while staying dependency-free.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace upsim::xml {

/// Source position of a parsed construct: 1-based line/column of the '<'
/// that opened the element.  Default-constructed (0/0) means "not parsed
/// from text" — elements built programmatically have no position.
struct Location {
  std::size_t line = 0;
  std::size_t column = 0;

  [[nodiscard]] bool known() const noexcept { return line != 0; }
};

class Element;
using ElementPtr = std::unique_ptr<Element>;

/// One XML element: a tag name, ordered attributes, text content and child
/// elements.  Text is stored per-element as the concatenation of all its
/// character data (mixed content keeps element order but not the exact
/// interleaving — sufficient for data-oriented documents).
class Element {
 public:
  explicit Element(std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // -- source location -----------------------------------------------------
  /// Where the parser saw this element's start tag; unknown (0/0) for
  /// elements built in memory.  Loaders thread these positions into lint
  /// diagnostics so findings point at the offending line of the input file.
  void set_location(Location location) noexcept { location_ = location; }
  [[nodiscard]] Location location() const noexcept { return location_; }

  // -- attributes ----------------------------------------------------------
  /// Sets (or replaces) an attribute.
  void set_attribute(std::string key, std::string value);
  /// Returns the attribute value or nullopt.
  [[nodiscard]] std::optional<std::string_view> attribute(
      std::string_view key) const noexcept;
  /// Returns the attribute value or throws NotFoundError naming the element.
  [[nodiscard]] const std::string& required_attribute(
      std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  attributes() const noexcept {
    return attributes_;
  }

  // -- text ----------------------------------------------------------------
  void append_text(std::string_view text) { text_ += text; }
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  /// Text with surrounding whitespace removed.
  [[nodiscard]] std::string_view trimmed_text() const noexcept;

  // -- children ------------------------------------------------------------
  /// Appends a child element and returns a reference to it.
  Element& append_child(std::string name);
  Element& append_child(ElementPtr child);
  [[nodiscard]] const std::vector<ElementPtr>& children() const noexcept {
    return children_;
  }
  /// First child with the given tag name, or nullptr.
  [[nodiscard]] const Element* first_child(std::string_view name) const
      noexcept;
  /// First child with the given tag name, or throws NotFoundError.
  [[nodiscard]] const Element& required_child(std::string_view name) const;
  /// All children with the given tag name, in document order.
  [[nodiscard]] std::vector<const Element*> children_named(
      std::string_view name) const;

  /// Serialises this element (recursively) as indented XML.
  [[nodiscard]] std::string to_string(std::size_t indent = 0) const;

 private:
  std::string name_;
  Location location_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::string text_;
  std::vector<ElementPtr> children_;
};

/// A parsed document: exactly one root element.
class Document {
 public:
  explicit Document(ElementPtr root);

  [[nodiscard]] const Element& root() const noexcept { return *root_; }
  [[nodiscard]] Element& root() noexcept { return *root_; }

  /// Serialises with an XML declaration.
  [[nodiscard]] std::string to_string() const;

 private:
  ElementPtr root_;
};

/// Escapes the five XML special characters in `raw`.
[[nodiscard]] std::string escape(std::string_view raw);

}  // namespace upsim::xml
