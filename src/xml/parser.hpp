// Recursive-descent XML parser for the subset documented in dom.hpp.
#pragma once

#include <string_view>

#include "xml/dom.hpp"

namespace upsim::xml {

/// Parses `input` into a Document.  Throws upsim::ParseError with line and
/// column information on any syntax error (unterminated tag, mismatched
/// close tag, bad entity, duplicate attribute, trailing garbage, ...).
[[nodiscard]] Document parse(std::string_view input);

/// Reads and parses the file at `path`.  Throws upsim::ParseError if the
/// file cannot be read.
[[nodiscard]] Document parse_file(const std::string& path);

}  // namespace upsim::xml
