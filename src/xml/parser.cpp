#include "xml/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace upsim::xml {
namespace {

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  [[nodiscard]] bool eof() const noexcept { return pos_ >= input_.size(); }
  [[nodiscard]] char peek() const noexcept {
    return eof() ? '\0' : input_[pos_];
  }
  [[nodiscard]] bool lookahead(std::string_view s) const noexcept {
    return input_.substr(pos_, s.size()) == s;
  }

  char advance() {
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    advance();
  }

  void expect(std::string_view s) {
    for (char c : s) expect(c);
  }

  void skip_whitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek())) != 0) {
      advance();
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("XML: " + what, line_, column_);
  }

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

bool is_name_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool is_name_char(char c) noexcept {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
         c == '-' || c == '.';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : cur_(input) {}

  Document run() {
    skip_misc();
    if (cur_.eof() || cur_.peek() != '<') {
      cur_.fail("expected root element");
    }
    ElementPtr root = parse_element();
    skip_misc();
    if (!cur_.eof()) cur_.fail("trailing content after root element");
    return Document(std::move(root));
  }

 private:
  /// Skips whitespace, comments, and the XML declaration between elements.
  void skip_misc() {
    for (;;) {
      cur_.skip_whitespace();
      if (cur_.lookahead("<!--")) {
        skip_comment();
      } else if (cur_.lookahead("<?")) {
        skip_declaration();
      } else if (cur_.lookahead("<!DOCTYPE")) {
        cur_.fail("DTDs are not supported");
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    cur_.expect("<!--");
    while (!cur_.lookahead("-->")) {
      if (cur_.eof()) cur_.fail("unterminated comment");
      cur_.advance();
    }
    cur_.expect("-->");
  }

  void skip_declaration() {
    cur_.expect("<?");
    while (!cur_.lookahead("?>")) {
      if (cur_.eof()) cur_.fail("unterminated processing instruction");
      cur_.advance();
    }
    cur_.expect("?>");
  }

  std::string parse_name() {
    if (cur_.eof() || !is_name_start(cur_.peek())) {
      cur_.fail("expected a name");
    }
    std::string name;
    while (!cur_.eof() && is_name_char(cur_.peek())) {
      name += cur_.advance();
    }
    return name;
  }

  std::string parse_entity() {
    cur_.expect('&');
    std::string entity;
    while (!cur_.eof() && cur_.peek() != ';') {
      entity += cur_.advance();
      if (entity.size() > 8) cur_.fail("unterminated entity reference");
    }
    cur_.expect(';');
    if (entity == "amp") return "&";
    if (entity == "lt") return "<";
    if (entity == "gt") return ">";
    if (entity == "quot") return "\"";
    if (entity == "apos") return "'";
    if (!entity.empty() && entity[0] == '#') {
      // Numeric character reference; emit as UTF-8 for the ASCII range and
      // reject the rest (model identifiers are ASCII).
      const bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      const std::string digits = entity.substr(hex ? 2 : 1);
      if (digits.empty()) cur_.fail("empty character reference");
      unsigned long code = 0;
      try {
        code = std::stoul(digits, nullptr, hex ? 16 : 10);
      } catch (const std::exception&) {
        cur_.fail("bad character reference &" + entity + ";");
      }
      if (code == 0 || code > 0x7F) {
        cur_.fail("non-ASCII character reference &" + entity + ";");
      }
      return std::string(1, static_cast<char>(code));
    }
    cur_.fail("unknown entity &" + entity + ";");
  }

  std::string parse_attribute_value() {
    const char quote = cur_.peek();
    if (quote != '"' && quote != '\'') cur_.fail("expected quoted value");
    cur_.advance();
    std::string value;
    while (!cur_.eof() && cur_.peek() != quote) {
      if (cur_.peek() == '<') cur_.fail("'<' in attribute value");
      if (cur_.peek() == '&') {
        value += parse_entity();
      } else {
        value += cur_.advance();
      }
    }
    cur_.expect(quote);
    return value;
  }

  ElementPtr parse_element() {
    // Anchor the element at its '<' so diagnostics point at the start tag.
    const Location start{cur_.line(), cur_.column()};
    cur_.expect('<');
    auto element = std::make_unique<Element>(parse_name());
    element->set_location(start);
    // Attributes.
    for (;;) {
      cur_.skip_whitespace();
      if (cur_.eof()) cur_.fail("unterminated start tag");
      if (cur_.peek() == '>' || cur_.lookahead("/>")) break;
      const std::string key = parse_name();
      if (element->attribute(key).has_value()) {
        cur_.fail("duplicate attribute '" + key + "'");
      }
      cur_.skip_whitespace();
      cur_.expect('=');
      cur_.skip_whitespace();
      element->set_attribute(key, parse_attribute_value());
    }
    if (cur_.lookahead("/>")) {
      cur_.expect("/>");
      return element;
    }
    cur_.expect('>');
    parse_content(*element);
    // parse_content consumed "</"; match the close tag.
    const std::string close = parse_name();
    if (close != element->name()) {
      cur_.fail("mismatched close tag </" + close + "> for <" +
                element->name() + ">");
    }
    cur_.skip_whitespace();
    cur_.expect('>');
    return element;
  }

  /// Parses element content until the matching "</" is consumed.
  void parse_content(Element& element) {
    for (;;) {
      if (cur_.eof()) cur_.fail("unterminated element <" + element.name() + ">");
      if (cur_.lookahead("</")) {
        cur_.expect("</");
        return;
      }
      if (cur_.lookahead("<!--")) {
        skip_comment();
      } else if (cur_.lookahead("<![CDATA[")) {
        parse_cdata(element);
      } else if (cur_.lookahead("<?")) {
        skip_declaration();
      } else if (cur_.peek() == '<') {
        element.append_child(parse_element());
      } else if (cur_.peek() == '&') {
        element.append_text(parse_entity());
      } else {
        std::string text;
        while (!cur_.eof() && cur_.peek() != '<' && cur_.peek() != '&') {
          text += cur_.advance();
        }
        element.append_text(text);
      }
    }
  }

  void parse_cdata(Element& element) {
    cur_.expect("<![CDATA[");
    std::string text;
    while (!cur_.lookahead("]]>")) {
      if (cur_.eof()) cur_.fail("unterminated CDATA section");
      text += cur_.advance();
    }
    cur_.expect("]]>");
    element.append_text(text);
  }

  Cursor cur_;
};

}  // namespace

Document parse(std::string_view input) {
  obs::ScopedSpan span("xml.parse", "xml");
  if (obs::enabled()) {
    obs::Registry::global().counter("xml.bytes_parsed").add(input.size());
    obs::Registry::global().counter("xml.documents_parsed").add(1);
  }
  return Parser(input).run();
}

Document parse_file(const std::string& path) {
  obs::ScopedSpan span("xml.parse_file", "xml");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace upsim::xml
