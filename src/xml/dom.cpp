#include "xml/dom.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::xml {

Element::Element(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw ModelError("XML element with empty name");
}

void Element::set_attribute(std::string key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string_view> Element::attribute(
    std::string_view key) const noexcept {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

const std::string& Element::required_attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  throw NotFoundError("element <" + name_ + "> lacks required attribute '" +
                      std::string(key) + "'");
}

std::string_view Element::trimmed_text() const noexcept {
  return util::trim(text_);
}

Element& Element::append_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::append_child(ElementPtr child) {
  UPSIM_ASSERT(child != nullptr);
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::first_child(std::string_view name) const noexcept {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

const Element& Element::required_child(std::string_view name) const {
  const Element* c = first_child(name);
  if (c == nullptr) {
    throw NotFoundError("element <" + name_ + "> lacks required child <" +
                        std::string(name) + ">");
  }
  return *c;
}

std::vector<const Element*> Element::children_named(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Element::to_string(std::size_t indent) const {
  const std::string pad(indent, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attributes_) {
    out += " " + k + "=\"" + escape(v) + "\"";
  }
  const auto text = trimmed_text();
  if (children_.empty() && text.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!text.empty()) out += escape(text);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& c : children_) out += c->to_string(indent + 2);
    out += pad;
  }
  out += "</" + name_ + ">\n";
  return out;
}

Document::Document(ElementPtr root) : root_(std::move(root)) {
  if (root_ == nullptr) throw ModelError("XML document without root element");
}

std::string Document::to_string() const {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root_->to_string();
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace upsim::xml
