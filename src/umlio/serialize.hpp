// XML (de)serialisation of the UML layer: profiles, class diagrams, object
// diagrams, activities and service catalogs.
//
// The paper's tool-chain stores models as Eclipse/Papyrus XMI; this module
// provides the equivalent persistent form for upsim so the whole pipeline
// can be driven from files (see examples/upsim_cli.cpp):
//
//   <umlbundle>
//     <profile name="availability">
//       <stereotype name="Component" extends="Class" abstract="true">
//         <attribute name="MTBF" type="Real"/>
//         <attribute name="redundantComponents" type="Integer" default="0"/>
//       </stereotype>
//       <stereotype name="Device" extends="Class" parent="Component"/>
//     </profile>
//     <classmodel name="usi_classes">
//       <class name="C6500">
//         <apply stereotype="availability.Device">
//           <set name="MTBF" type="Real" value="183498"/>
//         </apply>
//       </class>
//       <association name="trunk" endA="C6500" endB="C6500"/>
//     </classmodel>
//     <objectmodel name="usi_network">
//       <instance name="c1" class="C6500"/>
//       <link a="c1" b="c2" association="trunk" name="c1--c2"/>
//     </objectmodel>
//     <services>
//       <atomic name="request_printing" description="..."/>
//       <composite name="printing">
//         <node id="0" kind="initial" name="initial"/>
//         <node id="1" kind="action" name="request_printing"/>
//         <flow from="0" to="1"/>
//       </composite>
//     </services>
//   </umlbundle>
//
// Forward references are allowed (a class may name a parent defined later);
// the loader resolves them iteratively and reports cycles.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "uml/object_model.hpp"
#include "uml/profile.hpp"
#include "xml/dom.hpp"

namespace upsim::umlio {

/// Everything one bundle file can hold, owned in dependency order so the
/// struct can be moved around as a unit.
struct UmlBundle {
  std::vector<std::unique_ptr<uml::Profile>> profiles;
  std::unique_ptr<uml::ClassModel> classes;        ///< may be null
  std::unique_ptr<uml::ObjectModel> objects;       ///< may be null
  std::unique_ptr<service::ServiceCatalog> services;  ///< may be null

  [[nodiscard]] const uml::Profile& profile(std::string_view name) const;
};

/// Where each named model element was declared in the bundle file, keyed by
/// its model name (links by their final — possibly derived — link name).
/// Collected by from_xml as a side product of loading so that lint
/// diagnostics can point back at the XML source; elements built in memory
/// simply have no entry.
struct BundleLocations {
  std::map<std::string, xml::Location> classes;
  std::map<std::string, xml::Location> associations;
  std::map<std::string, xml::Location> instances;
  std::map<std::string, xml::Location> links;
  std::map<std::string, xml::Location> atomics;
  std::map<std::string, xml::Location> composites;
};

/// Serialises a bundle (null members are simply omitted).
[[nodiscard]] std::string to_xml(const UmlBundle& bundle);

/// Parses a bundle.  Throws ParseError on syntax errors and ModelError on
/// semantic ones (unknown references, duplicate names, cyclic inheritance,
/// value/type mismatches...).  `locations`, when non-null, receives the
/// source position of every named element.
[[nodiscard]] UmlBundle from_xml(std::string_view xml_text,
                                 BundleLocations* locations = nullptr);

/// File convenience wrappers.
void save_bundle(const UmlBundle& bundle, const std::string& path);
[[nodiscard]] UmlBundle load_bundle(const std::string& path,
                                    BundleLocations* locations = nullptr);

}  // namespace upsim::umlio
