#include "umlio/serialize.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <set>

#include "util/error.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"

namespace upsim::umlio {

namespace {

// ---------------------------------------------------------------------------
// Value encoding

const char* type_name(uml::ValueType t) { return uml::to_string(t); }

uml::ValueType type_from(const std::string& name) {
  if (name == "Real") return uml::ValueType::Real;
  if (name == "Integer") return uml::ValueType::Integer;
  if (name == "String") return uml::ValueType::String;
  if (name == "Boolean") return uml::ValueType::Boolean;
  throw ModelError("umlio: unknown value type '" + name + "'");
}

std::string value_text(const uml::Value& v) {
  switch (v.type()) {
    case uml::ValueType::Real: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_real());
      return buf;
    }
    default:
      return v.to_text();
  }
}

uml::Value value_from(uml::ValueType type, const std::string& text) {
  try {
    switch (type) {
      case uml::ValueType::Real: return uml::Value(std::stod(text));
      case uml::ValueType::Integer:
        return uml::Value(static_cast<std::int64_t>(std::stoll(text)));
      case uml::ValueType::String: return uml::Value(text);
      case uml::ValueType::Boolean:
        if (text == "true") return uml::Value(true);
        if (text == "false") return uml::Value(false);
        throw ModelError("umlio: boolean value must be true/false, got '" +
                         text + "'");
    }
  } catch (const std::invalid_argument&) {
    throw ModelError("umlio: cannot parse '" + text + "' as " +
                     type_name(type));
  } catch (const std::out_of_range&) {
    throw ModelError("umlio: value '" + text + "' out of range for " +
                     type_name(type));
  }
  throw InvariantError("unreachable value type");
}

// ---------------------------------------------------------------------------
// Serialisation

void write_applications(xml::Element& parent,
                        const uml::StereotypedElement& element) {
  for (const uml::StereotypeApplication& app : element.applications()) {
    xml::Element& apply = parent.append_child("apply");
    apply.set_attribute("stereotype", app.stereotype().profile().name() + "." +
                                          app.stereotype().name());
    for (const uml::AttributeDecl& decl :
         app.stereotype().effective_attributes()) {
      const auto value = app.value(decl.name);
      if (!value) continue;
      xml::Element& set = apply.append_child("set");
      set.set_attribute("name", decl.name);
      set.set_attribute("type", type_name(value->type()));
      set.set_attribute("value", value_text(*value));
    }
  }
}

void write_profile(xml::Element& root, const uml::Profile& profile) {
  xml::Element& p = root.append_child("profile");
  p.set_attribute("name", profile.name());
  for (const uml::Stereotype* s : profile.stereotypes()) {
    xml::Element& st = p.append_child("stereotype");
    st.set_attribute("name", s->name());
    st.set_attribute("extends", uml::to_string(s->extends()));
    if (s->is_abstract()) st.set_attribute("abstract", "true");
    if (s->parent() != nullptr) st.set_attribute("parent", s->parent()->name());
    for (const uml::AttributeDecl& decl : s->own_attributes()) {
      xml::Element& attr = st.append_child("attribute");
      attr.set_attribute("name", decl.name);
      attr.set_attribute("type", type_name(decl.type));
      if (decl.default_value) {
        attr.set_attribute("default", value_text(*decl.default_value));
      }
    }
  }
}

void write_class_model(xml::Element& root, const uml::ClassModel& classes) {
  xml::Element& cm = root.append_child("classmodel");
  cm.set_attribute("name", classes.name());
  for (const uml::Class* cls : classes.classes()) {
    xml::Element& c = cm.append_child("class");
    c.set_attribute("name", cls->name());
    if (cls->is_abstract()) c.set_attribute("abstract", "true");
    if (cls->parent() != nullptr) {
      c.set_attribute("parent", cls->parent()->name());
    }
    for (const auto& [name, value] : cls->own_statics()) {
      xml::Element& st = c.append_child("static");
      st.set_attribute("name", name);
      st.set_attribute("type", type_name(value.type()));
      st.set_attribute("value", value_text(value));
    }
    write_applications(c, *cls);
  }
  for (const uml::Association* assoc : classes.associations()) {
    xml::Element& a = cm.append_child("association");
    a.set_attribute("name", assoc->name());
    a.set_attribute("endA", assoc->end_a().name());
    a.set_attribute("endB", assoc->end_b().name());
    write_applications(a, *assoc);
  }
}

void write_object_model(xml::Element& root, const uml::ObjectModel& objects) {
  xml::Element& om = root.append_child("objectmodel");
  om.set_attribute("name", objects.name());
  for (const uml::InstanceSpecification* inst : objects.instances()) {
    xml::Element& i = om.append_child("instance");
    i.set_attribute("name", inst->name());
    i.set_attribute("class", inst->classifier().name());
  }
  for (const auto& link : objects.links()) {
    xml::Element& l = om.append_child("link");
    l.set_attribute("name", link->name());
    l.set_attribute("a", link->end_a().name());
    l.set_attribute("b", link->end_b().name());
    l.set_attribute("association", link->association().name());
  }
}

void write_services(xml::Element& root,
                    const service::ServiceCatalog& services) {
  xml::Element& sv = root.append_child("services");
  for (const service::AtomicService* atomic : services.atomics()) {
    xml::Element& a = sv.append_child("atomic");
    a.set_attribute("name", atomic->name());
    if (!atomic->description().empty()) {
      a.set_attribute("description", atomic->description());
    }
  }
  for (const service::CompositeService* composite : services.composites()) {
    xml::Element& c = sv.append_child("composite");
    c.set_attribute("name", composite->name());
    const uml::Activity& activity = composite->activity();
    c.set_attribute("activity", activity.name());
    for (std::size_t i = 0; i < activity.node_count(); ++i) {
      const auto id = uml::ActivityNodeId{static_cast<std::uint32_t>(i)};
      const uml::ActivityNode& node = activity.node(id);
      xml::Element& n = c.append_child("node");
      n.set_attribute("id", std::to_string(i));
      n.set_attribute("kind", uml::to_string(node.kind));
      n.set_attribute("name", node.name);
    }
    for (std::size_t i = 0; i < activity.node_count(); ++i) {
      const auto id = uml::ActivityNodeId{static_cast<std::uint32_t>(i)};
      for (const uml::ActivityNodeId succ : activity.successors(id)) {
        xml::Element& f = c.append_child("flow");
        f.set_attribute("from", std::to_string(i));
        f.set_attribute("to", std::to_string(uml::index(succ)));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deserialisation

/// Orders elements so that every "parent" reference points at an earlier
/// element; throws on cycles or unknown parents.
std::vector<const xml::Element*> parent_order(
    const std::vector<const xml::Element*>& elements, const char* what) {
  std::map<std::string, const xml::Element*> by_name;
  for (const xml::Element* e : elements) {
    const std::string& name = e->required_attribute("name");
    if (!by_name.emplace(name, e).second) {
      throw ModelError(std::string("umlio: duplicate ") + what + " '" + name +
                       "'");
    }
  }
  std::vector<const xml::Element*> ordered;
  std::set<std::string> done;
  std::set<std::string> in_progress;
  std::function<void(const xml::Element*)> visit =
      [&](const xml::Element* e) {
        const std::string& name = e->required_attribute("name");
        if (done.contains(name)) return;
        if (!in_progress.insert(name).second) {
          throw ModelError(std::string("umlio: cyclic ") + what +
                           " inheritance involving '" + name + "'");
        }
        if (const auto parent = e->attribute("parent")) {
          const auto it = by_name.find(std::string(*parent));
          if (it == by_name.end()) {
            throw ModelError(std::string("umlio: ") + what + " '" + name +
                             "' names unknown parent '" + std::string(*parent) +
                             "'");
          }
          visit(it->second);
        }
        in_progress.erase(name);
        done.insert(name);
        ordered.push_back(e);
      };
  for (const xml::Element* e : elements) visit(e);
  return ordered;
}

std::unique_ptr<uml::Profile> read_profile(const xml::Element& p) {
  auto profile = std::make_unique<uml::Profile>(p.required_attribute("name"));
  for (const xml::Element* st :
       parent_order(p.children_named("stereotype"), "stereotype")) {
    const std::string& name = st->required_attribute("name");
    const std::string& extends = st->required_attribute("extends");
    uml::Metaclass metaclass;
    if (extends == "Class") {
      metaclass = uml::Metaclass::Class;
    } else if (extends == "Association") {
      metaclass = uml::Metaclass::Association;
    } else {
      throw ModelError("umlio: stereotype '" + name +
                       "' extends unknown metaclass '" + extends + "'");
    }
    const uml::Stereotype* parent = nullptr;
    if (const auto parent_name = st->attribute("parent")) {
      parent = &profile->get(*parent_name);
    }
    const bool is_abstract = st->attribute("abstract") == "true";
    uml::Stereotype& stereotype =
        profile->define(name, metaclass, parent, is_abstract);
    for (const xml::Element* attr : st->children_named("attribute")) {
      const uml::ValueType type = type_from(attr->required_attribute("type"));
      std::optional<uml::Value> default_value;
      if (const auto d = attr->attribute("default")) {
        default_value = value_from(type, std::string(*d));
      }
      stereotype.declare_attribute(attr->required_attribute("name"), type,
                                   std::move(default_value));
    }
  }
  return profile;
}

const uml::Stereotype& resolve_stereotype(const UmlBundle& bundle,
                                          const std::string& qualified) {
  const auto dot = qualified.find('.');
  if (dot == std::string::npos) {
    throw ModelError("umlio: stereotype reference '" + qualified +
                     "' must be profile-qualified (profile.Stereotype)");
  }
  return bundle.profile(qualified.substr(0, dot)).get(qualified.substr(dot + 1));
}

void read_applications(const UmlBundle& bundle, const xml::Element& parent,
                       uml::StereotypedElement& element) {
  for (const xml::Element* apply : parent.children_named("apply")) {
    const uml::Stereotype& stereotype =
        resolve_stereotype(bundle, apply->required_attribute("stereotype"));
    uml::StereotypeApplication& app = element.apply(stereotype);
    for (const xml::Element* set : apply->children_named("set")) {
      const uml::ValueType type = type_from(set->required_attribute("type"));
      app.set(set->required_attribute("name"),
              value_from(type, set->required_attribute("value")));
    }
  }
}

std::unique_ptr<uml::ClassModel> read_class_model(const UmlBundle& bundle,
                                                  const xml::Element& cm,
                                                  BundleLocations* locations) {
  auto classes =
      std::make_unique<uml::ClassModel>(cm.required_attribute("name"));
  for (const xml::Element* c :
       parent_order(cm.children_named("class"), "class")) {
    const uml::Class* parent = nullptr;
    if (const auto parent_name = c->attribute("parent")) {
      parent = &classes->get_class(*parent_name);
    }
    uml::Class& cls =
        classes->define_class(c->required_attribute("name"), parent,
                              c->attribute("abstract") == "true");
    if (locations != nullptr) {
      locations->classes.emplace(cls.name(), c->location());
    }
    for (const xml::Element* st : c->children_named("static")) {
      const uml::ValueType type = type_from(st->required_attribute("type"));
      cls.set_static(st->required_attribute("name"),
                     value_from(type, st->required_attribute("value")));
    }
    read_applications(bundle, *c, cls);
  }
  for (const xml::Element* a : cm.children_named("association")) {
    uml::Association& assoc = classes->define_association(
        a->required_attribute("name"),
        classes->get_class(a->required_attribute("endA")),
        classes->get_class(a->required_attribute("endB")));
    if (locations != nullptr) {
      locations->associations.emplace(assoc.name(), a->location());
    }
    read_applications(bundle, *a, assoc);
  }
  return classes;
}

std::unique_ptr<uml::ObjectModel> read_object_model(
    const uml::ClassModel& classes, const xml::Element& om,
    BundleLocations* locations) {
  auto objects = std::make_unique<uml::ObjectModel>(
      om.required_attribute("name"), classes);
  for (const xml::Element* i : om.children_named("instance")) {
    const auto& inst = objects->instantiate(i->required_attribute("name"),
                                            i->required_attribute("class"));
    if (locations != nullptr) {
      locations->instances.emplace(inst.name(), i->location());
    }
  }
  for (const xml::Element* l : om.children_named("link")) {
    const auto& link =
        objects->link(l->required_attribute("a"), l->required_attribute("b"),
                      l->required_attribute("association"),
                      std::string(l->attribute("name").value_or("")));
    // Keyed by the final link name so derived "a--b" names resolve too.
    if (locations != nullptr) {
      locations->links.emplace(link.name(), l->location());
    }
  }
  return objects;
}

std::unique_ptr<service::ServiceCatalog> read_services(
    const xml::Element& sv, BundleLocations* locations) {
  auto services = std::make_unique<service::ServiceCatalog>();
  for (const xml::Element* a : sv.children_named("atomic")) {
    const auto& atomic = services->define_atomic(
        a->required_attribute("name"),
        std::string(a->attribute("description").value_or("")));
    if (locations != nullptr) {
      locations->atomics.emplace(atomic.name(), a->location());
    }
  }
  for (const xml::Element* c : sv.children_named("composite")) {
    const std::string& name = c->required_attribute("name");
    uml::Activity activity(
        std::string(c->attribute("activity").value_or(name + "_flow")));
    std::map<std::string, uml::ActivityNodeId> node_by_id;
    for (const xml::Element* n : c->children_named("node")) {
      const std::string& kind = n->required_attribute("kind");
      const std::string& node_name = n->required_attribute("name");
      uml::ActivityNodeId id;
      if (kind == "initial") {
        id = activity.add_initial(node_name);
      } else if (kind == "final") {
        id = activity.add_final(node_name);
      } else if (kind == "action") {
        id = activity.add_action(node_name);
      } else if (kind == "fork") {
        id = activity.add_fork(node_name);
      } else if (kind == "join") {
        id = activity.add_join(node_name);
      } else {
        throw ModelError("umlio: composite '" + name +
                         "': unknown node kind '" + kind + "'");
      }
      if (!node_by_id.emplace(n->required_attribute("id"), id).second) {
        throw ModelError("umlio: composite '" + name + "': duplicate node id");
      }
    }
    for (const xml::Element* f : c->children_named("flow")) {
      const auto from = node_by_id.find(f->required_attribute("from"));
      const auto to = node_by_id.find(f->required_attribute("to"));
      if (from == node_by_id.end() || to == node_by_id.end()) {
        throw ModelError("umlio: composite '" + name +
                         "': flow references unknown node id");
      }
      activity.flow(from->second, to->second);
    }
    services->define_composite(name, std::move(activity));
    if (locations != nullptr) {
      locations->composites.emplace(name, c->location());
    }
  }
  return services;
}

}  // namespace

const uml::Profile& UmlBundle::profile(std::string_view name) const {
  for (const auto& p : profiles) {
    if (p->name() == name) return *p;
  }
  throw NotFoundError("bundle has no profile '" + std::string(name) + "'");
}

std::string to_xml(const UmlBundle& bundle) {
  auto root = std::make_unique<xml::Element>("umlbundle");
  for (const auto& profile : bundle.profiles) {
    write_profile(*root, *profile);
  }
  if (bundle.classes != nullptr) write_class_model(*root, *bundle.classes);
  if (bundle.objects != nullptr) write_object_model(*root, *bundle.objects);
  if (bundle.services != nullptr) write_services(*root, *bundle.services);
  return xml::Document(std::move(root)).to_string();
}

UmlBundle from_xml(std::string_view xml_text, BundleLocations* locations) {
  const xml::Document doc = xml::parse(xml_text);
  const xml::Element& root = doc.root();
  if (root.name() != "umlbundle") {
    throw ModelError("umlio: expected <umlbundle> root, got <" + root.name() +
                     ">");
  }
  UmlBundle bundle;
  for (const xml::Element* p : root.children_named("profile")) {
    bundle.profiles.push_back(read_profile(*p));
  }
  const auto class_models = root.children_named("classmodel");
  if (class_models.size() > 1) {
    throw ModelError("umlio: at most one <classmodel> per bundle");
  }
  if (!class_models.empty()) {
    bundle.classes = read_class_model(bundle, *class_models[0], locations);
  }
  const auto object_models = root.children_named("objectmodel");
  if (object_models.size() > 1) {
    throw ModelError("umlio: at most one <objectmodel> per bundle");
  }
  if (!object_models.empty()) {
    if (bundle.classes == nullptr) {
      throw ModelError("umlio: <objectmodel> requires a <classmodel>");
    }
    bundle.objects =
        read_object_model(*bundle.classes, *object_models[0], locations);
  }
  if (const xml::Element* sv = root.first_child("services")) {
    bundle.services = read_services(*sv, locations);
  }
  return bundle;
}

void save_bundle(const UmlBundle& bundle, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("umlio: cannot write file: " + path);
  out << to_xml(bundle);
}

UmlBundle load_bundle(const std::string& path, BundleLocations* locations) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("umlio: cannot read file: " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return from_xml(content, locations);
}

}  // namespace upsim::umlio
