// Scenario traces: JSON-lines persistence, a Poisson failure/repair
// generator, and a trace-fold service measurement.
//
// A trace is a chronologically ordered vector<Event> — one JSON object per
// line on disk (easy to grep, diff, truncate, and append from a monitoring
// pipeline).  Blank lines are skipped; anything else must parse as one
// event.
//
// generate_failure_trace() turns a projected graph's own MTBF/MTTR
// annotations into the alternating-renewal event stream the paper's
// monitoring substitute (depend::simulate) uses internally: every
// component starts Up, draws an exponential time-to-failure at rate
// 1/MTBF, then alternates with exponential repairs at rate 1/MTTR.  It
// replicates depend::simulate's exact draw order (components indexed
// vertices-first-then-edges against one util::Rng), so folding the
// generated trace with measure_service() reproduces simulate()'s numbers
// bit for bit — the property tests/test_scenario.cpp pins.  A recorded
// trace thereby becomes a first-class substitute for the hand-rolled
// simulation loop: generate once, replay anywhere (example binaries, the
// ScenarioPlayer against a live engine, upsimd over the wire).
//
// measure_service() folds a state-change trace into the measured
// availability of a terminal-pair service, with depend::simulate's warmup
// clipping and horizon-closing semantics.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "depend/simulator.hpp"
#include "graph/graph.hpp"
#include "scenario/event.hpp"

namespace upsim::scenario {

/// Writes one event per line (trailing newline after each).
void write_trace(std::ostream& out, const std::vector<Event>& events);
void write_trace_file(const std::string& path,
                      const std::vector<Event>& events);

/// Reads a JSON-lines trace; throws ParseError on malformed lines.
[[nodiscard]] std::vector<Event> read_trace(std::istream& in);
[[nodiscard]] std::vector<Event> read_trace_file(const std::string& path);

struct GeneratorOptions {
  /// Events strictly before the horizon are emitted.
  double horizon_hours = 24.0 * 365.0;
  std::uint64_t seed = 2013;
};

/// Poisson (alternating-renewal) failure/repair trace from the graph's own
/// "mtbf"/"mttr" attributes.  Vertices become {fail,repair}_component
/// events, edges {fail,repair}_link events.  Throws NotFoundError when an
/// element lacks the attributes and ModelError when they are non-positive.
[[nodiscard]] std::vector<Event> generate_failure_trace(
    const graph::Graph& g, const GeneratorOptions& options = {});

struct MeasureOptions {
  double horizon_hours = 24.0 * 365.0;
  /// Transient prefix excluded from measurement; [0, horizon).
  double warmup_hours = 0.0;
};

/// Folds the state-change events of `trace` (mapping/property events are
/// ignored) into the measured availability of the service connecting every
/// terminal pair, exactly as depend::simulate accounts it: the service is
/// up while every pair is connected through up vertices and links,
/// outages/uptime are clipped to [warmup, horizon), the final interval is
/// closed at the horizon.  Events must be time-ordered.
[[nodiscard]] depend::SimulationResult measure_service(
    const graph::Graph& g,
    const std::vector<std::pair<graph::VertexId, graph::VertexId>>&
        terminal_pairs,
    const std::vector<Event>& trace, const MeasureOptions& options = {});

}  // namespace upsim::scenario
