// Discrete-event model of the paper's Sec. V-A3 change catalogue.
//
// The paper evaluates user-perceived properties under *change*: components
// and links fail and repair (topology class 1), dependability values drift
// as monitoring feeds observations back (class 2), services migrate and
// users move (class 4).  An Event is one timestamped occurrence of one of
// those changes, in a form a ScenarioPlayer can replay against a live
// PerspectiveEngine and a trace file can persist losslessly:
//
//   {"t":42.5,"kind":"fail_component","element":"d1"}
//   {"t":43.1,"kind":"repair_link","element":"c1--d4#0"}
//   {"t":50.0,"kind":"property_update","element":"e1",
//    "attribute":"mtbf","value":90000}
//   {"t":60.0,"kind":"migrate_service","perspective":"view",
//    "from":"printS","to":"file1"}
//   {"t":70.0,"kind":"move_user","perspective":"view",
//    "from":"t1","to":"t6"}
//
// Timestamps are hours of scenario time (the unit of every MTBF/MTTR in
// the model); traces are ordered by non-decreasing `t`.  Mapping events
// (`migrate_service`, `move_user`) rewrite every occurrence of `from` to
// `to` in the named perspective's registered mapping — a service
// migration swaps a provider host, a user move swaps the client — exactly
// the "mapping-only edit" of the paper's dynamicity argument.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace upsim::scenario {

enum class EventKind {
  FailComponent,
  RepairComponent,
  FailLink,
  RepairLink,
  PropertyUpdate,
  MigrateService,
  MoveUser,
};

/// Wire name of a kind ("fail_component", ...).
[[nodiscard]] std::string_view kind_name(EventKind kind);
/// Inverse of kind_name(); throws ParseError on an unknown name.
[[nodiscard]] EventKind kind_from_name(std::string_view name);

struct Event {
  double at_hours = 0.0;
  EventKind kind = EventKind::FailComponent;
  /// fail_*/repair_*/property_update: the instance or link name.
  std::string element;
  /// property_update: graph attribute ("mtbf"/"mttr") and its new value.
  std::string attribute;
  double value = 0.0;
  /// migrate_service/move_user: rewrite `perspective`'s mapping from->to.
  std::string perspective;
  std::string from;
  std::string to;

  /// fail_* or repair_* (an operational state change).
  [[nodiscard]] bool is_state_change() const noexcept;
  /// fail_component or fail_link.
  [[nodiscard]] bool is_failure() const noexcept;
  /// migrate_service or move_user.
  [[nodiscard]] bool is_mapping_change() const noexcept;

  /// One deterministic JSON object (no trailing newline).
  [[nodiscard]] std::string to_json() const;
  /// Parses one event object; throws ParseError on missing/ill-typed
  /// members for the kind.
  [[nodiscard]] static Event from_json(const obs::JsonValue& value);

  [[nodiscard]] friend bool operator==(const Event&, const Event&) = default;
};

}  // namespace upsim::scenario
