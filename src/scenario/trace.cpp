#include "scenario/trace.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace upsim::scenario {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::index;

void write_trace(std::ostream& out, const std::vector<Event>& events) {
  for (const Event& event : events) out << event.to_json() << '\n';
}

void write_trace_file(const std::string& path,
                      const std::vector<Event>& events) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("scenario: cannot open trace file '" + path + "'");
  write_trace(out, events);
  if (!out) throw Error("scenario: failed writing trace file '" + path + "'");
}

std::vector<Event> read_trace(std::istream& in) {
  std::vector<Event> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      events.push_back(Event::from_json(obs::json_parse(line)));
    } catch (const ParseError& e) {
      throw ParseError("scenario trace line " + std::to_string(line_no) +
                       ": " + e.what());
    }
  }
  return events;
}

std::vector<Event> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("scenario: cannot open trace file '" + path + "'");
  return read_trace(in);
}

namespace {

struct Rates {
  double mtbf;
  double mttr;
};

Rates rates_from(const graph::AttributeMap& attrs, const std::string& what) {
  const auto mtbf = attrs.find("mtbf");
  const auto mttr = attrs.find("mttr");
  if (mtbf == attrs.end() || mttr == attrs.end()) {
    throw NotFoundError(what + " lacks mtbf/mttr attributes");
  }
  if (!(mtbf->second > 0.0) || !(mttr->second > 0.0)) {
    throw ModelError(what + ": MTBF and MTTR must be positive");
  }
  return Rates{mtbf->second, mttr->second};
}

}  // namespace

std::vector<Event> generate_failure_trace(const Graph& g,
                                          const GeneratorOptions& options) {
  if (!(options.horizon_hours > 0.0)) {
    throw ModelError("scenario: generator horizon must be positive");
  }
  const std::size_t vertices = g.vertex_count();
  const std::size_t components = vertices + g.edge_count();

  std::vector<Rates> rates;
  rates.reserve(components);
  std::vector<std::string> names;
  names.reserve(components);
  for (std::size_t v = 0; v < vertices; ++v) {
    const auto& vertex = g.vertex(VertexId{static_cast<std::uint32_t>(v)});
    rates.push_back(
        rates_from(vertex.attributes, "vertex '" + vertex.name + "'"));
    names.push_back(vertex.name);
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(EdgeId{static_cast<std::uint32_t>(e)});
    rates.push_back(rates_from(edge.attributes, "edge '" + edge.name + "'"));
    names.push_back(edge.name);
  }

  // The exact alternating-renewal schedule depend::simulate draws: one RNG,
  // initial time-to-failure per component in index order, then the next
  // sojourn immediately after each transition.  Keeping the draw order
  // identical makes trace replay reproduce simulate() bit for bit.
  util::Rng rng(options.seed);
  using QueueEvent = std::pair<double, std::size_t>;
  std::priority_queue<QueueEvent, std::vector<QueueEvent>, std::greater<>>
      queue;
  for (std::size_t c = 0; c < components; ++c) {
    queue.emplace(rng.exponential(1.0 / rates[c].mtbf), c);
  }

  std::vector<bool> up(components, true);
  std::vector<Event> events;
  while (!queue.empty()) {
    const auto [when, component] = queue.top();
    queue.pop();
    if (when >= options.horizon_hours) break;
    up[component] = !up[component];
    const bool is_up = up[component];
    const double sojourn = rng.exponential(
        1.0 / (is_up ? rates[component].mtbf : rates[component].mttr));
    queue.emplace(when + sojourn, component);

    Event event;
    event.at_hours = when;
    event.element = names[component];
    if (component < vertices) {
      event.kind = is_up ? EventKind::RepairComponent
                         : EventKind::FailComponent;
    } else {
      event.kind = is_up ? EventKind::RepairLink : EventKind::FailLink;
    }
    events.push_back(std::move(event));
  }
  return events;
}

namespace {

bool service_up(const Graph& g, const std::vector<bool>& vertex_up,
                const std::vector<bool>& edge_up,
                const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  for (const auto& [s, t] : pairs) {
    if (!vertex_up[index(s)] || !vertex_up[index(t)]) return false;
    if (s == t) continue;
    std::vector<bool> seen(g.vertex_count(), false);
    std::deque<VertexId> queue{s};
    seen[index(s)] = true;
    bool reached = false;
    while (!queue.empty() && !reached) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const EdgeId e : g.incident_edges(v)) {
        if (!edge_up[index(e)]) continue;
        const VertexId w = g.opposite(e, v);
        if (seen[index(w)] || !vertex_up[index(w)]) continue;
        if (w == t) {
          reached = true;
          break;
        }
        seen[index(w)] = true;
        queue.push_back(w);
      }
    }
    if (!reached) return false;
  }
  return true;
}

}  // namespace

depend::SimulationResult measure_service(
    const Graph& g,
    const std::vector<std::pair<VertexId, VertexId>>& terminal_pairs,
    const std::vector<Event>& trace, const MeasureOptions& options) {
  if (!(options.horizon_hours > 0.0)) {
    throw ModelError("scenario: measure horizon must be positive");
  }
  if (options.warmup_hours < 0.0 ||
      options.warmup_hours >= options.horizon_hours) {
    throw ModelError("scenario: warmup must be within [0, horizon)");
  }
  if (terminal_pairs.empty()) {
    throw ModelError("scenario: measure needs terminal pairs");
  }
  for (const auto& [a, b] : terminal_pairs) {
    (void)g.vertex(a);
    (void)g.vertex(b);
  }
  std::unordered_map<std::string, std::size_t> vertex_by_name;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    vertex_by_name.emplace(
        g.vertex(VertexId{static_cast<std::uint32_t>(v)}).name, v);
  }
  std::unordered_map<std::string, std::size_t> edge_by_name;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    edge_by_name.emplace(g.edge(EdgeId{static_cast<std::uint32_t>(e)}).name,
                         e);
  }

  std::vector<bool> vertex_up(g.vertex_count(), true);
  std::vector<bool> edge_up(g.edge_count(), true);

  depend::SimulationResult result;
  result.measured_hours = options.horizon_hours - options.warmup_hours;

  bool up = true;
  double last_change = 0.0;
  double outage_started = 0.0;

  const auto measured_span = [&](double from, double to) {
    const double lo = std::max(from, options.warmup_hours);
    const double hi = std::min(to, options.horizon_hours);
    return std::max(0.0, hi - lo);
  };

  for (const Event& event : trace) {
    if (!event.is_state_change()) continue;
    if (event.at_hours >= options.horizon_hours) break;
    const double now = event.at_hours;
    ++result.component_events;

    const bool is_up = !event.is_failure();
    if (event.kind == EventKind::FailComponent ||
        event.kind == EventKind::RepairComponent) {
      const auto it = vertex_by_name.find(event.element);
      if (it == vertex_by_name.end()) {
        throw NotFoundError("scenario: unknown component '" + event.element +
                            "' in trace");
      }
      vertex_up[it->second] = is_up;
    } else {
      const auto it = edge_by_name.find(event.element);
      if (it == edge_by_name.end()) {
        throw NotFoundError("scenario: unknown link '" + event.element +
                            "' in trace");
      }
      edge_up[it->second] = is_up;
    }

    const bool now_up = service_up(g, vertex_up, edge_up, terminal_pairs);
    if (now_up == up) continue;
    if (up) {
      result.uptime_hours += measured_span(last_change, now);
      outage_started = now;
    } else {
      const double measured_outage = measured_span(outage_started, now);
      if (measured_outage > 0.0) {
        ++result.outages;
        result.outage_log.push_back(depend::OutageRecord{
            std::max(outage_started, options.warmup_hours), measured_outage});
      }
    }
    up = now_up;
    last_change = now;
  }

  if (up) {
    result.uptime_hours += measured_span(last_change, options.horizon_hours);
  } else {
    const double measured_outage =
        measured_span(outage_started, options.horizon_hours);
    if (measured_outage > 0.0) {
      ++result.outages;
      result.outage_log.push_back(depend::OutageRecord{
          std::max(outage_started, options.warmup_hours), measured_outage});
    }
  }
  return result;
}

}  // namespace upsim::scenario
