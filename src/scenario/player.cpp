#include "scenario/player.hpp"

#include <utility>

#include "util/error.hpp"

namespace upsim::scenario {

ScenarioPlayer::ScenarioPlayer(engine::PerspectiveEngine& engine,
                               PlayerOptions options)
    : engine_(&engine), options_(options) {}

void ScenarioPlayer::register_mapping(const std::string& perspective,
                                      mapping::ServiceMapping mapping) {
  std::lock_guard lock(mutex_);
  mappings_.insert_or_assign(perspective, std::move(mapping));
}

mapping::ServiceMapping ScenarioPlayer::mapping(
    const std::string& perspective) const {
  std::lock_guard lock(mutex_);
  const auto it = mappings_.find(perspective);
  if (it == mappings_.end()) {
    throw NotFoundError("scenario: no mapping registered for perspective '" +
                        perspective + "'");
  }
  return it->second;
}

engine::InvalidationReport ScenarioPlayer::apply(const Event& event) {
  engine::InvalidationReport report;
  if (event.is_state_change()) {
    report = engine_->set_element_state({event.element}, !event.is_failure());
    if (options_.coarse) {
      // The pre-index behaviour: any topology event retires every cached
      // path set via the epoch.  The overlay state above is identical, so
      // served answers match the fine-grained mode byte for byte.
      engine_->notify_topology_changed();
      report.full_flush = true;
    }
  } else if (event.kind == EventKind::PropertyUpdate) {
    report = engine_->set_property_override(event.element, event.attribute,
                                            event.value);
    if (options_.coarse) {
      engine_->notify_properties_changed();
      report.full_flush = true;
    }
  } else {
    // Mapping change (migrate_service / move_user): rewrite the registered
    // mapping — every pair endpoint equal to `from` becomes `to` — and let
    // the engine drop the recorded run.
    std::lock_guard lock(mutex_);
    const auto it = mappings_.find(event.perspective);
    if (it == mappings_.end()) {
      throw NotFoundError(
          "scenario: no mapping registered for perspective '" +
          event.perspective + "'");
    }
    mapping::ServiceMapping rewritten;
    for (const auto& pair : it->second.pairs()) {
      const auto swap = [&](const std::string& id) {
        return id == event.from ? event.to : id;
      };
      rewritten.map(pair.atomic_service, swap(pair.requester),
                    swap(pair.provider));
    }
    it->second = std::move(rewritten);
    engine_->notify_mapping_changed(event.perspective);
  }

  std::unique_lock lock(mutex_);
  ++stats_.events;
  if (event.is_state_change()) {
    event.is_failure() ? ++stats_.failures : ++stats_.repairs;
  } else if (event.kind == EventKind::PropertyUpdate) {
    ++stats_.property_updates;
  } else {
    ++stats_.mapping_changes;
  }
  stats_.affected_keys += report.affected_keys;
  if (report.full_flush) ++stats_.full_flushes;
  lock.unlock();
  if (options_.observer) options_.observer(event);
  return report;
}

PlayerStats ScenarioPlayer::play(const std::vector<Event>& trace) {
  PlayerStats before = stats();
  for (const Event& event : trace) (void)apply(event);
  PlayerStats after = stats();
  PlayerStats delta;
  delta.events = after.events - before.events;
  delta.failures = after.failures - before.failures;
  delta.repairs = after.repairs - before.repairs;
  delta.property_updates = after.property_updates - before.property_updates;
  delta.mapping_changes = after.mapping_changes - before.mapping_changes;
  delta.affected_keys = after.affected_keys - before.affected_keys;
  delta.full_flushes = after.full_flushes - before.full_flushes;
  return delta;
}

PlayerStats ScenarioPlayer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace upsim::scenario
