// ScenarioPlayer — replays event traces against a live PerspectiveEngine.
//
// The player is the bridge between a recorded/generated trace and the
// engine's fine-grained invalidation surface:
//
//   fail_*/repair_*    -> engine.set_element_state() (down overlay; zero
//                         path-cache evictions, the reverse index names
//                         the affected pairs)
//   property_update    -> engine.set_property_override()
//   migrate_service /  -> rewrites the perspective's registered mapping
//   move_user             (every occurrence of `from` becomes `to`) and
//                         calls engine.notify_mapping_changed()
//
// PlayerOptions::coarse is the ablation baseline the differential tests
// and bench_dynamicity compare against: the *same* overlay state is
// applied, but every state event additionally forces the pre-index
// behaviour — a full epoch flush (re-import, re-project, every cached
// path set evicted) — and every property event a full re-projection.
// Served answers are byte-identical in both modes; only the work differs.
//
// Thread safety: apply()/play() may run concurrently with engine queries
// (the engine synchronizes internally); the player's own mapping registry
// and statistics are guarded by a mutex, so concurrent apply() calls are
// safe too.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/perspective_engine.hpp"
#include "mapping/mapping.hpp"
#include "scenario/event.hpp"

namespace upsim::scenario {

struct PlayerOptions {
  /// Replay with the coarse epoch-flush invalidation instead of the
  /// fine-grained overlay accounting (the comparison baseline).
  bool coarse = false;
  /// Called after each successfully applied event, outside the player's
  /// lock.  The registry's observation feed hangs off this: fail/repair
  /// events fold into the per-element MTBF/MTTR estimators as they play.
  /// Must not throw; must be safe from whatever threads call apply().
  std::function<void(const Event&)> observer;
};

struct PlayerStats {
  std::uint64_t events = 0;
  std::uint64_t failures = 0;
  std::uint64_t repairs = 0;
  std::uint64_t property_updates = 0;
  std::uint64_t mapping_changes = 0;
  /// Sum of reverse-index matches over all events.
  std::uint64_t affected_keys = 0;
  /// Coarse-mode epoch flushes forced by state events.
  std::uint64_t full_flushes = 0;
};

class ScenarioPlayer {
 public:
  /// The engine must outlive the player.
  explicit ScenarioPlayer(engine::PerspectiveEngine& engine,
                          PlayerOptions options = {});

  ScenarioPlayer(const ScenarioPlayer&) = delete;
  ScenarioPlayer& operator=(const ScenarioPlayer&) = delete;

  /// Registers (or replaces) the mapping that `perspective`'s mapping
  /// events rewrite.
  void register_mapping(const std::string& perspective,
                        mapping::ServiceMapping mapping);
  /// Current mapping of a registered perspective; throws NotFoundError.
  [[nodiscard]] mapping::ServiceMapping mapping(
      const std::string& perspective) const;

  /// Applies one event; returns what it invalidated.  Mapping events for
  /// an unregistered perspective throw NotFoundError.
  engine::InvalidationReport apply(const Event& event);

  /// Applies every event in order; returns the cumulative stats delta of
  /// this call.
  PlayerStats play(const std::vector<Event>& trace);

  [[nodiscard]] PlayerStats stats() const;

 private:
  engine::PerspectiveEngine* engine_;
  PlayerOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, mapping::ServiceMapping> mappings_;
  PlayerStats stats_;
};

}  // namespace upsim::scenario
