#include "scenario/event.hpp"

#include "util/error.hpp"

namespace upsim::scenario {

std::string_view kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::FailComponent:
      return "fail_component";
    case EventKind::RepairComponent:
      return "repair_component";
    case EventKind::FailLink:
      return "fail_link";
    case EventKind::RepairLink:
      return "repair_link";
    case EventKind::PropertyUpdate:
      return "property_update";
    case EventKind::MigrateService:
      return "migrate_service";
    case EventKind::MoveUser:
      return "move_user";
  }
  throw Error("scenario: unhandled event kind");
}

EventKind kind_from_name(std::string_view name) {
  if (name == "fail_component") return EventKind::FailComponent;
  if (name == "repair_component") return EventKind::RepairComponent;
  if (name == "fail_link") return EventKind::FailLink;
  if (name == "repair_link") return EventKind::RepairLink;
  if (name == "property_update") return EventKind::PropertyUpdate;
  if (name == "migrate_service") return EventKind::MigrateService;
  if (name == "move_user") return EventKind::MoveUser;
  throw ParseError("scenario: unknown event kind '" + std::string(name) + "'");
}

bool Event::is_state_change() const noexcept {
  return kind == EventKind::FailComponent ||
         kind == EventKind::RepairComponent || kind == EventKind::FailLink ||
         kind == EventKind::RepairLink;
}

bool Event::is_failure() const noexcept {
  return kind == EventKind::FailComponent || kind == EventKind::FailLink;
}

bool Event::is_mapping_change() const noexcept {
  return kind == EventKind::MigrateService || kind == EventKind::MoveUser;
}

std::string Event::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("t");
  w.value(at_hours);
  w.key("kind");
  w.value(kind_name(kind));
  if (is_state_change() || kind == EventKind::PropertyUpdate) {
    w.key("element");
    w.value(element);
  }
  if (kind == EventKind::PropertyUpdate) {
    w.key("attribute");
    w.value(attribute);
    w.key("value");
    w.value(value);
  }
  if (is_mapping_change()) {
    w.key("perspective");
    w.value(perspective);
    w.key("from");
    w.value(from);
    w.key("to");
    w.value(to);
  }
  w.end_object();
  return std::move(w).str();
}

namespace {

const std::string& require_string(const obs::JsonValue& object,
                                  std::string_view key) {
  if (!object.has(key) ||
      object.at(key).kind != obs::JsonValue::Kind::String) {
    throw ParseError("scenario event: missing string member '" +
                     std::string(key) + "'");
  }
  return object.at(key).string;
}

double require_number(const obs::JsonValue& object, std::string_view key) {
  if (!object.has(key) ||
      object.at(key).kind != obs::JsonValue::Kind::Number) {
    throw ParseError("scenario event: missing number member '" +
                     std::string(key) + "'");
  }
  return object.at(key).number;
}

}  // namespace

Event Event::from_json(const obs::JsonValue& value) {
  if (value.kind != obs::JsonValue::Kind::Object) {
    throw ParseError("scenario event: expected a JSON object");
  }
  Event event;
  event.at_hours = require_number(value, "t");
  event.kind = kind_from_name(require_string(value, "kind"));
  if (event.is_state_change() || event.kind == EventKind::PropertyUpdate) {
    event.element = require_string(value, "element");
  }
  if (event.kind == EventKind::PropertyUpdate) {
    event.attribute = require_string(value, "attribute");
    event.value = require_number(value, "value");
  }
  if (event.is_mapping_change()) {
    event.perspective = require_string(value, "perspective");
    event.from = require_string(value, "from");
    event.to = require_string(value, "to");
  }
  return event;
}

}  // namespace upsim::scenario
