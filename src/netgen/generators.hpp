// Synthetic topology generators for the scalability experiments (E8/E9).
//
// The paper argues (Sec. V-D, VIII) that all-paths discovery is factorial
// on dense graphs but cheap on the tree-like access networks services
// actually run on.  These generators produce the whole spectrum:
// trees and campus networks (the realistic case, shaped like Fig. 5),
// rings/grids (few redundant paths), Erdős–Rényi graphs (tunable density)
// and complete graphs (the adversarial O(n!) case).
//
// Every generated vertex/edge carries "mtbf"/"mttr" attributes so that
// reliability analysis runs on synthetic topologies out of the box; the
// defaults mirror the case study's orders of magnitude.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "uml/object_model.hpp"
#include "uml/profile.hpp"

#include <memory>

namespace upsim::netgen {

/// Default dependability attributes attached to generated components.
struct DefaultAttributes {
  double node_mtbf = 100000.0;
  double node_mttr = 1.0;
  double link_mtbf = 500000.0;
  double link_mttr = 0.5;
};

/// Balanced tree with `n` vertices and the given branching factor.
/// Vertex names are "v0".."v<n-1>", root "v0".
[[nodiscard]] graph::Graph tree(std::size_t n, std::size_t branching = 2,
                                const DefaultAttributes& attrs = {});

/// Cycle of `n` >= 3 vertices.
[[nodiscard]] graph::Graph ring(std::size_t n,
                                const DefaultAttributes& attrs = {});

/// rows x cols grid (4-neighbourhood).
[[nodiscard]] graph::Graph grid(std::size_t rows, std::size_t cols,
                                const DefaultAttributes& attrs = {});

/// Complete graph on n vertices — the factorial worst case of Sec. V-D.
[[nodiscard]] graph::Graph complete(std::size_t n,
                                    const DefaultAttributes& attrs = {});

/// Erdős–Rényi G(n, p), then augmented with a spanning path so the graph
/// is always connected (benchmarks need s-t pairs that can communicate).
[[nodiscard]] graph::Graph erdos_renyi(std::size_t n, double p,
                                       std::uint64_t seed,
                                       const DefaultAttributes& attrs = {});

/// Campus network in the shape of the paper's Fig. 5: a redundant core
/// pair, distribution switches (dual-homed when `redundant_uplinks`), edge
/// switches, client leaves, and a server block behind the last
/// distribution switch (named "printS-like": "srv0" hosts services).
struct CampusSpec {
  std::size_t core = 2;               ///< fully meshed core switches
  std::size_t distribution = 4;       ///< distribution switches
  std::size_t edge_per_distribution = 2;
  std::size_t clients_per_edge = 3;
  std::size_t servers = 4;            ///< attached to the last distribution
  bool redundant_uplinks = true;      ///< distribution dual-homed to core
};

[[nodiscard]] graph::Graph campus(const CampusSpec& spec,
                                  const DefaultAttributes& attrs = {});

/// k-ary fat tree (the canonical data-center topology; the "complex
/// infrastructures such as cloud computing" the paper's conclusion points
/// at): (k/2)^2 core switches, k pods of k/2 aggregation + k/2 edge
/// switches, k/2 hosts per edge switch.  k must be even and >= 2.  Host
/// names are "h<i>", and inter-pod host pairs see (k/2)^2 * ... redundant
/// paths — far more than a campus, stressing discovery and analysis.
[[nodiscard]] graph::Graph fat_tree(std::size_t k,
                                    const DefaultAttributes& attrs = {});

/// Names of a far-apart client/server pair of a campus topology (first
/// client of the first edge switch, first server) — the canonical
/// requester/provider for scalability runs.
struct CampusEndpoints {
  std::string client;
  std::string server;
};
[[nodiscard]] CampusEndpoints campus_endpoints(const CampusSpec& spec);

/// A full UML-level network (profile, class model, object diagram) for
/// end-to-end pipeline benchmarks.  Owns everything in dependency order.
struct UmlNetwork {
  std::unique_ptr<uml::Profile> availability_profile;
  std::unique_ptr<uml::ClassModel> classes;
  std::unique_ptr<uml::ObjectModel> infrastructure;
};

/// Builds the campus topology as a UML object model: classes Switch /
/// Client / Server with «Component» availability stereotypes, one
/// association per admissible link kind, instances and links mirroring
/// campus().  The projected graph equals campus() structurally.
[[nodiscard]] UmlNetwork uml_campus(const CampusSpec& spec,
                                    const DefaultAttributes& attrs = {});

}  // namespace upsim::netgen
