#include "netgen/generators.hpp"

#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace upsim::netgen {

namespace {

graph::AttributeMap node_attrs(const DefaultAttributes& a) {
  return {{"mtbf", a.node_mtbf}, {"mttr", a.node_mttr}};
}

graph::AttributeMap link_attrs(const DefaultAttributes& a) {
  return {{"mtbf", a.link_mtbf}, {"mttr", a.link_mttr}};
}

graph::Graph make_vertices(std::size_t n, const DefaultAttributes& attrs,
                           const char* type) {
  graph::Graph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.add_vertex("v" + std::to_string(i), type, node_attrs(attrs));
  }
  return g;
}

}  // namespace

graph::Graph tree(std::size_t n, std::size_t branching,
                  const DefaultAttributes& attrs) {
  if (n == 0) throw ModelError("tree: n must be >= 1");
  if (branching == 0) throw ModelError("tree: branching must be >= 1");
  graph::Graph g = make_vertices(n, attrs, "Node");
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t parent = (i - 1) / branching;
    g.add_edge(graph::VertexId{static_cast<std::uint32_t>(parent)},
               graph::VertexId{static_cast<std::uint32_t>(i)}, {},
               link_attrs(attrs));
  }
  return g;
}

graph::Graph ring(std::size_t n, const DefaultAttributes& attrs) {
  if (n < 3) throw ModelError("ring: n must be >= 3");
  graph::Graph g = make_vertices(n, attrs, "Node");
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(graph::VertexId{static_cast<std::uint32_t>(i)},
               graph::VertexId{static_cast<std::uint32_t>((i + 1) % n)}, {},
               link_attrs(attrs));
  }
  return g;
}

graph::Graph grid(std::size_t rows, std::size_t cols,
                  const DefaultAttributes& attrs) {
  if (rows == 0 || cols == 0) throw ModelError("grid: empty dimension");
  graph::Graph g;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_vertex("v" + std::to_string(r) + "_" + std::to_string(c), "Node",
                   node_attrs(attrs));
    }
  }
  auto id = [cols](std::size_t r, std::size_t c) {
    return graph::VertexId{static_cast<std::uint32_t>(r * cols + c)};
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), {}, link_attrs(attrs));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), {}, link_attrs(attrs));
    }
  }
  return g;
}

graph::Graph complete(std::size_t n, const DefaultAttributes& attrs) {
  if (n == 0) throw ModelError("complete: n must be >= 1");
  graph::Graph g = make_vertices(n, attrs, "Node");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_edge(graph::VertexId{static_cast<std::uint32_t>(i)},
                 graph::VertexId{static_cast<std::uint32_t>(j)}, {},
                 link_attrs(attrs));
    }
  }
  return g;
}

graph::Graph erdos_renyi(std::size_t n, double p, std::uint64_t seed,
                         const DefaultAttributes& attrs) {
  if (n == 0) throw ModelError("erdos_renyi: n must be >= 1");
  if (!(p >= 0.0 && p <= 1.0)) throw ModelError("erdos_renyi: p outside [0,1]");
  graph::Graph g = make_vertices(n, attrs, "Node");
  // Spanning path first: guarantees connectivity.
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(graph::VertexId{static_cast<std::uint32_t>(i - 1)},
               graph::VertexId{static_cast<std::uint32_t>(i)}, {},
               link_attrs(attrs));
  }
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (j == i + 1) continue;  // already linked by the spanning path
      if (rng.bernoulli(p)) {
        g.add_edge(graph::VertexId{static_cast<std::uint32_t>(i)},
                   graph::VertexId{static_cast<std::uint32_t>(j)}, {},
                   link_attrs(attrs));
      }
    }
  }
  return g;
}

graph::Graph campus(const CampusSpec& spec, const DefaultAttributes& attrs) {
  if (spec.core == 0 || spec.distribution == 0) {
    throw ModelError("campus: needs at least one core and one distribution "
                     "switch");
  }
  graph::Graph g;
  std::vector<graph::VertexId> cores;
  std::vector<graph::VertexId> dists;
  for (std::size_t i = 0; i < spec.core; ++i) {
    cores.push_back(
        g.add_vertex("core" + std::to_string(i), "CoreSwitch", node_attrs(attrs)));
  }
  for (std::size_t i = 0; i < spec.distribution; ++i) {
    dists.push_back(g.add_vertex("dist" + std::to_string(i), "DistSwitch",
                                 node_attrs(attrs)));
  }
  // Full core mesh.
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = i + 1; j < cores.size(); ++j) {
      g.add_edge(cores[i], cores[j], {}, link_attrs(attrs));
    }
  }
  // Distribution uplinks.
  for (std::size_t i = 0; i < dists.size(); ++i) {
    if (spec.redundant_uplinks) {
      for (const graph::VertexId core : cores) {
        g.add_edge(dists[i], core, {}, link_attrs(attrs));
      }
    } else {
      g.add_edge(dists[i], cores[i % cores.size()], {}, link_attrs(attrs));
    }
  }
  // Edge switches + clients.
  std::size_t edge_counter = 0;
  std::size_t client_counter = 0;
  for (std::size_t d = 0; d < dists.size(); ++d) {
    for (std::size_t e = 0; e < spec.edge_per_distribution; ++e) {
      const graph::VertexId edge_switch = g.add_vertex(
          "edge" + std::to_string(edge_counter++), "EdgeSwitch",
          node_attrs(attrs));
      g.add_edge(dists[d], edge_switch, {}, link_attrs(attrs));
      for (std::size_t c = 0; c < spec.clients_per_edge; ++c) {
        const graph::VertexId client = g.add_vertex(
            "t" + std::to_string(client_counter++), "Client", node_attrs(attrs));
        g.add_edge(edge_switch, client, {}, link_attrs(attrs));
      }
    }
  }
  // Servers behind the last distribution switch.
  for (std::size_t s = 0; s < spec.servers; ++s) {
    const graph::VertexId server =
        g.add_vertex("srv" + std::to_string(s), "Server", node_attrs(attrs));
    g.add_edge(dists.back(), server, {}, link_attrs(attrs));
  }
  return g;
}

graph::Graph fat_tree(std::size_t k, const DefaultAttributes& attrs) {
  if (k < 2 || k % 2 != 0) {
    throw ModelError("fat_tree: k must be even and >= 2");
  }
  const std::size_t half = k / 2;
  graph::Graph g;
  std::vector<graph::VertexId> cores;
  for (std::size_t i = 0; i < half * half; ++i) {
    cores.push_back(g.add_vertex("core" + std::to_string(i), "CoreSwitch",
                                 node_attrs(attrs)));
  }
  std::size_t host_counter = 0;
  for (std::size_t pod = 0; pod < k; ++pod) {
    std::vector<graph::VertexId> aggs;
    std::vector<graph::VertexId> edges;
    for (std::size_t i = 0; i < half; ++i) {
      aggs.push_back(g.add_vertex(
          "agg" + std::to_string(pod) + "_" + std::to_string(i), "AggSwitch",
          node_attrs(attrs)));
      edges.push_back(g.add_vertex(
          "edge" + std::to_string(pod) + "_" + std::to_string(i),
          "EdgeSwitch", node_attrs(attrs)));
    }
    // Aggregation i connects to cores [i*half, (i+1)*half).
    for (std::size_t i = 0; i < half; ++i) {
      for (std::size_t j = 0; j < half; ++j) {
        g.add_edge(aggs[i], cores[i * half + j], {}, link_attrs(attrs));
      }
    }
    // Full bipartite agg <-> edge inside the pod.
    for (const graph::VertexId agg : aggs) {
      for (const graph::VertexId edge : edges) {
        g.add_edge(agg, edge, {}, link_attrs(attrs));
      }
    }
    // Hosts.
    for (const graph::VertexId edge : edges) {
      for (std::size_t h = 0; h < half; ++h) {
        const graph::VertexId host = g.add_vertex(
            "h" + std::to_string(host_counter++), "Host", node_attrs(attrs));
        g.add_edge(edge, host, {}, link_attrs(attrs));
      }
    }
  }
  return g;
}

CampusEndpoints campus_endpoints(const CampusSpec& spec) {
  if (spec.edge_per_distribution == 0 || spec.clients_per_edge == 0 ||
      spec.servers == 0) {
    throw ModelError("campus_endpoints: spec has no clients or servers");
  }
  return CampusEndpoints{"t0", "srv0"};
}

UmlNetwork uml_campus(const CampusSpec& spec, const DefaultAttributes& attrs) {
  UmlNetwork net;
  net.availability_profile = std::make_unique<uml::Profile>("availability");
  uml::Profile& profile = *net.availability_profile;
  uml::Stereotype& component =
      profile.define("Component", uml::Metaclass::Class, nullptr, true);
  component.declare_attribute("MTBF", uml::ValueType::Real);
  component.declare_attribute("MTTR", uml::ValueType::Real);
  component.declare_attribute("redundantComponents", uml::ValueType::Integer,
                              uml::Value(0));
  const uml::Stereotype& device =
      profile.define("Device", uml::Metaclass::Class, &component, false);
  uml::Stereotype& connector =
      profile.define("Connector", uml::Metaclass::Association);
  connector.declare_attribute("MTBF", uml::ValueType::Real);
  connector.declare_attribute("MTTR", uml::ValueType::Real);
  connector.declare_attribute("redundantComponents", uml::ValueType::Integer,
                              uml::Value(0));

  net.classes = std::make_unique<uml::ClassModel>("campus_classes");
  uml::ClassModel& classes = *net.classes;
  auto define_device = [&](const char* name) -> uml::Class& {
    uml::Class& cls = classes.define_class(name);
    auto& app = cls.apply(device);
    app.set("MTBF", attrs.node_mtbf);
    app.set("MTTR", attrs.node_mttr);
    return cls;
  };
  uml::Class& switch_cls = define_device("Switch");
  uml::Class& client_cls = define_device("Client");
  uml::Class& server_cls = define_device("Server");
  auto define_link = [&](const char* name, const uml::Class& a,
                         const uml::Class& b) -> uml::Association& {
    uml::Association& assoc = classes.define_association(name, a, b);
    auto& app = assoc.apply(connector);
    app.set("MTBF", attrs.link_mtbf);
    app.set("MTTR", attrs.link_mttr);
    return assoc;
  };
  define_link("trunk", switch_cls, switch_cls);
  define_link("access", switch_cls, client_cls);
  define_link("server_link", switch_cls, server_cls);

  net.infrastructure =
      std::make_unique<uml::ObjectModel>("campus", classes);
  uml::ObjectModel& model = *net.infrastructure;
  // Reuse the graph generator for the shape, then mirror it as UML.
  const graph::Graph shape = campus(spec, attrs);
  for (std::size_t v = 0; v < shape.vertex_count(); ++v) {
    const graph::Vertex& vertex =
        shape.vertex(graph::VertexId{static_cast<std::uint32_t>(v)});
    const uml::Class& cls = vertex.type == "Client"   ? client_cls
                            : vertex.type == "Server" ? server_cls
                                                      : switch_cls;
    model.instantiate(vertex.name, cls);
  }
  for (std::size_t e = 0; e < shape.edge_count(); ++e) {
    const graph::Edge& edge =
        shape.edge(graph::EdgeId{static_cast<std::uint32_t>(e)});
    const graph::Vertex& a = shape.vertex(edge.a);
    const graph::Vertex& b = shape.vertex(edge.b);
    const bool a_switch = a.type != "Client" && a.type != "Server";
    const bool b_switch = b.type != "Client" && b.type != "Server";
    const char* assoc = nullptr;
    if (a_switch && b_switch) {
      assoc = "trunk";
    } else if (a.type == "Client" || b.type == "Client") {
      assoc = "access";
    } else {
      assoc = "server_link";
    }
    model.link(a.name, b.name, assoc);
  }
  return net;
}

}  // namespace upsim::netgen
