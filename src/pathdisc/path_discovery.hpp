// Path discovery between service requester and provider (Sec. V-D/VI-G).
//
// The service mapping pair gives the boundary components of an atomic
// service; this module enumerates *all* simple paths between them, because
// every redundant path contributes to the user-perceived infrastructure
// (and to its availability).  The paper uses depth-first search with a
// path-tracking mechanism to avoid live-locks within cycles; worst-case
// cost is factorial in n on a complete graph, but real access networks are
// tree-like with few loops, which the benchmarks in bench/ demonstrate.
//
// Two interchangeable implementations are provided (an ablation the
// benches measure): plain recursion, and an explicit-stack iterative DFS
// that is immune to stack exhaustion on deep topologies.  Both visit
// neighbours in edge-insertion order, so discovery order is deterministic
// and reproduces the path listing of Sec. VI-G on the case-study network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace upsim::pathdisc {

/// A simple path as the sequence of visited vertices, source first.
using Path = std::vector<graph::VertexId>;

enum class Algorithm { RecursiveDfs, IterativeDfs };

struct Options {
  Algorithm algorithm = Algorithm::IterativeDfs;
  /// Maximum number of vertices per path; 0 = unbounded.  Bounding turns
  /// the exhaustive search into k-hop discovery for very dense cores.
  std::size_t max_path_length = 0;
  /// Stop after this many paths; 0 = unbounded.  When the limit triggers,
  /// PathSet::truncated is set.
  std::size_t max_paths = 0;

  /// Every field participates: two Options compare equal iff discovery is
  /// guaranteed to produce the same PathSet on the same graph/endpoints.
  [[nodiscard]] friend bool operator==(const Options&,
                                       const Options&) noexcept = default;
};

/// Hashes every field of `options` (paired with operator== above) so that
/// Options can key a hash map — the engine's path-set cache keys on it, and
/// an Options field silently left out here would alias cache entries across
/// different discovery configurations.
[[nodiscard]] std::size_t hash_value(const Options& options) noexcept;

/// Hasher adapter for unordered containers keyed on Options.
struct OptionsHash {
  [[nodiscard]] std::size_t operator()(const Options& options) const noexcept {
    return hash_value(options);
  }
};

/// The result of discovering one requester/provider pair.
struct PathSet {
  graph::VertexId source{};
  graph::VertexId target{};
  std::vector<Path> paths;          ///< in discovery order
  std::size_t nodes_expanded = 0;   ///< DFS tree size (work measure)
  bool truncated = false;           ///< a limit in Options cut the search

  [[nodiscard]] bool empty() const noexcept { return paths.empty(); }
  [[nodiscard]] std::size_t count() const noexcept { return paths.size(); }
  /// Length (vertex count) of the shortest / longest discovered path;
  /// 0 when empty.
  [[nodiscard]] std::size_t shortest() const noexcept;
  [[nodiscard]] std::size_t longest() const noexcept;
};

/// Enumerates all simple paths from `source` to `target`.  A trivial pair
/// (source == target) yields the single one-vertex path — the requester and
/// provider run on the same component.  An id outside [0, vertex_count)
/// names no component, so nothing is reachable: the result is the
/// well-defined empty PathSet (endpoints echoed back, no paths, zero
/// nodes_expanded, not truncated) on every implementation — generic graph
/// and CSR alike.  Name-based lookups still throw NotFoundError: a name
/// miss is a modelling error, an id miss is an empty answer.
[[nodiscard]] PathSet discover(const graph::Graph& g, graph::VertexId source,
                               graph::VertexId target,
                               const Options& options = {});

/// Convenience overload resolving endpoints by name.  Throws NotFoundError
/// when either name is unknown.
[[nodiscard]] PathSet discover(const graph::Graph& g, std::string_view source,
                               std::string_view target,
                               const Options& options = {});

/// Discovers several pairs; when `pool` is non-null the pairs are processed
/// in parallel (the graph is shared read-only).  Result order matches the
/// input order either way.
[[nodiscard]] std::vector<PathSet> discover_all(
    const graph::Graph& g,
    const std::vector<std::pair<graph::VertexId, graph::VertexId>>& pairs,
    const Options& options = {}, util::ThreadPool* pool = nullptr);

/// Union of all vertices on all paths across `sets`, in first-occurrence
/// order ("multiple occurrences are ignored", Sec. VI-H).  This is the
/// vertex set of the UPSIM.
[[nodiscard]] std::vector<graph::VertexId> merge_path_vertices(
    const graph::Graph& g, const std::vector<PathSet>& sets);

/// Renders a path in the paper's notation: "t1 - e1 - d1 - c1 - d4 - printS".
[[nodiscard]] std::string to_string(const graph::Graph& g, const Path& path);

/// Renders a path as a name vector for structural assertions in tests.
[[nodiscard]] std::vector<std::string> path_names(const graph::Graph& g,
                                                  const Path& path);

namespace detail {

/// Search limits with 0-means-unbounded resolved to SIZE_MAX, shared by the
/// generic and the CSR discovery kernels so both cut at identical depths.
struct Limits {
  std::size_t max_len;    // SIZE_MAX when unbounded
  std::size_t max_paths;  // SIZE_MAX when unbounded
};

[[nodiscard]] inline Limits limits_of(const Options& o) noexcept {
  return Limits{o.max_path_length == 0 ? SIZE_MAX : o.max_path_length,
                o.max_paths == 0 ? SIZE_MAX : o.max_paths};
}

/// Aggregates one finished pair into the obs registry (counters +
/// per-pair histograms).  One call per discover() call, on every
/// implementation, so metrics stay comparable when the engine switches
/// between the generic and the CSR kernel.
void record_pair_metrics(const PathSet& out);

}  // namespace detail

}  // namespace upsim::pathdisc
