// Count-only truncation forecast for path discovery.
//
// The semantic lint (UPS104) wants to warn *before* a query truncates: "with
// your configured limits, discovery on this pair will hit max_paths / the
// depth cut and silently return a lower bound".  The only way to promise
// that exactly is to run the same search and throw away the paths:
// forecast() mirrors both discovery kernels (csr.cpp's iterative and
// recursive ports) line for line, replacing the path vector with a depth
// counter and the result list with a counter, including the per-algorithm
// truncation quirks at exact limits and the post-search normalization.  The
// contract — forecast().would_truncate == discover().truncated, and equal
// paths / nodes_expanded counts — is held by a randomized differential test
// (tests/test_lint_semantic.cpp) in the style of the CSR oracle suite.
//
// Cost is bounded by the cost of the discovery it predicts (strictly less:
// no path materialization), so running it at lint time is safe wherever
// running the query would have been.
#pragma once

#include "graph/graph.hpp"
#include "pathdisc/csr.hpp"
#include "pathdisc/path_discovery.hpp"

namespace upsim::pathdisc {

struct PathForecast {
  std::size_t paths = 0;           ///< paths discovery would record
  std::size_t nodes_expanded = 0;  ///< identical to PathSet::nodes_expanded
  bool would_truncate = false;     ///< discover() would set truncated
};

/// Predicts discover(view, source, target, options) without materializing
/// paths.  Out-of-range ids forecast the empty answer, like discover().
[[nodiscard]] PathForecast forecast(const CsrView& view,
                                    graph::VertexId source,
                                    graph::VertexId target,
                                    const Options& options = {});

}  // namespace upsim::pathdisc
