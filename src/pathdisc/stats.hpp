// Descriptive statistics over discovered path sets: how redundant is a
// perspective, how long are its routes, and which components carry how many
// of the redundant paths (the "participation" a load or criticality
// analysis starts from).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "pathdisc/path_discovery.hpp"

namespace upsim::pathdisc {

struct PathSetStats {
  std::size_t path_count = 0;
  std::size_t shortest = 0;  ///< vertices on the shortest path (0 if none)
  std::size_t longest = 0;
  double mean_length = 0.0;
  /// Histogram: path length (vertices) -> number of paths.
  std::map<std::size_t, std::size_t> length_histogram;
  /// Per vertex name: fraction of paths it appears on, within (0, 1].
  /// A participation of 1.0 marks a component every route depends on —
  /// a single point of failure of this perspective.
  std::map<std::string, double> participation;

  /// Names with participation 1.0 (excluding nothing; terminals included).
  [[nodiscard]] std::vector<std::string> articulation_components() const;
};

/// Computes statistics for one path set discovered on `g`.
[[nodiscard]] PathSetStats analyze(const graph::Graph& g, const PathSet& set);

/// Merges several pairs' sets (e.g. every atomic service of a composite):
/// participation then counts the fraction of ALL paths.
[[nodiscard]] PathSetStats analyze_all(const graph::Graph& g,
                                       const std::vector<PathSet>& sets);

/// Whole-graph structural connectivity: the biconnected-component skeleton
/// (Tarjan articulation points and bridges, one iterative DFS) plus the
/// connected-component id of every vertex.  This is the machinery behind the
/// semantic lint's SPOF rules and the planned zone decomposition (ROADMAP
/// item 3): an articulation point is exactly a vertex whose removal splits a
/// component, a bridge an edge doing the same.
struct Connectivity {
  std::vector<graph::VertexId> articulation_points;  ///< ascending by index
  std::vector<graph::EdgeId> bridges;                ///< ascending by index
  std::vector<std::uint32_t> component;  ///< per-vertex component id

  [[nodiscard]] bool is_articulation(graph::VertexId v) const;
  [[nodiscard]] bool is_bridge(graph::EdgeId e) const;
};

[[nodiscard]] Connectivity connectivity(const graph::Graph& g);

/// True when removing vertex `cut` disconnects `s` from `t` (BFS around the
/// cut).  Trivially false when cut is s or t, or s == t.
[[nodiscard]] bool separates(const graph::Graph& g, graph::VertexId cut,
                             graph::VertexId s, graph::VertexId t);

/// True when removing edge `cut` disconnects `s` from `t`.
[[nodiscard]] bool separates_edge(const graph::Graph& g, graph::EdgeId cut,
                                  graph::VertexId s, graph::VertexId t);

/// Number of link-disjoint s→t paths (Menger: the minimum edge cut), as
/// unit-capacity max-flow with shortest augmenting paths, stopping early at
/// `cap`.  Returns cap for s == t.
[[nodiscard]] std::size_t edge_connectivity(const graph::Graph& g,
                                            graph::VertexId s,
                                            graph::VertexId t,
                                            std::size_t cap);

}  // namespace upsim::pathdisc
