// Descriptive statistics over discovered path sets: how redundant is a
// perspective, how long are its routes, and which components carry how many
// of the redundant paths (the "participation" a load or criticality
// analysis starts from).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "pathdisc/path_discovery.hpp"

namespace upsim::pathdisc {

struct PathSetStats {
  std::size_t path_count = 0;
  std::size_t shortest = 0;  ///< vertices on the shortest path (0 if none)
  std::size_t longest = 0;
  double mean_length = 0.0;
  /// Histogram: path length (vertices) -> number of paths.
  std::map<std::size_t, std::size_t> length_histogram;
  /// Per vertex name: fraction of paths it appears on, within (0, 1].
  /// A participation of 1.0 marks a component every route depends on —
  /// a single point of failure of this perspective.
  std::map<std::string, double> participation;

  /// Names with participation 1.0 (excluding nothing; terminals included).
  [[nodiscard]] std::vector<std::string> articulation_components() const;
};

/// Computes statistics for one path set discovered on `g`.
[[nodiscard]] PathSetStats analyze(const graph::Graph& g, const PathSet& set);

/// Merges several pairs' sets (e.g. every atomic service of a composite):
/// participation then counts the fraction of ALL paths.
[[nodiscard]] PathSetStats analyze_all(const graph::Graph& g,
                                       const std::vector<PathSet>& sets);

}  // namespace upsim::pathdisc
