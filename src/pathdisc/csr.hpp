// Flat CSR projection of graph::Graph for the path-discovery hot loop.
//
// discover() on the generic multigraph pays for generality on every edge
// visit: incident_edges() returns a per-vertex heap vector, opposite() loads
// a ~100-byte attribute-carrying Edge to compare endpoints, and the on-path
// mask is a std::vector<bool> proxy.  For the tree-like access networks the
// paper targets, the DFS is pure pointer chasing over that layout — memory
// bound, not compute bound.
//
// CsrView compiles the structure once into two contiguous arrays:
//
//   offsets_ : uint32[vertex_count + 1]      (CSR row starts)
//   arcs_    : {to, edge} uint32 pairs       (two directed arcs per link)
//
// in the POD-adjacency style of SNIPPETS.md's RelianceGraph/DepEdge.  The
// arcs of vertex v occupy arcs_[offsets_[v] .. offsets_[v+1]) in exactly the
// edge-insertion order incident_edges(v) reports, so the iterative
// explicit-stack DFS over these spans reproduces the legacy traversal
// byte for byte: same paths, same discovery order, same nodes_expanded,
// same truncation flags.  That equivalence is not an aspiration — the
// randomized differential suite (tests/test_pathdisc_csr.cpp) holds
// CsrView::discover to the generic-graph discover() as an oracle across
// hundreds of generated topologies and option combinations, and the engine
// keeps the oracle reachable (EngineOptions::use_csr = false) forever.
//
// The view is immutable after construction and holds no reference to the
// source graph, so it is freely shared across threads (the engine rebuilds
// it under its topology write lock and serves queries from it under the
// shared lock).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "pathdisc/path_discovery.hpp"

namespace upsim::pathdisc {

/// One directed half-edge of the CSR adjacency: the neighbour reached and
/// the undirected edge id it came from.  8 bytes, trivially copyable —
/// eight of these share a cache line.
struct CsrArc {
  std::uint32_t to;    ///< neighbour vertex index
  std::uint32_t edge;  ///< originating graph::EdgeId index
};
static_assert(sizeof(CsrArc) == 8);

class CsrView {
 public:
  /// An empty view (zero vertices); discover() on it returns empty sets.
  CsrView() : offsets_(1, 0) {}

  /// Projects `g`'s structure.  O(V + E); attributes and names are not
  /// copied — the view is for traversal only.
  explicit CsrView(const graph::Graph& g);

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return arcs_.size() / 2;
  }

  /// Arcs out of `v` in edge-insertion order.  Precondition: v < vertex_count.
  [[nodiscard]] std::span<const CsrArc> arcs(std::uint32_t v) const noexcept {
    return {arcs_.data() + offsets_[v],
            arcs_.data() + offsets_[v + 1]};
  }

  /// Enumerates all simple paths from `source` to `target` with results
  /// byte-identical to pathdisc::discover() on the graph this view was
  /// built from — including the per-algorithm truncation quirks, which are
  /// mirrored faithfully rather than cleaned up (the engine caches by
  /// Options, so the two implementations must agree per option set).  An
  /// out-of-range id yields a well-defined empty PathSet, same as the
  /// generic implementation.
  [[nodiscard]] PathSet discover(graph::VertexId source,
                                 graph::VertexId target,
                                 const Options& options = {}) const;

 private:
  std::vector<std::uint32_t> offsets_;  ///< vertex_count + 1 row starts
  std::vector<CsrArc> arcs_;            ///< 2 * edge_count directed arcs
};

/// Free-function spelling mirroring pathdisc::discover(graph, ...).
[[nodiscard]] inline PathSet discover(const CsrView& view,
                                      graph::VertexId source,
                                      graph::VertexId target,
                                      const Options& options = {}) {
  return view.discover(source, target, options);
}

}  // namespace upsim::pathdisc
