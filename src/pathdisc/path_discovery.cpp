#include "pathdisc/path_discovery.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace upsim::pathdisc {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::index;

std::size_t hash_value(const Options& options) noexcept {
  // splitmix64-style mixing of each field into the running state; the odd
  // multipliers keep nearby values (max_paths 1 vs 2) far apart.
  auto mix = [](std::size_t state, std::size_t v) noexcept {
    state ^= v + 0x9E3779B97F4A7C15ULL + (state << 6) + (state >> 2);
    state *= 0xBF58476D1CE4E5B9ULL;
    return state ^ (state >> 31);
  };
  std::size_t h = 0x243F6A8885A308D3ULL;
  h = mix(h, static_cast<std::size_t>(options.algorithm));
  h = mix(h, options.max_path_length);
  h = mix(h, options.max_paths);
  return h;
}

std::size_t PathSet::shortest() const noexcept {
  std::size_t best = 0;
  for (const Path& p : paths) {
    if (best == 0 || p.size() < best) best = p.size();
  }
  return best;
}

std::size_t PathSet::longest() const noexcept {
  std::size_t best = 0;
  for (const Path& p : paths) best = std::max(best, p.size());
  return best;
}

namespace detail {

/// Counters are recorded per discover() call (one call per
/// requester/provider pair), so they sum naturally across a pipeline run;
/// the truncation counter is touched even when zero so exported metrics
/// always show it — a bounded search that silently drops paths must never
/// look exhaustive.
void record_pair_metrics(const PathSet& out) {
  auto& registry = obs::Registry::global();
  registry.counter("pathdisc.pairs").add(1);
  registry.counter("pathdisc.vertices_visited").add(out.nodes_expanded);
  registry.counter("pathdisc.paths_found").add(out.paths.size());
  auto& truncations = registry.counter("pathdisc.truncations");
  if (out.truncated) truncations.add(1);
  registry.histogram("pathdisc.paths_per_pair")
      .record(static_cast<double>(out.paths.size()));
  registry.histogram("pathdisc.vertices_per_pair")
      .record(static_cast<double>(out.nodes_expanded));
}

}  // namespace detail

namespace {

using detail::Limits;
using detail::limits_of;

/// Recursive DFS with on-path tracking (the paper's algorithm).
class RecursiveSearch {
 public:
  RecursiveSearch(const Graph& g, VertexId target, const Limits& lim,
                  PathSet& out)
      : g_(g), target_(target), lim_(lim), out_(out),
        on_path_(g.vertex_count(), false) {}

  void run(VertexId source) {
    path_.push_back(source);
    on_path_[index(source)] = true;
    visit(source);
  }

 private:
  void visit(VertexId v) {
    ++out_.nodes_expanded;
    if (v == target_) {
      out_.paths.push_back(path_);
      if (out_.paths.size() >= lim_.max_paths) out_.truncated = true;
      return;
    }
    if (path_.size() >= lim_.max_len) {
      out_.truncated = true;  // a longer path may have existed
      return;
    }
    for (const EdgeId e : g_.incident_edges(v)) {
      if (out_.truncated && out_.paths.size() >= lim_.max_paths) return;
      const VertexId w = g_.opposite(e, v);
      if (on_path_[index(w)]) continue;  // path tracking: no revisits
      on_path_[index(w)] = true;
      path_.push_back(w);
      visit(w);
      path_.pop_back();
      on_path_[index(w)] = false;
    }
  }

  const Graph& g_;
  VertexId target_;
  Limits lim_;
  PathSet& out_;
  std::vector<bool> on_path_;
  Path path_;
};

/// Iterative DFS over an explicit stack of (vertex, next-incident-index)
/// frames.  Visits neighbours in exactly the same order as the recursive
/// variant, so both produce identical path lists.
void iterative_search(const Graph& g, VertexId source, VertexId target,
                      const Limits& lim, PathSet& out) {
  struct Frame {
    VertexId v;
    std::size_t next_edge;
  };
  std::vector<bool> on_path(g.vertex_count(), false);
  Path path{source};
  std::vector<Frame> stack{{source, 0}};
  on_path[index(source)] = true;
  ++out.nodes_expanded;
  if (source == target) {
    out.paths.push_back(path);
    if (out.paths.size() >= lim.max_paths) out.truncated = true;
    return;
  }

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& incident = g.incident_edges(frame.v);
    const bool depth_cut = path.size() >= lim.max_len;
    if (depth_cut && frame.next_edge < incident.size()) {
      out.truncated = true;
    }
    if (depth_cut || frame.next_edge >= incident.size()) {
      on_path[index(frame.v)] = false;
      path.pop_back();
      stack.pop_back();
      continue;
    }
    const EdgeId e = incident[frame.next_edge++];
    const VertexId w = g.opposite(e, frame.v);
    if (on_path[index(w)]) continue;
    ++out.nodes_expanded;
    if (w == target) {
      path.push_back(w);
      out.paths.push_back(path);
      path.pop_back();
      if (out.paths.size() >= lim.max_paths) {
        out.truncated = true;
        return;
      }
      continue;
    }
    on_path[index(w)] = true;
    path.push_back(w);
    stack.push_back(Frame{w, 0});
  }
}

}  // namespace

PathSet discover(const Graph& g, VertexId source, VertexId target,
                 const Options& options) {
  obs::ScopedSpan span("pathdisc.discover", "pathdisc");
  PathSet out;
  out.source = source;
  out.target = target;
  if (index(source) >= g.vertex_count() || index(target) >= g.vertex_count()) {
    // An id that names no vertex can reach nothing: the answer is the
    // well-defined empty set (see the header contract), identically on
    // every implementation, rather than an exception from deep inside the
    // accessor machinery.
    if (obs::enabled()) detail::record_pair_metrics(out);
    return out;
  }
  const Limits lim = limits_of(options);
  if (options.algorithm == Algorithm::RecursiveDfs) {
    if (source == target) {
      out.nodes_expanded = 1;
      out.paths.push_back(Path{source});
      if (obs::enabled()) detail::record_pair_metrics(out);
      return out;
    }
    RecursiveSearch search(g, target, lim, out);
    search.run(source);
    // Recursive search sets truncated eagerly when the last allowed path is
    // found; normalise: truncated only matters if limits actually cut work.
    if (out.paths.size() < lim.max_paths &&
        options.max_path_length == 0) {
      out.truncated = false;
    }
  } else {
    iterative_search(g, source, target, lim, out);
    if (out.paths.size() < lim.max_paths && options.max_path_length == 0) {
      out.truncated = false;
    }
  }
  if (obs::enabled()) detail::record_pair_metrics(out);
  return out;
}

PathSet discover(const Graph& g, std::string_view source,
                 std::string_view target, const Options& options) {
  return discover(g, g.vertex_by_name(source), g.vertex_by_name(target),
                  options);
}

std::vector<PathSet> discover_all(
    const Graph& g,
    const std::vector<std::pair<VertexId, VertexId>>& pairs,
    const Options& options, util::ThreadPool* pool) {
  std::vector<PathSet> out(pairs.size());
  if (pool == nullptr) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      out[i] = discover(g, pairs[i].first, pairs[i].second, options);
    }
  } else {
    pool->parallel_for(pairs.size(), [&](std::size_t i) {
      out[i] = discover(g, pairs[i].first, pairs[i].second, options);
    });
  }
  return out;
}

std::vector<VertexId> merge_path_vertices(const Graph& g,
                                          const std::vector<PathSet>& sets) {
  std::vector<bool> seen(g.vertex_count(), false);
  std::vector<VertexId> out;
  for (const PathSet& set : sets) {
    for (const Path& path : set.paths) {
      for (const VertexId v : path) {
        if (!seen[index(v)]) {
          seen[index(v)] = true;
          out.push_back(v);
        }
      }
    }
  }
  return out;
}

std::string to_string(const Graph& g, const Path& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += " - ";
    out += g.vertex(path[i]).name;
  }
  return out;
}

std::vector<std::string> path_names(const Graph& g, const Path& path) {
  std::vector<std::string> out;
  out.reserve(path.size());
  for (const VertexId v : path) out.push_back(g.vertex(v).name);
  return out;
}

}  // namespace upsim::pathdisc
