#include "pathdisc/csr.hpp"

#include "obs/obs.hpp"

namespace upsim::pathdisc {

using graph::VertexId;
using graph::index;
using detail::Limits;
using detail::limits_of;

CsrView::CsrView(const graph::Graph& g) {
  const std::size_t n = g.vertex_count();
  offsets_.reserve(n + 1);
  arcs_.reserve(2 * g.edge_count());
  // Built straight off incident_edges(), so per-vertex arc order is
  // definitionally the legacy traversal's edge-insertion order — the
  // property the byte-identical-results contract rests on.
  for (std::uint32_t v = 0; v < n; ++v) {
    offsets_.push_back(static_cast<std::uint32_t>(arcs_.size()));
    for (const graph::EdgeId e : g.incident_edges(VertexId{v})) {
      arcs_.push_back(
          CsrArc{index(g.opposite(e, VertexId{v})), index(e)});
    }
  }
  offsets_.push_back(static_cast<std::uint32_t>(arcs_.size()));
}

namespace {

/// Word-packed visited mask (1 bit per vertex).  std::vector<bool> hides
/// the same packing behind proxy iterators; this keeps the three hot
/// operations branch-free single-word accesses.
class VisitMask {
 public:
  explicit VisitMask(std::size_t n) : words_((n + 63) / 64, 0) {}
  [[nodiscard]] bool test(std::uint32_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::uint32_t i) noexcept {
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void reset(std::uint32_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Line-by-line port of path_discovery.cpp's iterative_search onto CSR
/// spans: the control flow (and with it every observable — path order,
/// nodes_expanded, truncation decisions) is kept identical; only the
/// neighbour-expansion machinery changed from accessor calls to flat
/// array reads.
void iterative_search_csr(const CsrView& view, VertexId source,
                          VertexId target, const Limits& lim, PathSet& out) {
  struct Frame {
    std::uint32_t v;
    std::uint32_t next_arc;
  };
  VisitMask on_path(view.vertex_count());
  Path path{source};
  std::vector<Frame> stack;
  stack.reserve(64);
  stack.push_back(Frame{index(source), 0});
  on_path.set(index(source));
  ++out.nodes_expanded;
  if (source == target) {
    out.paths.push_back(path);
    if (out.paths.size() >= lim.max_paths) out.truncated = true;
    return;
  }

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const std::span<const CsrArc> incident = view.arcs(frame.v);
    const bool depth_cut = path.size() >= lim.max_len;
    if (depth_cut && frame.next_arc < incident.size()) {
      out.truncated = true;
    }
    if (depth_cut || frame.next_arc >= incident.size()) {
      on_path.reset(frame.v);
      path.pop_back();
      stack.pop_back();
      continue;
    }
    const CsrArc arc = incident[frame.next_arc++];
    if (on_path.test(arc.to)) continue;
    ++out.nodes_expanded;
    if (VertexId{arc.to} == target) {
      path.push_back(VertexId{arc.to});
      out.paths.push_back(path);
      path.pop_back();
      if (out.paths.size() >= lim.max_paths) {
        out.truncated = true;
        return;
      }
      continue;
    }
    on_path.set(arc.to);
    path.push_back(VertexId{arc.to});
    stack.push_back(Frame{arc.to, 0});
  }
}

/// Port of RecursiveSearch.  Kept genuinely recursive (and structurally
/// identical) because Options::algorithm is part of the engine's cache key:
/// each algorithm's results — including its truncation-flag quirks at exact
/// limits — must match the legacy implementation of the *same* algorithm.
class RecursiveCsrSearch {
 public:
  RecursiveCsrSearch(const CsrView& view, VertexId target, const Limits& lim,
                     PathSet& out)
      : view_(view), target_(index(target)), lim_(lim), out_(out),
        on_path_(view.vertex_count()) {}

  void run(VertexId source) {
    path_.push_back(source);
    on_path_.set(index(source));
    visit(index(source));
  }

 private:
  void visit(std::uint32_t v) {
    ++out_.nodes_expanded;
    if (v == target_) {
      out_.paths.push_back(path_);
      if (out_.paths.size() >= lim_.max_paths) out_.truncated = true;
      return;
    }
    if (path_.size() >= lim_.max_len) {
      out_.truncated = true;  // a longer path may have existed
      return;
    }
    for (const CsrArc arc : view_.arcs(v)) {
      if (out_.truncated && out_.paths.size() >= lim_.max_paths) return;
      if (on_path_.test(arc.to)) continue;  // path tracking: no revisits
      on_path_.set(arc.to);
      path_.push_back(VertexId{arc.to});
      visit(arc.to);
      path_.pop_back();
      on_path_.reset(arc.to);
    }
  }

  const CsrView& view_;
  std::uint32_t target_;
  Limits lim_;
  PathSet& out_;
  VisitMask on_path_;
  Path path_;
};

}  // namespace

PathSet CsrView::discover(VertexId source, VertexId target,
                          const Options& options) const {
  obs::ScopedSpan span("pathdisc.discover_csr", "pathdisc");
  PathSet out;
  out.source = source;
  out.target = target;
  if (index(source) >= vertex_count() || index(target) >= vertex_count()) {
    // Same contract as the generic discover(): an unknown id is an empty
    // answer, not an exception.
    if (obs::enabled()) detail::record_pair_metrics(out);
    return out;
  }
  const Limits lim = limits_of(options);
  if (options.algorithm == Algorithm::RecursiveDfs) {
    if (source == target) {
      out.nodes_expanded = 1;
      out.paths.push_back(Path{source});
      if (obs::enabled()) detail::record_pair_metrics(out);
      return out;
    }
    RecursiveCsrSearch search(*this, target, lim, out);
    search.run(source);
    if (out.paths.size() < lim.max_paths && options.max_path_length == 0) {
      out.truncated = false;
    }
  } else {
    iterative_search_csr(*this, source, target, lim, out);
    if (out.paths.size() < lim.max_paths && options.max_path_length == 0) {
      out.truncated = false;
    }
  }
  if (obs::enabled()) detail::record_pair_metrics(out);
  return out;
}

}  // namespace upsim::pathdisc
