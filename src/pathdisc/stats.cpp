#include "pathdisc/stats.hpp"

#include <algorithm>

namespace upsim::pathdisc {

std::vector<std::string> PathSetStats::articulation_components() const {
  std::vector<std::string> out;
  for (const auto& [name, fraction] : participation) {
    if (fraction >= 1.0) out.push_back(name);
  }
  return out;
}

PathSetStats analyze_all(const graph::Graph& g,
                         const std::vector<PathSet>& sets) {
  PathSetStats stats;
  std::map<std::string, std::size_t> appearances;
  std::size_t total_length = 0;
  for (const PathSet& set : sets) {
    for (const Path& path : set.paths) {
      ++stats.path_count;
      total_length += path.size();
      ++stats.length_histogram[path.size()];
      if (stats.shortest == 0 || path.size() < stats.shortest) {
        stats.shortest = path.size();
      }
      stats.longest = std::max(stats.longest, path.size());
      for (const graph::VertexId v : path) {
        ++appearances[g.vertex(v).name];
      }
    }
  }
  if (stats.path_count > 0) {
    stats.mean_length = static_cast<double>(total_length) /
                        static_cast<double>(stats.path_count);
    for (const auto& [name, count] : appearances) {
      stats.participation.emplace(
          name, static_cast<double>(count) /
                    static_cast<double>(stats.path_count));
    }
  }
  return stats;
}

PathSetStats analyze(const graph::Graph& g, const PathSet& set) {
  return analyze_all(g, {set});
}

}  // namespace upsim::pathdisc
