#include "pathdisc/stats.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>

namespace upsim::pathdisc {

std::vector<std::string> PathSetStats::articulation_components() const {
  std::vector<std::string> out;
  for (const auto& [name, fraction] : participation) {
    if (fraction >= 1.0) out.push_back(name);
  }
  return out;
}

PathSetStats analyze_all(const graph::Graph& g,
                         const std::vector<PathSet>& sets) {
  PathSetStats stats;
  std::map<std::string, std::size_t> appearances;
  std::size_t total_length = 0;
  for (const PathSet& set : sets) {
    for (const Path& path : set.paths) {
      ++stats.path_count;
      total_length += path.size();
      ++stats.length_histogram[path.size()];
      if (stats.shortest == 0 || path.size() < stats.shortest) {
        stats.shortest = path.size();
      }
      stats.longest = std::max(stats.longest, path.size());
      for (const graph::VertexId v : path) {
        ++appearances[g.vertex(v).name];
      }
    }
  }
  if (stats.path_count > 0) {
    stats.mean_length = static_cast<double>(total_length) /
                        static_cast<double>(stats.path_count);
    for (const auto& [name, count] : appearances) {
      stats.participation.emplace(
          name, static_cast<double>(count) /
                    static_cast<double>(stats.path_count));
    }
  }
  return stats;
}

PathSetStats analyze(const graph::Graph& g, const PathSet& set) {
  return analyze_all(g, {set});
}

bool Connectivity::is_articulation(graph::VertexId v) const {
  return std::binary_search(articulation_points.begin(),
                            articulation_points.end(), v);
}

bool Connectivity::is_bridge(graph::EdgeId e) const {
  return std::binary_search(bridges.begin(), bridges.end(), e);
}

Connectivity connectivity(const graph::Graph& g) {
  using graph::EdgeId;
  using graph::VertexId;
  constexpr std::uint32_t kUnvisited =
      std::numeric_limits<std::uint32_t>::max();
  constexpr std::uint32_t kNoEdge = std::numeric_limits<std::uint32_t>::max();
  const std::size_t n = g.vertex_count();
  Connectivity out;
  out.component.assign(n, 0);
  std::vector<std::uint32_t> disc(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<char> articulation(n, 0);
  std::vector<char> bridge(g.edge_count(), 0);
  // Explicit-stack Tarjan lowlink DFS.  Each frame remembers the edge it was
  // entered through (not the parent vertex), so parallel edges correctly act
  // as back edges and never produce bridges.
  struct Frame {
    std::uint32_t v;
    std::uint32_t entry_edge;  ///< kNoEdge for the DFS root
    std::uint32_t tree_children = 0;
    std::size_t next = 0;  ///< next incident-edge position to scan
  };
  std::vector<Frame> stack;
  std::uint32_t timer = 0;
  std::uint32_t components = 0;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    const std::uint32_t comp_id = components++;
    disc[root] = low[root] = timer++;
    out.component[root] = comp_id;
    stack.push_back(Frame{root, kNoEdge});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const std::vector<EdgeId>& incident = g.incident_edges(VertexId{f.v});
      if (f.next < incident.size()) {
        const EdgeId e = incident[f.next++];
        if (graph::index(e) == f.entry_edge) continue;  // the tree edge itself
        const std::uint32_t w = graph::index(g.opposite(e, VertexId{f.v}));
        if (disc[w] == kUnvisited) {
          ++f.tree_children;
          disc[w] = low[w] = timer++;
          out.component[w] = comp_id;
          stack.push_back(Frame{w, graph::index(e)});
        } else {
          low[f.v] = std::min(low[f.v], disc[w]);
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low[parent.v] = std::min(low[parent.v], low[done.v]);
          if (low[done.v] > disc[parent.v]) bridge[done.entry_edge] = 1;
          if (parent.entry_edge != kNoEdge && low[done.v] >= disc[parent.v]) {
            articulation[parent.v] = 1;
          }
        } else if (done.tree_children >= 2) {
          articulation[done.v] = 1;  // DFS root splitting >= 2 subtrees
        }
      }
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (articulation[v] != 0) out.articulation_points.push_back(VertexId{v});
  }
  for (std::uint32_t e = 0; e < bridge.size(); ++e) {
    if (bridge[e] != 0) out.bridges.push_back(EdgeId{e});
  }
  return out;
}

bool separates(const graph::Graph& g, graph::VertexId cut, graph::VertexId s,
               graph::VertexId t) {
  if (s == t || cut == s || cut == t) return false;
  std::vector<char> seen(g.vertex_count(), 0);
  seen[graph::index(s)] = 1;
  seen[graph::index(cut)] = 1;  // pretend the cut vertex is gone
  std::deque<graph::VertexId> queue{s};
  while (!queue.empty()) {
    const graph::VertexId v = queue.front();
    queue.pop_front();
    for (const graph::EdgeId e : g.incident_edges(v)) {
      const graph::VertexId w = g.opposite(e, v);
      if (seen[graph::index(w)] != 0) continue;
      if (w == t) return false;
      seen[graph::index(w)] = 1;
      queue.push_back(w);
    }
  }
  return true;
}

bool separates_edge(const graph::Graph& g, graph::EdgeId cut,
                    graph::VertexId s, graph::VertexId t) {
  if (s == t) return false;
  std::vector<char> seen(g.vertex_count(), 0);
  seen[graph::index(s)] = 1;
  std::deque<graph::VertexId> queue{s};
  while (!queue.empty()) {
    const graph::VertexId v = queue.front();
    queue.pop_front();
    for (const graph::EdgeId e : g.incident_edges(v)) {
      if (e == cut) continue;
      const graph::VertexId w = g.opposite(e, v);
      if (seen[graph::index(w)] != 0) continue;
      if (w == t) return false;
      seen[graph::index(w)] = 1;
      queue.push_back(w);
    }
  }
  return true;
}

std::size_t edge_connectivity(const graph::Graph& g, graph::VertexId s,
                              graph::VertexId t, std::size_t cap) {
  using graph::EdgeId;
  if (s == t || cap == 0) return cap;
  const std::size_t n = g.vertex_count();
  const std::size_t m = g.edge_count();
  // Unit-capacity max-flow over the undirected graph: edge e becomes the
  // residual arc pair 2e (a->b) and 2e+1 (b->a), each starting at capacity
  // 1; pushing along one direction frees the other (arc ^ 1).
  std::vector<std::uint32_t> capacity(2 * m, 1);
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (std::uint32_t e = 0; e < m; ++e) {
    const graph::Edge& edge = g.edge(EdgeId{e});
    if (edge.a == edge.b) {  // self-loops never carry s-t flow
      capacity[2 * e] = capacity[2 * e + 1] = 0;
      continue;
    }
    adjacency[graph::index(edge.a)].push_back(2 * e);
    adjacency[graph::index(edge.b)].push_back(2 * e + 1);
  }
  const auto arc_head = [&g](std::uint32_t arc) {
    const graph::Edge& edge = g.edge(EdgeId{arc >> 1});
    return graph::index((arc & 1u) == 0 ? edge.b : edge.a);
  };
  const auto arc_tail = [&g](std::uint32_t arc) {
    const graph::Edge& edge = g.edge(EdgeId{arc >> 1});
    return graph::index((arc & 1u) == 0 ? edge.a : edge.b);
  };
  const std::uint32_t source = graph::index(s);
  const std::uint32_t target = graph::index(t);
  std::vector<std::uint32_t> parent_arc(n, 0);
  std::vector<char> seen(n, 0);
  std::size_t flow = 0;
  while (flow < cap) {
    std::fill(seen.begin(), seen.end(), 0);
    seen[source] = 1;
    std::deque<std::uint32_t> queue{source};
    bool reached = false;
    while (!queue.empty() && !reached) {
      const std::uint32_t v = queue.front();
      queue.pop_front();
      for (const std::uint32_t arc : adjacency[v]) {
        if (capacity[arc] == 0) continue;
        const std::uint32_t w = arc_head(arc);
        if (seen[w] != 0) continue;
        seen[w] = 1;
        parent_arc[w] = arc;
        if (w == target) {
          reached = true;
          break;
        }
        queue.push_back(w);
      }
    }
    if (!reached) break;
    for (std::uint32_t v = target; v != source;) {
      const std::uint32_t arc = parent_arc[v];
      --capacity[arc];
      ++capacity[arc ^ 1u];
      v = arc_tail(arc);
    }
    ++flow;
  }
  return flow;
}

}  // namespace upsim::pathdisc
