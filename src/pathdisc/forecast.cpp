#include "pathdisc/forecast.hpp"

#include <vector>

namespace upsim::pathdisc {

using graph::VertexId;
using graph::index;
using detail::Limits;
using detail::limits_of;

namespace {

/// Count-only port of csr.cpp's iterative_search_csr: `depth` stands in for
/// path.size(), `out.paths` for the result list.  Control flow — and with it
/// every truncation decision and nodes_expanded increment — is unchanged.
void iterative_forecast(const CsrView& view, VertexId source, VertexId target,
                        const Limits& lim, PathForecast& out) {
  struct Frame {
    std::uint32_t v;
    std::uint32_t next_arc;
  };
  std::vector<char> on_path(view.vertex_count(), 0);
  std::size_t depth = 1;  // the source is on the path
  std::vector<Frame> stack;
  stack.reserve(64);
  stack.push_back(Frame{index(source), 0});
  on_path[index(source)] = 1;
  ++out.nodes_expanded;
  if (source == target) {
    out.paths = 1;
    if (out.paths >= lim.max_paths) out.would_truncate = true;
    return;
  }

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const std::span<const CsrArc> incident = view.arcs(frame.v);
    const bool depth_cut = depth >= lim.max_len;
    if (depth_cut && frame.next_arc < incident.size()) {
      out.would_truncate = true;
    }
    if (depth_cut || frame.next_arc >= incident.size()) {
      on_path[frame.v] = 0;
      --depth;
      stack.pop_back();
      continue;
    }
    const CsrArc arc = incident[frame.next_arc++];
    if (on_path[arc.to] != 0) continue;
    ++out.nodes_expanded;
    if (VertexId{arc.to} == target) {
      ++out.paths;
      if (out.paths >= lim.max_paths) {
        out.would_truncate = true;
        return;
      }
      continue;
    }
    on_path[arc.to] = 1;
    ++depth;
    stack.push_back(Frame{arc.to, 0});
  }
}

/// Count-only port of csr.cpp's RecursiveCsrSearch, with the same recursion
/// structure so the per-algorithm truncation quirks carry over.
class RecursiveForecast {
 public:
  RecursiveForecast(const CsrView& view, VertexId target, const Limits& lim,
                    PathForecast& out)
      : view_(view), target_(index(target)), lim_(lim), out_(out),
        on_path_(view.vertex_count(), 0) {}

  void run(VertexId source) {
    depth_ = 1;
    on_path_[index(source)] = 1;
    visit(index(source));
  }

 private:
  void visit(std::uint32_t v) {
    ++out_.nodes_expanded;
    if (v == target_) {
      ++out_.paths;
      if (out_.paths >= lim_.max_paths) out_.would_truncate = true;
      return;
    }
    if (depth_ >= lim_.max_len) {
      out_.would_truncate = true;  // a longer path may have existed
      return;
    }
    for (const CsrArc arc : view_.arcs(v)) {
      if (out_.would_truncate && out_.paths >= lim_.max_paths) return;
      if (on_path_[arc.to] != 0) continue;
      on_path_[arc.to] = 1;
      ++depth_;
      visit(arc.to);
      --depth_;
      on_path_[arc.to] = 0;
    }
  }

  const CsrView& view_;
  std::uint32_t target_;
  Limits lim_;
  PathForecast& out_;
  std::vector<char> on_path_;
  std::size_t depth_ = 0;
};

}  // namespace

PathForecast forecast(const CsrView& view, VertexId source, VertexId target,
                      const Options& options) {
  PathForecast out;
  if (index(source) >= view.vertex_count() ||
      index(target) >= view.vertex_count()) {
    return out;  // unknown id: the empty answer, never truncated
  }
  const Limits lim = limits_of(options);
  if (options.algorithm == Algorithm::RecursiveDfs) {
    if (source == target) {
      // discover()'s recursive source==target shortcut returns before the
      // truncation logic runs, so it never sets the flag.
      out.nodes_expanded = 1;
      out.paths = 1;
      return out;
    }
    RecursiveForecast search(view, target, lim, out);
    search.run(source);
    if (out.paths < lim.max_paths && options.max_path_length == 0) {
      out.would_truncate = false;
    }
  } else {
    iterative_forecast(view, source, target, lim, out);
    if (out.paths < lim.max_paths && options.max_path_length == 0) {
      out.would_truncate = false;
    }
  }
  return out;
}

}  // namespace upsim::pathdisc
