// Sharded, striped-lock memo of path discovery results.
//
// Table I of the paper shows why this exists: all five atomic services of
// the printing composite route through the same (p2, printS) provider-side
// pairs, and every user perspective of a shared infrastructure repeats
// pairs with its neighbours.  UpsimGenerator re-discovers each of them from
// scratch; the engine discovers a (requester, provider, options, epoch)
// key once and hands out the result as shared_ptr<const PathSet>.
//
// Concurrency model:
//   - The map is striped over `shards` independently locked hash maps, so
//     concurrent lookups of different pairs never convoy on one mutex.
//   - get_or_compute releases the shard lock *during* discovery; two
//     threads racing on the same cold key may both compute, and the first
//     insert wins (both callers get the winning entry).  Wasted duplicate
//     work on a race is bounded by one discovery; holding the lock across
//     a factorial-worst-case DFS would stall every other key in the shard.
//   - Entries are immutable once inserted (const PathSet behind a
//     shared_ptr), so readers share them across threads without copying.
//
// Invalidation is epoch-based: the key embeds the topology epoch, so a
// bumped epoch makes every old entry unreachable instantly; evict_stale()
// then reclaims the memory.  When obs::enabled(), hits/misses/evictions
// mirror into the global registry as engine.cache.* for traces; the local
// atomic counters in stats() work regardless (benches keep obs off).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "pathdisc/path_discovery.hpp"

namespace upsim::engine {

/// Identity of one memoised discovery: endpoints by vertex id, the full
/// discovery options (operator== / hash_value cover every field, so option
/// changes can never alias) and the topology epoch the ids refer to.
struct PathQueryKey {
  graph::VertexId source{};
  graph::VertexId target{};
  pathdisc::Options options;
  std::uint64_t epoch = 0;

  [[nodiscard]] friend bool operator==(const PathQueryKey&,
                                       const PathQueryKey&) noexcept = default;
};

struct PathQueryKeyHash {
  [[nodiscard]] std::size_t operator()(const PathQueryKey& k) const noexcept;
};

/// Monotone counters since construction (clear() does not reset them).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;  ///< live entries right now

  [[nodiscard]] double hit_rate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class PathSetCache {
 public:
  /// `shards` is clamped to >= 1; 16 matches obs::Registry and comfortably
  /// exceeds the pool widths upsim runs with.
  explicit PathSetCache(std::size_t shards = 16);

  PathSetCache(const PathSetCache&) = delete;
  PathSetCache& operator=(const PathSetCache&) = delete;

  /// Returns the cached set for `key`, or runs `compute` and caches its
  /// result.  `compute` runs without any cache lock held (see file header
  /// for the duplicate-compute race contract).  When `missed` is non-null
  /// it is set to whether *this caller* took the compute path — used by the
  /// engine to register reverse-index dependencies exactly once per
  /// discovery (racing duplicate computes may both report a miss; the
  /// registration is idempotent).
  [[nodiscard]] std::shared_ptr<const pathdisc::PathSet> get_or_compute(
      const PathQueryKey& key,
      const std::function<pathdisc::PathSet()>& compute,
      bool* missed = nullptr);

  /// Lookup without compute; nullptr on miss.  Does not count into stats.
  [[nodiscard]] std::shared_ptr<const pathdisc::PathSet> find(
      const PathQueryKey& key) const;

  /// Drops every entry whose key epoch differs from `current_epoch`;
  /// returns how many were evicted.
  std::size_t evict_stale(std::uint64_t current_epoch);

  /// Drops exactly the given keys (fine-grained invalidation via the
  /// reverse dependency index); absent keys are ignored.  Returns how many
  /// entries were actually evicted.
  std::size_t evict_keys(const std::vector<PathQueryKey>& keys);

  /// Drops everything (counted as evictions).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] CacheStats stats() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<PathQueryKey,
                       std::shared_ptr<const pathdisc::PathSet>,
                       PathQueryKeyHash>
        entries;
  };

  [[nodiscard]] Shard& shard_for(const PathQueryKey& key) const noexcept;
  void note_evictions(std::size_t n);

  // unique_ptr per shard: Shard holds a mutex and must not move when the
  // vector is built.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace upsim::engine
