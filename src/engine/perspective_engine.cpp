#include "engine/perspective_engine.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <unordered_set>
#include <utility>

#include "lint/analyzer.hpp"
#include "lint/render.hpp"
#include "obs/obs.hpp"
#include "transform/mapping_importer.hpp"
#include "transform/uml_importer.hpp"
#include "transform/upsim_emitter.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace upsim::engine {

namespace {

/// Pair keys as store_paths writes them; the lexicographic order of these
/// keys is the order load_paths reads a run back in (model-space children
/// are name-ordered), and the engine must merge in exactly that order to
/// stay bit-compatible with UpsimGenerator's Step 8.
std::string pair_key(std::size_t i, const mapping::ServiceMappingPair& pair) {
  return "pair" + std::to_string(i) + "_" + pair.atomic_service;
}

}  // namespace

PerspectiveEngine::PerspectiveEngine(const uml::ObjectModel& infrastructure,
                                     EngineOptions options)
    : infrastructure_(&infrastructure),
      options_(options),
      cache_(options.cache_shards),
      rindex_(options.cache_shards) {
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<util::ThreadPool>(options_.threads);
    pool_ = owned_pool_.get();
  }
  rebuild_locked(/*bump_epoch=*/false);
}

void PerspectiveEngine::rebuild_locked(bool bump_epoch) {
  obs::ScopedSpan span("engine.rebuild", "engine");
  const auto problems = infrastructure_->validate();
  if (!problems.empty()) {
    throw ModelError("PerspectiveEngine: invalid infrastructure: " +
                     util::join(problems, "; "));
  }
  if (options_.lint_model) {
    // Pre-flight static analysis (src/lint): reject a bundle whose queries
    // could only fail or mislead, before any query runs.  Warnings don't
    // block serving; analyze() counts them on the obs registry.
    lint::Input input;
    input.objects = infrastructure_;
    input.mtbf_attribute = options_.projection.mtbf_attribute;
    input.mttr_attribute = options_.projection.mttr_attribute;
    input.require_dependability =
        options_.projection.require_dependability_attributes;
    const lint::Report report = lint::analyze(input);
    if (report.has_errors()) {
      throw ModelError("PerspectiveEngine: model lint failed:\n" +
                       lint::render_text(report));
    }
  }
  // A topology change is the expensive class by design (Sec. V-A3): the
  // whole space is re-imported, Step 5 style.  Recorded runs die with it.
  space_ = vpm::ModelSpace();
  transform::import_class_model(space_, infrastructure_->class_model());
  transform::import_object_model(space_, *infrastructure_);
  graph_ = transform::project_from_space(space_, *infrastructure_,
                                         options_.projection);
  patch_overrides_locked(graph_);
  // Compile the discovery hot-path projection once per structural rebuild;
  // queries share it read-only under the shared lock.  Attribute-only
  // re-projections (notify_properties_changed) never reach this function,
  // so the view survives them — structure is all it holds.
  csr_ = options_.use_csr ? pathdisc::CsrView(graph_) : pathdisc::CsrView();
  if (bump_epoch) {
    const std::uint64_t now =
        epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    cache_.evict_stale(now);
    rindex_.clear();
    inv_full_flushes_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      obs::Registry::global().gauge("engine.epoch").set(
          static_cast<double>(now));
      obs::Registry::global().counter("engine.invalidation.full_flushes")
          .add(1);
    }
  }
}

void PerspectiveEngine::patch_overrides_locked(graph::Graph& g) const {
  for (const auto& [element, attrs] : overrides_) {
    graph::AttributeMap* target = nullptr;
    if (const auto v = g.find_vertex(element)) {
      target = &g.vertex(*v).attributes;
    } else if (const auto e = g.find_edge(element)) {
      target = &g.edge(*e).attributes;
    } else {
      continue;  // element not part of this (sub)graph
    }
    for (const auto& [attribute, value] : attrs) {
      (*target)[attribute] = value;
    }
  }
}

void PerspectiveEngine::require_elements_locked(
    const std::vector<std::string>& elements) const {
  for (const std::string& element : elements) {
    if (!graph_.find_vertex(element) && !graph_.find_edge(element)) {
      throw NotFoundError(
          "PerspectiveEngine: unknown element '" + element +
          "' (neither an instance nor a link of the infrastructure)");
    }
  }
}

bool PerspectiveEngine::path_alive_locked(const pathdisc::Path& path) const {
  for (const graph::VertexId v : path) {
    if (down_.contains(graph_.vertex(v).name)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    // A hop survives while any parallel link between its endpoints is up
    // (the same reachability semantics depend::simulate's service_up BFS
    // applies per edge).
    bool usable = false;
    for (const graph::EdgeId e : graph_.incident_edges(path[i])) {
      if (graph_.opposite(e, path[i]) != path[i + 1]) continue;
      if (!down_.contains(graph_.edge(e).name)) {
        usable = true;
        break;
      }
    }
    if (!usable) return false;
  }
  return true;
}

std::shared_ptr<const pathdisc::PathSet> PerspectiveEngine::filter_down_locked(
    const std::shared_ptr<const pathdisc::PathSet>& set) const {
  std::size_t alive = 0;
  for (const auto& path : set->paths) {
    if (path_alive_locked(path)) ++alive;
  }
  if (alive == set->paths.size()) return set;
  auto filtered = std::make_shared<pathdisc::PathSet>();
  filtered->source = set->source;
  filtered->target = set->target;
  filtered->nodes_expanded = set->nodes_expanded;
  filtered->truncated = set->truncated;
  filtered->paths.reserve(alive);
  for (const auto& path : set->paths) {
    if (path_alive_locked(path)) filtered->paths.push_back(path);
  }
  return filtered;
}

void PerspectiveEngine::collect_dependency_elements_locked(
    const pathdisc::PathSet& set, std::set<std::string>& out) const {
  for (const auto& path : set.paths) {
    for (const graph::VertexId v : path) {
      out.insert(graph_.vertex(v).name);
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      for (const graph::EdgeId e : graph_.incident_edges(path[i])) {
        if (graph_.opposite(e, path[i]) == path[i + 1]) {
          out.insert(graph_.edge(e).name);
        }
      }
    }
  }
}

void PerspectiveEngine::note_event_locked(const InvalidationReport& report) {
  inv_events_.fetch_add(1, std::memory_order_relaxed);
  inv_affected_.fetch_add(report.affected_keys, std::memory_order_relaxed);
  inv_evicted_.fetch_add(report.evicted_keys, std::memory_order_relaxed);
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    registry.counter("engine.invalidation.events").add(1);
    if (report.affected_keys != 0) {
      registry.counter("engine.invalidation.affected_keys")
          .add(report.affected_keys);
    }
    if (report.evicted_keys != 0) {
      registry.counter("engine.invalidation.evictions")
          .add(report.evicted_keys);
    }
    registry.histogram("engine.invalidation.affected_per_event")
        .record(static_cast<double>(report.affected_keys));
    registry.gauge("engine.reverse_index.elements")
        .set(static_cast<double>(rindex_.element_count()));
    registry.gauge("engine.reverse_index.links")
        .set(static_cast<double>(rindex_.link_count()));
    registry.gauge("engine.overlay.down")
        .set(static_cast<double>(down_.size()));
  }
}

core::UpsimResult PerspectiveEngine::query(
    const service::CompositeService& composite,
    const mapping::ServiceMapping& mapping, std::string perspective_name) {
  return query(composite, mapping, std::move(perspective_name), nullptr);
}

core::UpsimResult PerspectiveEngine::query(
    const service::CompositeService& composite,
    const mapping::ServiceMapping& mapping, std::string perspective_name,
    QueryInfo* info) {
  std::shared_lock model_lock(model_mutex_);
  obs::ScopedSpan query_span("engine.query", "engine");
  if (obs::enabled()) {
    obs::Registry::global().counter("engine.queries").add(1);
  }

  const auto problems = mapping.validate(*infrastructure_, &composite);
  if (!problems.empty()) {
    throw ModelError("PerspectiveEngine: invalid mapping for '" +
                     composite.name() + "': " + util::join(problems, "; "));
  }

  util::Stopwatch watch;
  core::StepTimings timings;

  // Step 7 through the cache.  Everything read here — graph_, the
  // infrastructure, cached sets — is immutable under the shared lock.
  const std::vector<mapping::ServiceMappingPair> pairs =
      mapping.pairs_for(composite);
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const bool overlay_active = !down_.empty();
  std::vector<std::shared_ptr<const pathdisc::PathSet>> sets(pairs.size());
  std::set<std::string> dependency_elements;
  {
    obs::ScopedSpan span("engine.step7_discovery", "engine");
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const PathQueryKey key{graph_.vertex_by_name(pairs[i].requester),
                             graph_.vertex_by_name(pairs[i].provider),
                             options_.discovery, epoch};
      bool missed = false;
      const auto baseline = cache_.get_or_compute(
          key,
          [&] {
            // Cold discovery runs on the CSR projection; the generic-graph
            // call is the differential oracle (use_csr = false).  Results
            // are byte-identical by contract, so cache entries computed by
            // either kernel are interchangeable.
            return options_.use_csr
                       ? csr_.discover(key.source, key.target,
                                       options_.discovery)
                       : pathdisc::discover(graph_, key.source, key.target,
                                            options_.discovery);
          },
          &missed);
      if (missed || info != nullptr) {
        std::set<std::string> pair_elements;
        collect_dependency_elements_locked(*baseline, pair_elements);
        if (missed) {
          rindex_.add(key, {pair_elements.begin(), pair_elements.end()});
        }
        if (info != nullptr) {
          dependency_elements.insert(pair_elements.begin(),
                                     pair_elements.end());
        }
      }
      if (baseline->empty()) {
        throw ModelError("PerspectiveEngine: no path between requester '" +
                         pairs[i].requester + "' and provider '" +
                         pairs[i].provider + "' of atomic service '" +
                         pairs[i].atomic_service + "'");
      }
      sets[i] = overlay_active ? filter_down_locked(baseline) : baseline;
      if (sets[i]->empty()) {
        throw ModelError("PerspectiveEngine: no operational path between "
                         "requester '" +
                         pairs[i].requester + "' and provider '" +
                         pairs[i].provider + "' of atomic service '" +
                         pairs[i].atomic_service + "': all " +
                         std::to_string(baseline->paths.size()) +
                         " discovered paths traverse failed elements");
      }
    }
  }
  if (info != nullptr) {
    info->elements.assign(dependency_elements.begin(),
                          dependency_elements.end());
  }
  timings.discovery_ms = watch.lap_millis();

  // Step 8.  The generator merges in load_paths order == lexicographic
  // pair-key order, which differs from execution order once a run has ten
  // or more pairs ("pair10_*" sorts before "pair2_*").
  auto [upsim, upsim_graph, named_paths] = [&] {
    obs::ScopedSpan span("engine.step8_merge_emit", "engine");
    std::vector<std::vector<std::vector<std::string>>> named(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      named[i].reserve(sets[i]->paths.size());
      for (const auto& path : sets[i]->paths) {
        named[i].push_back(pathdisc::path_names(graph_, path));
      }
    }
    std::vector<std::size_t> order(pairs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return pair_key(a, pairs[a]) < pair_key(b, pairs[b]);
    });
    std::unordered_set<std::string> seen;
    std::vector<std::string> kept;
    for (const std::size_t i : order) {
      for (const auto& path : named[i]) {
        for (const std::string& name : path) {
          if (seen.insert(name).second) kept.push_back(name);
        }
      }
    }
    uml::ObjectModel emitted =
        transform::emit_upsim(*infrastructure_, perspective_name, kept);
    graph::Graph projected = transform::project(emitted, options_.projection);
    if (!overrides_.empty()) patch_overrides_locked(projected);
    return std::tuple{std::move(emitted), std::move(projected),
                      std::move(named)};
  }();
  timings.merge_emit_ms = watch.lap_millis();

  // The only serialized section: insert the run into the model space the
  // way UpsimGenerator's Steps 6/7 would (replacing any previous run of
  // this perspective name).
  if (options_.record_in_space) {
    obs::ScopedSpan span("engine.record_run", "engine");
    std::lock_guard space_lock(space_mutex_);
    transform::remove_mapping(space_, perspective_name);
    transform::clear_paths(space_, perspective_name);
    transform::import_mapping(space_, perspective_name, mapping,
                              *infrastructure_);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      transform::store_paths(space_, perspective_name, pair_key(i, pairs[i]),
                             graph_, *sets[i], *infrastructure_);
    }
  }
  timings.import_mapping_ms = watch.lap_millis();

  core::UpsimResult result{std::move(upsim),
                           std::move(upsim_graph),
                           pairs,
                           {},
                           std::move(named_paths),
                           timings};
  result.path_sets.reserve(sets.size());
  for (const auto& set : sets) result.path_sets.push_back(*set);
  return result;
}

std::vector<core::UpsimResult> PerspectiveEngine::query_batch(
    const service::CompositeService& composite,
    const std::vector<mapping::ServiceMapping>& mappings,
    std::string_view name_prefix) {
  obs::ScopedSpan span("engine.query_batch", "engine");
  std::vector<std::optional<core::UpsimResult>> slots(mappings.size());
  pool_->parallel_for(mappings.size(), [&](std::size_t i) {
    slots[i] = query(composite, mappings[i],
                     std::string(name_prefix) + std::to_string(i));
  });
  std::vector<core::UpsimResult> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

core::AvailabilityReport PerspectiveEngine::query_availability(
    const service::CompositeService& composite,
    const mapping::ServiceMapping& mapping, std::string perspective_name,
    const core::AnalysisOptions& analysis) {
  const core::UpsimResult result =
      query(composite, mapping, std::move(perspective_name));
  obs::ScopedSpan span("engine.availability", "engine");
  return core::analyze_availability(result, analysis);
}

void PerspectiveEngine::notify_topology_changed() {
  with_topology_write(nullptr);
}

void PerspectiveEngine::with_topology_write(
    const std::function<void()>& mutate) {
  std::unique_lock model_lock(model_mutex_);
  if (mutate) mutate();
  rebuild_locked(/*bump_epoch=*/true);
}

void PerspectiveEngine::notify_properties_changed() {
  std::unique_lock model_lock(model_mutex_);
  obs::ScopedSpan span("engine.reproject", "engine");
  // The model-space image stores structure only; property values flow in
  // at projection time from the class model.  So this class re-projects
  // without re-importing — recorded runs, cache and epoch all survive
  // (vertex ids are stable because the structure did not change).
  graph_ = transform::project_from_space(space_, *infrastructure_,
                                         options_.projection);
  patch_overrides_locked(graph_);
}

void PerspectiveEngine::notify_mapping_changed(
    std::string_view perspective_name) {
  std::shared_lock model_lock(model_mutex_);
  std::lock_guard space_lock(space_mutex_);
  transform::remove_mapping(space_, perspective_name);
  transform::clear_paths(space_, perspective_name);
}

InvalidationReport PerspectiveEngine::set_element_state(
    const std::vector<std::string>& elements, bool up) {
  std::unique_lock model_lock(model_mutex_);
  require_elements_locked(elements);
  InvalidationReport report;
  std::vector<std::string> toggled;
  for (const std::string& element : elements) {
    const bool changed =
        up ? down_.erase(element) > 0 : down_.insert(element).second;
    if (changed) toggled.push_back(element);
  }
  // Baseline discoveries stay valid across fail AND repair (queries filter
  // at serve time), so nothing is evicted; the index names the pairs whose
  // served answers just changed.
  report.affected_keys = rindex_.lookup(toggled).size();
  note_event_locked(report);
  return report;
}

bool PerspectiveEngine::element_down(std::string_view name) const {
  std::shared_lock model_lock(model_mutex_);
  return down_.contains(std::string(name));
}

std::vector<std::string> PerspectiveEngine::down_elements() const {
  std::shared_lock model_lock(model_mutex_);
  std::vector<std::string> out(down_.begin(), down_.end());
  std::sort(out.begin(), out.end());
  return out;
}

InvalidationReport PerspectiveEngine::set_property_override(
    const std::string& element, const std::string& attribute, double value) {
  std::unique_lock model_lock(model_mutex_);
  require_elements_locked({element});
  overrides_[element][attribute] = value;
  // Patch the live graph in place; emitted UPSIM graphs are patched per
  // query, and re-projections re-apply the override map.
  if (const auto v = graph_.find_vertex(element)) {
    graph_.vertex(*v).attributes[attribute] = value;
  } else if (const auto e = graph_.find_edge(element)) {
    graph_.edge(*e).attributes[attribute] = value;
  }
  InvalidationReport report;
  report.affected_keys = rindex_.lookup({element}).size();
  note_event_locked(report);
  return report;
}

InvalidationReport PerspectiveEngine::notify_topology_changed(
    const std::vector<std::string>& affected) {
  return with_topology_write(nullptr, affected);
}

InvalidationReport PerspectiveEngine::with_topology_write(
    const std::function<void()>& mutate,
    const std::vector<std::string>& affected) {
  std::unique_lock model_lock(model_mutex_);
  if (mutate) mutate();
  rebuild_locked(/*bump_epoch=*/false);
  // The epoch holds, so surviving keys keep hitting; only the keys routed
  // through the affected elements are retired (and will re-register on
  // their next discovery).  Sound for non-additive changes only — see the
  // class contract.
  InvalidationReport report;
  const std::vector<PathQueryKey> keys = rindex_.take(affected);
  report.affected_keys = keys.size();
  report.evicted_keys = cache_.evict_keys(keys);
  note_event_locked(report);
  return report;
}

InvalidationReport PerspectiveEngine::notify_properties_changed(
    const std::vector<std::string>& affected) {
  std::unique_lock model_lock(model_mutex_);
  obs::ScopedSpan span("engine.reproject", "engine");
  graph_ = transform::project_from_space(space_, *infrastructure_,
                                         options_.projection);
  patch_overrides_locked(graph_);
  InvalidationReport report;
  report.affected_keys = rindex_.lookup(affected).size();
  note_event_locked(report);
  return report;
}

InvalidationStats PerspectiveEngine::invalidation_stats() const {
  InvalidationStats stats;
  stats.events = inv_events_.load(std::memory_order_relaxed);
  stats.affected_keys = inv_affected_.load(std::memory_order_relaxed);
  stats.evicted_keys = inv_evicted_.load(std::memory_order_relaxed);
  stats.full_flushes = inv_full_flushes_.load(std::memory_order_relaxed);
  stats.index_elements = rindex_.element_count();
  stats.index_links = rindex_.link_count();
  std::shared_lock model_lock(model_mutex_);
  stats.down_elements = down_.size();
  stats.property_overrides = overrides_.size();
  return stats;
}

}  // namespace upsim::engine
