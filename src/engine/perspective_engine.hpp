// PerspectiveEngine — concurrent, cache-coherent batch serving of UPSIM
// queries (the Sec. V-A3 dynamicity argument at serving scale).
//
// UpsimGenerator runs perspectives sequentially because Steps 6-8 all pass
// through the shared VPM model space, and it re-discovers every
// (requester, provider) pair from scratch even though perspectives of one
// infrastructure repeat pairs heavily (Table I: all five printing pairs
// share the provider side).  The engine restructures the run so that the
// model space stops being the bottleneck:
//
//   - Step 7 goes through a sharded PathSetCache keyed on
//     (requester id, provider id, discovery options, topology epoch), so a
//     pair shared by any number of perspectives is discovered once.
//   - Steps 7/8 (discovery, merge, emit, project) read only immutable
//     state — the graph projection and the infrastructure model — and run
//     per-perspective on util::ThreadPool workers.  Only the final
//     insertion of the run into the model space (Step 6 + path storage) is
//     serialized, and it can be switched off entirely for pure serving.
//   - Answers are bit-compatible with UpsimGenerator::generate — the
//     differential tests in tests/test_engine.cpp hold the engine to that
//     for cold, warm, post-invalidation and concurrent queries alike.
//
// Change classes (Sec. V-A3), served incrementally:
//   1. topology change        -> notify_topology_changed(): re-import,
//                                re-project, bump the epoch (all cached
//                                path sets become unreachable, then get
//                                evicted).  with_topology_write() does the
//                                caller's model mutation and the rebuild
//                                atomically w.r.t. in-flight queries.
//   2. property-value change  -> notify_properties_changed(): re-project
//                                attributes; paths depend on structure
//                                only, so the cache survives.
//   3. service change         -> no engine state involved; pass the new
//                                composite to the next query.
//   4. mapping change         -> nothing to invalidate: mappings are query
//                                *inputs*.  notify_mapping_changed() drops
//                                a recorded run from the model space.
//
// Thread safety: query()/query_batch()/query_availability() may be called
// from any number of threads; the notify_*/with_topology_write() mutators
// exclude them via a shared_mutex.  The infrastructure model must only be
// mutated inside with_topology_write() once queries are in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis.hpp"
#include "core/upsim_generator.hpp"
#include "engine/path_cache.hpp"
#include "graph/graph.hpp"
#include "mapping/mapping.hpp"
#include "pathdisc/path_discovery.hpp"
#include "service/service.hpp"
#include "transform/projection.hpp"
#include "uml/object_model.hpp"
#include "util/thread_pool.hpp"
#include "vpm/model_space.hpp"

namespace upsim::engine {

struct EngineOptions {
  pathdisc::Options discovery;
  transform::ProjectionOptions projection;
  /// Pool for query_batch fan-out.  Null: the engine owns a pool of
  /// `threads` workers (0 = hardware concurrency).  Queries themselves
  /// never submit nested pool tasks, so an external pool may be shared.
  util::ThreadPool* pool = nullptr;
  std::size_t threads = 0;
  std::size_t cache_shards = 16;
  /// Mirror UpsimGenerator and insert each served run into the model space
  /// (mapping import + stored paths, replacing a previous run of the same
  /// name).  This is the only serialized section of a query; switch it off
  /// when serving throughput matters more than a queryable space.
  bool record_in_space = true;
  /// Run the lint analyzer over the infrastructure before accepting it
  /// (constructor and every topology rebuild): lint errors — dangling
  /// values, non-positive MTBF/MTTR, ... — throw ModelError up front
  /// instead of surfacing as misleading empty answers at query time;
  /// warnings are counted on the obs registry (lint.warnings).
  bool lint_model = true;
};

class PerspectiveEngine {
 public:
  /// Imports `infrastructure` (Step 5) into a private model space and
  /// projects the discovery graph.  The infrastructure and its class model
  /// must outlive the engine; an external pool must too.
  explicit PerspectiveEngine(const uml::ObjectModel& infrastructure,
                             EngineOptions options = {});

  PerspectiveEngine(const PerspectiveEngine&) = delete;
  PerspectiveEngine& operator=(const PerspectiveEngine&) = delete;

  /// Serves one perspective: Steps 6-8 with cached discovery.  Answers are
  /// structurally identical to UpsimGenerator::generate on the same
  /// inputs.  Thread-safe.
  [[nodiscard]] core::UpsimResult query(
      const service::CompositeService& composite,
      const mapping::ServiceMapping& mapping, std::string perspective_name);

  /// Serves one perspective per mapping concurrently on the pool; results
  /// are in input order, named `<name_prefix><index>`.  Throws the first
  /// failure after all tasks finished.
  [[nodiscard]] std::vector<core::UpsimResult> query_batch(
      const service::CompositeService& composite,
      const std::vector<mapping::ServiceMapping>& mappings,
      std::string_view name_prefix);

  /// query() followed by the full dependability analysis on the result.
  [[nodiscard]] core::AvailabilityReport query_availability(
      const service::CompositeService& composite,
      const mapping::ServiceMapping& mapping, std::string perspective_name,
      const core::AnalysisOptions& analysis = {});

  // -- change classes (Sec. V-A3) -------------------------------------------
  /// Change class 1: the infrastructure's instances/links changed.
  /// Re-imports, re-projects, bumps the epoch and evicts stale cache
  /// entries.  Recorded runs die with the old space (a topology change
  /// requires re-import — the expensive class, by design).
  void notify_topology_changed();

  /// Runs `mutate` (typically mutating the caller-owned infrastructure
  /// model) with all queries excluded, then does notify_topology_changed's
  /// rebuild before queries resume — one atomic topology transition.
  void with_topology_write(const std::function<void()>& mutate);

  /// Change class 2: dependability/stereotype values changed but structure
  /// did not.  Re-projects so new attribute values flow into analysis;
  /// cached path sets (structure-only) stay valid and the epoch holds.
  void notify_properties_changed();

  /// Change class 4 bookkeeping: forget the recorded run of one
  /// perspective (no-op when record_in_space is off or the name unknown).
  void notify_mapping_changed(std::string_view perspective_name);

  // -- introspection --------------------------------------------------------
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] util::ThreadPool& pool() noexcept { return *pool_; }
  [[nodiscard]] const uml::ObjectModel& infrastructure() const noexcept {
    return *infrastructure_;
  }

 private:
  /// (Re)builds space_ + graph_ from the infrastructure.  Caller holds the
  /// unique lock (or is the constructor).
  void rebuild_locked(bool bump_epoch);

  const uml::ObjectModel* infrastructure_;
  EngineOptions options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_;

  /// Readers (queries) share; topology/property rebuilds are exclusive.
  mutable std::shared_mutex model_mutex_;
  vpm::ModelSpace space_;
  graph::Graph graph_;
  /// Serializes model-space run insertion among concurrent queries (taken
  /// with model_mutex_ held shared; rebuilds exclude both).
  std::mutex space_mutex_;
  std::atomic<std::uint64_t> epoch_{0};
  PathSetCache cache_;
};

}  // namespace upsim::engine
