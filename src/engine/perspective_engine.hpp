// PerspectiveEngine — concurrent, cache-coherent batch serving of UPSIM
// queries (the Sec. V-A3 dynamicity argument at serving scale).
//
// UpsimGenerator runs perspectives sequentially because Steps 6-8 all pass
// through the shared VPM model space, and it re-discovers every
// (requester, provider) pair from scratch even though perspectives of one
// infrastructure repeat pairs heavily (Table I: all five printing pairs
// share the provider side).  The engine restructures the run so that the
// model space stops being the bottleneck:
//
//   - Step 7 goes through a sharded PathSetCache keyed on
//     (requester id, provider id, discovery options, topology epoch), so a
//     pair shared by any number of perspectives is discovered once.  Cold
//     discoveries run on a flat CSR projection of the topology
//     (pathdisc::CsrView, compiled once per rebuild and shared read-only
//     by every query thread); the generic-graph discover() remains
//     reachable via EngineOptions::use_csr = false as the differential
//     oracle — both produce byte-identical PathSets, which
//     tests/test_pathdisc_csr.cpp enforces across randomized topologies.
//   - Steps 7/8 (discovery, merge, emit, project) read only immutable
//     state — the graph projection and the infrastructure model — and run
//     per-perspective on util::ThreadPool workers.  Only the final
//     insertion of the run into the model space (Step 6 + path storage) is
//     serialized, and it can be switched off entirely for pure serving.
//   - Answers are bit-compatible with UpsimGenerator::generate — the
//     differential tests in tests/test_engine.cpp hold the engine to that
//     for cold, warm, post-invalidation and concurrent queries alike.
//
// Change classes (Sec. V-A3), served incrementally:
//   1. topology change        -> notify_topology_changed(): re-import,
//                                re-project, bump the epoch (all cached
//                                path sets become unreachable, then get
//                                evicted).  with_topology_write() does the
//                                caller's model mutation and the rebuild
//                                atomically w.r.t. in-flight queries.
//   2. property-value change  -> notify_properties_changed(): re-project
//                                attributes; paths depend on structure
//                                only, so the cache survives.
//   3. service change         -> no engine state involved; pass the new
//                                composite to the next query.
//   4. mapping change         -> nothing to invalidate: mappings are query
//                                *inputs*.  notify_mapping_changed() drops
//                                a recorded run from the model space.
//
// Fine-grained invalidation (the scenario subsystem's substrate).  The
// epoch flush above treats every event as global; a ReverseDependencyIndex
// (element name -> dependent cache keys, built as path sets are computed)
// lets events that *name* their affected elements retire only what those
// elements can actually influence:
//
//   - set_element_state(elements, up=false/true) models operational
//     failure and repair as a *down overlay*: discovery always runs on the
//     full baseline topology, queries filter out paths crossing a down
//     element before merge/emit.  Cached baseline path sets therefore stay
//     valid across fail AND repair — zero path-cache evictions — and the
//     reverse index answers exactly which pairs' served answers changed
//     (a pair changes iff a baseline path contains the toggled element,
//     in both directions).
//   - set_property_override(element, attribute, value) patches one
//     element's dependability attributes (the observation-feedback loop:
//     measured MTBF/MTTR flowing back into the model); structure-only
//     caches survive, availability answers pick the new value up.
//   - notify_topology_changed(affected) / notify_properties_changed(
//     affected) rebuild as their coarse namesakes do, but evict only the
//     keys the index holds for `affected` instead of bumping the epoch.
//     CONTRACT: exact when the change degrades/removes connectivity
//     through the named elements or edits them in place.  A structural
//     *addition* (new instance/link) can create paths for pairs whose
//     cached sets never touched the named elements — additions must use
//     the parameterless (epoch-flush) overloads.
//
// Thread safety: query()/query_batch()/query_availability() may be called
// from any number of threads; the notify_*/with_topology_write()/
// set_element_state()/set_property_override() mutators exclude them via a
// shared_mutex.  The infrastructure model must only be mutated inside
// with_topology_write() once queries are in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/analysis.hpp"
#include "core/upsim_generator.hpp"
#include "engine/path_cache.hpp"
#include "engine/reverse_index.hpp"
#include "graph/graph.hpp"
#include "mapping/mapping.hpp"
#include "pathdisc/csr.hpp"
#include "pathdisc/path_discovery.hpp"
#include "service/service.hpp"
#include "transform/projection.hpp"
#include "uml/object_model.hpp"
#include "util/thread_pool.hpp"
#include "vpm/model_space.hpp"

namespace upsim::engine {

struct EngineOptions {
  pathdisc::Options discovery;
  transform::ProjectionOptions projection;
  /// Pool for query_batch fan-out.  Null: the engine owns a pool of
  /// `threads` workers (0 = hardware concurrency).  Queries themselves
  /// never submit nested pool tasks, so an external pool may be shared.
  util::ThreadPool* pool = nullptr;
  std::size_t threads = 0;
  std::size_t cache_shards = 16;
  /// Mirror UpsimGenerator and insert each served run into the model space
  /// (mapping import + stored paths, replacing a previous run of the same
  /// name).  This is the only serialized section of a query; switch it off
  /// when serving throughput matters more than a queryable space.
  bool record_in_space = true;
  /// Serve cold Step-7 discoveries from the flat CSR projection of the
  /// topology (rebuilt on every topology change, reused across
  /// perspectives and epochs otherwise).  Off = discover on the generic
  /// attribute-carrying graph — the differential oracle the CSR kernel is
  /// tested against; answers are byte-identical either way.
  bool use_csr = true;
  /// Run the lint analyzer over the infrastructure before accepting it
  /// (constructor and every topology rebuild): lint errors — dangling
  /// values, non-positive MTBF/MTTR, ... — throw ModelError up front
  /// instead of surfacing as misleading empty answers at query time;
  /// warnings are counted on the obs registry (lint.warnings).
  bool lint_model = true;
};

/// What one fine-grained invalidation event did.
struct InvalidationReport {
  /// Reverse-index matches: cached pair discoveries whose served answers
  /// the event can influence.
  std::uint64_t affected_keys = 0;
  /// Path-cache entries actually dropped (0 for overlay events — baseline
  /// sets stay valid across fail/repair).
  std::uint64_t evicted_keys = 0;
  /// The event fell back to (or asked for) the coarse epoch flush.
  bool full_flush = false;
};

/// Cumulative fine-grained invalidation accounting (always-on, like
/// CacheStats; the server's `metrics` method reports these with obs off).
struct InvalidationStats {
  std::uint64_t events = 0;         ///< fine-grained events absorbed
  std::uint64_t affected_keys = 0;  ///< cumulative reverse-index matches
  std::uint64_t evicted_keys = 0;   ///< cumulative fine-grained evictions
  std::uint64_t full_flushes = 0;   ///< coarse epoch bumps
  std::size_t index_elements = 0;   ///< live reverse-index element buckets
  std::size_t index_links = 0;      ///< live (element, key) index links
  std::size_t down_elements = 0;    ///< elements currently failed
  std::size_t property_overrides = 0;
};

/// Optional per-query introspection: the elements (instance and link
/// names) the answer depends on — every vertex on any *baseline* path of
/// any pair, plus every parallel link of every hop.  Sorted, unique.  The
/// server indexes its served-result cache by these.
struct QueryInfo {
  std::vector<std::string> elements;
};

class PerspectiveEngine {
 public:
  /// Imports `infrastructure` (Step 5) into a private model space and
  /// projects the discovery graph.  The infrastructure and its class model
  /// must outlive the engine; an external pool must too.
  explicit PerspectiveEngine(const uml::ObjectModel& infrastructure,
                             EngineOptions options = {});

  PerspectiveEngine(const PerspectiveEngine&) = delete;
  PerspectiveEngine& operator=(const PerspectiveEngine&) = delete;

  /// Serves one perspective: Steps 6-8 with cached discovery.  Answers are
  /// structurally identical to UpsimGenerator::generate on the same
  /// inputs.  Thread-safe.
  [[nodiscard]] core::UpsimResult query(
      const service::CompositeService& composite,
      const mapping::ServiceMapping& mapping, std::string perspective_name);

  /// query() that additionally reports the dependency elements of the
  /// answer when `info` is non-null (see QueryInfo).
  [[nodiscard]] core::UpsimResult query(
      const service::CompositeService& composite,
      const mapping::ServiceMapping& mapping, std::string perspective_name,
      QueryInfo* info);

  /// Serves one perspective per mapping concurrently on the pool; results
  /// are in input order, named `<name_prefix><index>`.  Throws the first
  /// failure after all tasks finished.
  [[nodiscard]] std::vector<core::UpsimResult> query_batch(
      const service::CompositeService& composite,
      const std::vector<mapping::ServiceMapping>& mappings,
      std::string_view name_prefix);

  /// query() followed by the full dependability analysis on the result.
  [[nodiscard]] core::AvailabilityReport query_availability(
      const service::CompositeService& composite,
      const mapping::ServiceMapping& mapping, std::string perspective_name,
      const core::AnalysisOptions& analysis = {});

  // -- change classes (Sec. V-A3) -------------------------------------------
  /// Change class 1: the infrastructure's instances/links changed.
  /// Re-imports, re-projects, bumps the epoch and evicts stale cache
  /// entries.  Recorded runs die with the old space (a topology change
  /// requires re-import — the expensive class, by design).
  void notify_topology_changed();

  /// Runs `mutate` (typically mutating the caller-owned infrastructure
  /// model) with all queries excluded, then does notify_topology_changed's
  /// rebuild before queries resume — one atomic topology transition.
  void with_topology_write(const std::function<void()>& mutate);

  /// Change class 2: dependability/stereotype values changed but structure
  /// did not.  Re-projects so new attribute values flow into analysis;
  /// cached path sets (structure-only) stay valid and the epoch holds.
  void notify_properties_changed();

  /// Change class 4 bookkeeping: forget the recorded run of one
  /// perspective (no-op when record_in_space is off or the name unknown).
  void notify_mapping_changed(std::string_view perspective_name);

  // -- fine-grained invalidation (see the file header's contract) -----------
  /// Change class 1 as an *operational* event: marks `elements` (instance
  /// or link names) failed (`up == false`) or repaired (`up == true`).
  /// Discovery keeps running on the full baseline topology; queries filter
  /// paths crossing a down element, so cached path sets stay valid and
  /// nothing is evicted here — the report counts the pairs whose answers
  /// changed, for served-result invalidation upstream.  Throws
  /// NotFoundError for a name that is neither instance nor link.
  InvalidationReport set_element_state(const std::vector<std::string>& elements,
                                       bool up);

  [[nodiscard]] bool element_down(std::string_view name) const;
  /// Currently failed elements, sorted.
  [[nodiscard]] std::vector<std::string> down_elements() const;

  /// Change class 2 as a targeted event: overrides one dependability
  /// attribute of one element (e.g. an observed MTBF flowing back into the
  /// model).  Applied to the live discovery graph and to every subsequently
  /// emitted UPSIM graph; survives re-projections.  Throws NotFoundError
  /// for an unknown element.
  InvalidationReport set_property_override(const std::string& element,
                                           const std::string& attribute,
                                           double value);

  /// Fine-grained change class 1: re-imports and re-projects like
  /// notify_topology_changed(), but keeps the epoch and evicts only the
  /// cache keys the reverse index holds for `affected`.  Only sound for
  /// non-additive changes — see the file header.
  InvalidationReport notify_topology_changed(
      const std::vector<std::string>& affected);

  /// with_topology_write() whose rebuild evicts fine-grained (same
  /// contract as notify_topology_changed(affected)).
  InvalidationReport with_topology_write(
      const std::function<void()>& mutate,
      const std::vector<std::string>& affected);

  /// Fine-grained change class 2: re-projects like
  /// notify_properties_changed() (the cache survives either way; paths are
  /// structure-only) and reports the pairs routed through `affected`.
  InvalidationReport notify_properties_changed(
      const std::vector<std::string>& affected);

  // -- introspection --------------------------------------------------------
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] InvalidationStats invalidation_stats() const;
  [[nodiscard]] util::ThreadPool& pool() noexcept { return *pool_; }
  [[nodiscard]] const uml::ObjectModel& infrastructure() const noexcept {
    return *infrastructure_;
  }

 private:
  /// (Re)builds space_ + graph_ from the infrastructure.  Caller holds the
  /// unique lock (or is the constructor).
  void rebuild_locked(bool bump_epoch);
  /// Re-applies attribute overrides onto `g` (vertices/edges by element
  /// name; absent elements are skipped — an emitted UPSIM only contains a
  /// subset of the infrastructure).  Caller holds a model lock.
  void patch_overrides_locked(graph::Graph& g) const;
  /// Throws NotFoundError unless every name is a vertex or edge of the
  /// baseline graph.  Caller holds a model lock.
  void require_elements_locked(const std::vector<std::string>& elements) const;
  /// True when every vertex of `path` is up and every hop has at least one
  /// up link.  Caller holds a shared model lock.
  [[nodiscard]] bool path_alive_locked(const pathdisc::Path& path) const;
  /// Baseline set with down-crossing paths removed; returns the input
  /// pointer unchanged when nothing is filtered.
  [[nodiscard]] std::shared_ptr<const pathdisc::PathSet> filter_down_locked(
      const std::shared_ptr<const pathdisc::PathSet>& set) const;
  /// Collects the dependency elements of one baseline set (every path
  /// vertex plus every parallel link of every hop) into `out`.
  void collect_dependency_elements_locked(const pathdisc::PathSet& set,
                                          std::set<std::string>& out) const;
  /// Shared accounting for the fine-grained mutators: counts the event,
  /// mirrors to obs, refreshes index gauges.  Caller holds the unique lock.
  void note_event_locked(const InvalidationReport& report);

  const uml::ObjectModel* infrastructure_;
  EngineOptions options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_;

  /// Readers (queries) share; topology/property rebuilds are exclusive.
  mutable std::shared_mutex model_mutex_;
  vpm::ModelSpace space_;
  graph::Graph graph_;
  /// Flat CSR projection of graph_'s structure (guarded by model_mutex_
  /// like graph_).  Rebuilt only when the *structure* can have changed —
  /// rebuild_locked(); property re-projections replace graph_ with a
  /// structurally identical graph (stable vertex ids), so the view is
  /// reused across them, across perspectives and across epochs.  Empty
  /// when use_csr is off.
  pathdisc::CsrView csr_;
  /// Serializes model-space run insertion among concurrent queries (taken
  /// with model_mutex_ held shared; rebuilds exclude both).
  std::mutex space_mutex_;
  std::atomic<std::uint64_t> epoch_{0};
  PathSetCache cache_;
  ReverseDependencyIndex rindex_;

  // Operational overlay (guarded by model_mutex_ like graph_): elements
  // currently failed, and per-element attribute overrides.
  std::unordered_set<std::string> down_;
  std::unordered_map<std::string, graph::AttributeMap> overrides_;

  // Always-on fine-grained invalidation accounting.
  std::atomic<std::uint64_t> inv_events_{0};
  std::atomic<std::uint64_t> inv_affected_{0};
  std::atomic<std::uint64_t> inv_evicted_{0};
  std::atomic<std::uint64_t> inv_full_flushes_{0};
};

}  // namespace upsim::engine
