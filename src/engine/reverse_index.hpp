// Reverse dependency index: element name -> the path-cache keys whose
// cached path sets traverse that element.
//
// The engine's epoch-keyed invalidation answers "something changed" by
// retiring every cached discovery at once.  Most change events of the
// paper's Sec. V-A3 catalogue touch one component or link, and Table I
// shows how localized the blast radius really is: a failing edge switch
// concerns the handful of user perspectives routed through it, not the
// whole campus.  This index records, as path sets are computed, which
// elements each (requester, provider, options, epoch) key depends on —
// every vertex on any discovered path plus every parallel link of every
// hop — so an event naming its affected elements can be answered with
// exactly the dependent keys.
//
// Soundness contract: a lookup for element E returns every key whose
// *cached paths contain* E.  That is exact for events that degrade or
// remove connectivity through named elements (failures, repairs against a
// baseline, property changes) because a pair's result can only change if
// some stored path crosses the element.  It is NOT sufficient for
// structural *additions*: a brand-new link can create paths for a pair
// whose cached set never touched either endpoint.  Additive changes must
// keep the coarse epoch flush (PerspectiveEngine documents which notify
// overload to use).
//
// Concurrency: striped like PathSetCache; add/lookup take one shard lock
// per element.  Entries may go stale when the cache drops a key for
// unrelated reasons — harmless, since evicting an absent key is a no-op —
// and clear() resets the index whenever the epoch flushes everything.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/path_cache.hpp"

namespace upsim::engine {

class ReverseDependencyIndex {
 public:
  explicit ReverseDependencyIndex(std::size_t shards = 16);

  ReverseDependencyIndex(const ReverseDependencyIndex&) = delete;
  ReverseDependencyIndex& operator=(const ReverseDependencyIndex&) = delete;

  /// Registers `key` as dependent on each of `elements`.  Idempotent, so
  /// racing duplicate discoveries may both register.
  void add(const PathQueryKey& key, const std::vector<std::string>& elements);

  /// Every key registered for any of `elements`, deduplicated.
  [[nodiscard]] std::vector<PathQueryKey> lookup(
      const std::vector<std::string>& elements) const;

  /// lookup() + drops the consulted element buckets (their keys are about
  /// to be evicted and will re-register on recompute).
  std::vector<PathQueryKey> take(const std::vector<std::string>& elements);

  void clear();

  /// Live element buckets.
  [[nodiscard]] std::size_t element_count() const;
  /// Total (element, key) links — the index's memory footprint driver.
  [[nodiscard]] std::size_t link_count() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string,
                       std::unordered_set<PathQueryKey, PathQueryKeyHash>>
        buckets;
  };

  [[nodiscard]] Shard& shard_for(const std::string& element) const noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace upsim::engine
