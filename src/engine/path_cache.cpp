#include "engine/path_cache.hpp"

#include <utility>

#include "obs/obs.hpp"

namespace upsim::engine {

std::size_t PathQueryKeyHash::operator()(const PathQueryKey& k) const noexcept {
  auto mix = [](std::size_t state, std::size_t v) noexcept {
    state ^= v + 0x9E3779B97F4A7C15ULL + (state << 6) + (state >> 2);
    state *= 0xBF58476D1CE4E5B9ULL;
    return state ^ (state >> 31);
  };
  std::size_t h = pathdisc::hash_value(k.options);
  h = mix(h, static_cast<std::size_t>(graph::index(k.source)));
  h = mix(h, static_cast<std::size_t>(graph::index(k.target)));
  h = mix(h, static_cast<std::size_t>(k.epoch));
  return h;
}

PathSetCache::PathSetCache(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PathSetCache::Shard& PathSetCache::shard_for(
    const PathQueryKey& key) const noexcept {
  return *shards_[PathQueryKeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const pathdisc::PathSet> PathSetCache::get_or_compute(
    const PathQueryKey& key,
    const std::function<pathdisc::PathSet()>& compute, bool* missed) {
  Shard& shard = shard_for(key);
  if (missed != nullptr) *missed = false;
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) {
        obs::Registry::global().counter("engine.cache.hits").add(1);
      }
      return it->second;
    }
  }
  // Miss: discover with no lock held, then publish.  If another thread
  // published first, its entry wins and ours is dropped.
  if (missed != nullptr) *missed = true;
  auto computed = std::make_shared<const pathdisc::PathSet>(compute());
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::Registry::global().counter("engine.cache.misses").add(1);
  }
  std::lock_guard lock(shard.mutex);
  const auto [it, inserted] = shard.entries.emplace(key, std::move(computed));
  (void)inserted;
  return it->second;
}

std::shared_ptr<const pathdisc::PathSet> PathSetCache::find(
    const PathQueryKey& key) const {
  const Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.entries.find(key);
  return it == shard.entries.end() ? nullptr : it->second;
}

std::size_t PathSetCache::evict_stale(std::uint64_t current_epoch) {
  std::size_t evicted = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (it->first.epoch != current_epoch) {
        it = shard->entries.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  note_evictions(evicted);
  return evicted;
}

std::size_t PathSetCache::evict_keys(const std::vector<PathQueryKey>& keys) {
  std::size_t evicted = 0;
  for (const PathQueryKey& key : keys) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mutex);
    evicted += shard.entries.erase(key);
  }
  note_evictions(evicted);
  return evicted;
}

void PathSetCache::clear() {
  std::size_t evicted = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    evicted += shard->entries.size();
    shard->entries.clear();
  }
  note_evictions(evicted);
}

void PathSetCache::note_evictions(std::size_t n) {
  if (n == 0) return;
  evictions_.fetch_add(n, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::Registry::global().counter("engine.cache.evictions").add(n);
  }
}

std::size_t PathSetCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    n += shard->entries.size();
  }
  return n;
}

CacheStats PathSetCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.size = size();
  return s;
}

}  // namespace upsim::engine
