#include "engine/reverse_index.hpp"

#include <functional>

namespace upsim::engine {

ReverseDependencyIndex::ReverseDependencyIndex(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ReverseDependencyIndex::Shard& ReverseDependencyIndex::shard_for(
    const std::string& element) const noexcept {
  return *shards_[std::hash<std::string>{}(element) % shards_.size()];
}

void ReverseDependencyIndex::add(const PathQueryKey& key,
                                 const std::vector<std::string>& elements) {
  for (const std::string& element : elements) {
    Shard& shard = shard_for(element);
    std::lock_guard lock(shard.mutex);
    shard.buckets[element].insert(key);
  }
}

std::vector<PathQueryKey> ReverseDependencyIndex::lookup(
    const std::vector<std::string>& elements) const {
  std::unordered_set<PathQueryKey, PathQueryKeyHash> seen;
  for (const std::string& element : elements) {
    const Shard& shard = shard_for(element);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.buckets.find(element);
    if (it == shard.buckets.end()) continue;
    seen.insert(it->second.begin(), it->second.end());
  }
  return {seen.begin(), seen.end()};
}

std::vector<PathQueryKey> ReverseDependencyIndex::take(
    const std::vector<std::string>& elements) {
  std::unordered_set<PathQueryKey, PathQueryKeyHash> seen;
  for (const std::string& element : elements) {
    Shard& shard = shard_for(element);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.buckets.find(element);
    if (it == shard.buckets.end()) continue;
    seen.insert(it->second.begin(), it->second.end());
    shard.buckets.erase(it);
  }
  return {seen.begin(), seen.end()};
}

void ReverseDependencyIndex::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->buckets.clear();
  }
}

std::size_t ReverseDependencyIndex::element_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    n += shard->buckets.size();
  }
  return n;
}

std::size_t ReverseDependencyIndex::link_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (const auto& [element, keys] : shard->buckets) n += keys.size();
  }
  return n;
}

}  // namespace upsim::engine
