#include "lint/diagnostics.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "util/error.hpp"

namespace upsim::lint {

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> rules = {
      {Rule::LoadFailed, "UPS000", Severity::Error,
       "model artifact failed to parse or load"},
      {Rule::UnknownComponent, "UPS001", Severity::Error,
       "mapping references a component that is not an instance of the "
       "infrastructure"},
      {Rule::UnknownAtomicService, "UPS002", Severity::Error,
       "mapping references an atomic service the catalog does not define"},
      {Rule::UnmappedAtomicService, "UPS003", Severity::Error,
       "atomic service of the analysed composite has no mapping pair"},
      {Rule::SelfMappedPair, "UPS004", Severity::Error,
       "requester and provider of a pair are the same component"},
      {Rule::UnusedAtomicService, "UPS005", Severity::Warning,
       "atomic service is referenced by no composite's activity diagram"},
      {Rule::ParallelLinks, "UPS006", Severity::Warning,
       "two links join the same pair of components (parallel edge)"},
      {Rule::MissingAvailability, "UPS007", Severity::Error,
       "component or link class lacks availability-profile values "
       "(MTBF/MTTR)"},
      {Rule::NonPositiveDependability, "UPS008", Severity::Error,
       "MTBF or MTTR value is zero or negative"},
      {Rule::ImplausibleDependability, "UPS009", Severity::Warning,
       "MTTR is not smaller than MTBF (component mostly under repair)"},
      {Rule::UnreachablePair, "UPS010", Severity::Error,
       "requester and provider lie in different connected components of the "
       "infrastructure"},
      {Rule::IsolatedComponent, "UPS011", Severity::Warning,
       "component has no links, so no mapping can ever reach it"},
      {Rule::MalformedActivity, "UPS012", Severity::Error,
       "composite's activity diagram is not well-formed (cyclic or "
       "structurally invalid)"},
      {Rule::IrrelevantPair, "UPS013", Severity::Note,
       "mapping pair is unused by the analysed composite"},
  };
  return rules;
}

const RuleInfo& rule_info(Rule rule) {
  for (const RuleInfo& info : all_rules()) {
    if (info.rule == rule) return info;
  }
  throw InvariantError("lint: unknown rule value " +
                       std::to_string(static_cast<int>(rule)));
}

void Report::add(Rule rule, std::string message, SourceLocation location) {
  add(rule, rule_info(rule).severity, std::move(message), std::move(location));
}

void Report::add(Rule rule, Severity severity, std::string message,
                 SourceLocation location) {
  diagnostics_.push_back(
      Diagnostic{rule, severity, std::move(message), std::move(location)});
}

std::size_t Report::error_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

std::size_t Report::warning_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Warning;
                    }));
}

std::size_t Report::note_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Note;
                    }));
}

void Report::sort() {
  std::sort(diagnostics_.begin(), diagnostics_.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.location.file, a.location.line,
                              a.location.column, a.rule, a.message) <
                     std::tie(b.location.file, b.location.line,
                              b.location.column, b.rule, b.message);
            });
}

}  // namespace upsim::lint
