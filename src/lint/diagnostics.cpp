#include "lint/diagnostics.hpp"

#include <algorithm>
#include <tuple>

#include "util/error.hpp"

namespace upsim::lint {

std::span<const RuleInfo> all_rules() noexcept { return kRules; }

const RuleInfo& rule_info(Rule rule) {
  for (const RuleInfo& info : kRules) {
    if (info.rule == rule) return info;
  }
  throw InvariantError("lint: unknown rule value " +
                       std::to_string(static_cast<int>(rule)));
}

std::string fingerprint(const Diagnostic& d) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&h](std::string_view text) {
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;  // FNV-1a prime
    }
    h ^= 0x1f;  // field separator, cannot occur in the inputs
    h *= 1099511628211ull;
  };
  mix(d.code());
  mix(d.location.file);
  mix(d.message);
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kHex[(h >> (4 * i)) & 0xf];
  }
  return out;
}

void Report::add(Rule rule, std::string message, SourceLocation location) {
  add(rule, rule_info(rule).severity, std::move(message), std::move(location));
}

void Report::add(Rule rule, Severity severity, std::string message,
                 SourceLocation location) {
  diagnostics_.push_back(
      Diagnostic{rule, severity, std::move(message), std::move(location)});
}

std::size_t Report::error_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

std::size_t Report::warning_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Warning;
                    }));
}

std::size_t Report::note_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Note;
                    }));
}

void Report::sort() {
  std::sort(diagnostics_.begin(), diagnostics_.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.location.file, a.location.line,
                              a.location.column, a.rule, a.message) <
                     std::tie(b.location.file, b.location.line,
                              b.location.column, b.rule, b.message);
            });
}

}  // namespace upsim::lint
