#include "lint/render.hpp"

#include <cstddef>
#include <string>

#include "obs/json.hpp"

namespace upsim::lint {

namespace {

constexpr const char* kReset = "\x1b[0m";

const char* severity_color(Severity s) {
  switch (s) {
    case Severity::Error: return "\x1b[31;1m";    // bold red
    case Severity::Warning: return "\x1b[35;1m";  // bold magenta
    case Severity::Note: return "\x1b[36m";       // cyan
  }
  return "";
}

std::string summary_line(const Report& report) {
  const auto plural = [](std::size_t n, const char* noun) {
    return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
  };
  return plural(report.error_count(), "error") + ", " +
         plural(report.warning_count(), "warning") + ", " +
         plural(report.note_count(), "note");
}

/// SARIF severity levels ("error"/"warning"/"note") happen to match
/// to_string(Severity); keep the mapping explicit anyway.
const char* sarif_level(Severity s) { return to_string(s); }

}  // namespace

std::string render_text(const Report& report, const TextOptions& options) {
  if (report.empty()) return "lint: no findings\n";
  std::string out;
  const std::string* current_file = nullptr;
  for (const Diagnostic& d : report.diagnostics()) {
    // Diagnostics are file-sorted, so a change of file starts a new group.
    if (current_file == nullptr || *current_file != d.location.file) {
      current_file = &d.location.file;
      out += current_file->empty() ? "(no file)" : *current_file;
      out += ":\n";
    }
    out += "  ";
    if (d.location.has_position()) {
      out += std::to_string(d.location.line) + ":" +
             std::to_string(d.location.column);
    } else {
      out += "-";
    }
    out += "  ";
    if (options.color) out += severity_color(d.severity);
    out += to_string(d.severity);
    if (options.color) out += kReset;
    out += d.severity == Severity::Error ? "    " : "  ";  // column align
    out += d.code();
    out += "  ";
    out += d.message;
    out += "\n";
  }
  out += summary_line(report) + "\n";
  return out;
}

std::string render_json(const Report& report) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("diagnostics");
  w.begin_array();
  for (const Diagnostic& d : report.diagnostics()) {
    w.begin_object();
    w.key("code");
    w.value(d.code());
    w.key("severity");
    w.value(to_string(d.severity));
    w.key("message");
    w.value(d.message);
    w.key("file");
    w.value(d.location.file);
    w.key("line");
    w.value(static_cast<std::uint64_t>(d.location.line));
    w.key("column");
    w.value(static_cast<std::uint64_t>(d.location.column));
    w.key("fingerprint");
    w.value(fingerprint(d));
    w.end_object();
  }
  w.end_array();
  w.key("errors");
  w.value(static_cast<std::uint64_t>(report.error_count()));
  w.key("warnings");
  w.value(static_cast<std::uint64_t>(report.warning_count()));
  w.key("notes");
  w.value(static_cast<std::uint64_t>(report.note_count()));
  w.key("ok");
  w.value(!report.has_errors());
  w.end_object();
  return std::move(w).str();
}

std::string render_sarif(const Report& report) {
  // The rules array carries only rules that actually fired (GitHub
  // code-scanning treats the array as the run's alert vocabulary; a stable,
  // minimal array keeps dedup across runs clean).  Indices follow
  // all_rules() order; results reference them by ruleIndex as the spec
  // recommends.
  std::vector<RuleInfo> rules;
  for (const RuleInfo& info : all_rules()) {
    for (const Diagnostic& d : report.diagnostics()) {
      if (d.rule == info.rule) {
        rules.push_back(info);
        break;
      }
    }
  }
  obs::JsonWriter w;
  w.begin_object();
  w.key("$schema");
  w.value(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  w.key("version");
  w.value("2.1.0");
  w.key("runs");
  w.begin_array();
  w.begin_object();
  w.key("tool");
  w.begin_object();
  w.key("driver");
  w.begin_object();
  w.key("name");
  w.value("upsim-lint");
  w.key("version");
  w.value("1.0.0");
  w.key("informationUri");
  w.value("https://example.invalid/upsim");
  w.key("rules");
  w.begin_array();
  for (const RuleInfo& info : rules) {
    w.begin_object();
    w.key("id");
    w.value(info.code);
    w.key("name");
    w.value(info.name);
    w.key("shortDescription");
    w.begin_object();
    w.key("text");
    w.value(info.summary);
    w.end_object();
    w.key("helpUri");
    w.value(info.help_uri);
    w.key("defaultConfiguration");
    w.begin_object();
    w.key("level");
    w.value(sarif_level(info.severity));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();  // driver
  w.end_object();  // tool
  w.key("results");
  w.begin_array();
  for (const Diagnostic& d : report.diagnostics()) {
    std::size_t rule_index = 0;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i].rule == d.rule) {
        rule_index = i;
        break;
      }
    }
    w.begin_object();
    w.key("ruleId");
    w.value(d.code());
    w.key("ruleIndex");
    w.value(static_cast<std::uint64_t>(rule_index));
    w.key("level");
    w.value(sarif_level(d.severity));
    w.key("message");
    w.begin_object();
    w.key("text");
    w.value(d.message);
    w.end_object();
    if (!d.location.file.empty()) {
      w.key("locations");
      w.begin_array();
      w.begin_object();
      w.key("physicalLocation");
      w.begin_object();
      w.key("artifactLocation");
      w.begin_object();
      w.key("uri");
      w.value(d.location.file);
      w.end_object();
      if (d.location.has_position()) {
        w.key("region");
        w.begin_object();
        w.key("startLine");
        w.value(static_cast<std::uint64_t>(d.location.line));
        w.key("startColumn");
        w.value(static_cast<std::uint64_t>(d.location.column));
        w.end_object();
      }
      w.end_object();  // physicalLocation
      w.end_object();  // location
      w.end_array();
    }
    w.key("partialFingerprints");
    w.begin_object();
    w.key("upsimFingerprint/v1");
    w.value(fingerprint(d));
    w.end_object();
    w.end_object();  // result
  }
  w.end_array();
  w.end_object();  // run
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

}  // namespace upsim::lint
