// Structured diagnostics for the static model analyzer (src/lint).
//
// The paper's methodology (Sec. V) assumes the infrastructure model, the
// service description and the XML service mapping are mutually consistent
// before path discovery runs; in the original Eclipse/VIATRA2 tool-chain the
// modeling front-end enforced much of that.  upsim::lint is the from-scratch
// equivalent: a compiler-style pass over a loaded model bundle that turns
// silent inconsistencies (dangling mapping references, components without
// availability values, unreachable requester/provider pairs...) into precise,
// early, machine-readable findings instead of failures — or misleading empty
// UPSIMs — deep inside the pipeline.
//
// Every finding is a Diagnostic: a stable rule code (UPS000...), a severity,
// a human message, and the source location the loaders recorded while
// parsing the XML (umlio::BundleLocations / mapping::MappingLocations).
// Reports order deterministically, so the JSON and SARIF renderings are
// byte-stable for a fixed bundle — CI diffs them across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace upsim::lint {

enum class Severity : std::uint8_t { Error, Warning, Note };

[[nodiscard]] constexpr const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

/// Where a finding points: an artifact (file) plus a 1-based line/column.
/// Any part may be unknown — in-memory models have no file, programmatically
/// built elements no position.
struct SourceLocation {
  std::string file;        ///< empty = no backing file
  std::size_t line = 0;    ///< 0 = unknown
  std::size_t column = 0;

  [[nodiscard]] bool has_position() const noexcept { return line != 0; }
};

/// The stable rule vocabulary.  Codes are append-only: a rule may be retired
/// but its code is never reused, so SARIF baselines stay comparable.
enum class Rule : std::uint8_t {
  LoadFailed,              ///< UPS000
  UnknownComponent,        ///< UPS001
  UnknownAtomicService,    ///< UPS002
  UnmappedAtomicService,   ///< UPS003
  SelfMappedPair,          ///< UPS004
  UnusedAtomicService,     ///< UPS005
  ParallelLinks,           ///< UPS006
  MissingAvailability,     ///< UPS007
  NonPositiveDependability,///< UPS008
  ImplausibleDependability,///< UPS009
  UnreachablePair,         ///< UPS010
  IsolatedComponent,       ///< UPS011
  MalformedActivity,       ///< UPS012
  IrrelevantPair,          ///< UPS013
};

/// Static description of one rule: its code string, default severity, and a
/// one-line summary (used by the SARIF rules array and the docs table).
struct RuleInfo {
  Rule rule;
  const char* code;       ///< "UPS001"
  Severity severity;
  const char* summary;
};

/// All rules, ordered by code.
[[nodiscard]] const std::vector<RuleInfo>& all_rules();

/// Metadata for one rule; throws InvariantError for an unknown value.
[[nodiscard]] const RuleInfo& rule_info(Rule rule);

/// One finding.
struct Diagnostic {
  Rule rule;
  Severity severity;
  std::string message;
  SourceLocation location;

  [[nodiscard]] const char* code() const { return rule_info(rule).code; }
};

/// An analyzer run's findings.  Diagnostics are kept in deterministic order:
/// by file, position, rule code, then message.
class Report {
 public:
  /// Adds a finding with the rule's default severity.
  void add(Rule rule, std::string message, SourceLocation location = {});
  /// Adds a finding with an explicit severity (rules that escalate).
  void add(Rule rule, Severity severity, std::string message,
           SourceLocation location = {});

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  [[nodiscard]] std::size_t note_count() const noexcept;
  [[nodiscard]] bool has_errors() const noexcept { return error_count() != 0; }
  [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return diagnostics_.size();
  }

  /// Restores the deterministic order after a batch of add()s.  analyze()
  /// returns sorted reports; call this after adding findings by hand.
  void sort();

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace upsim::lint
