// Structured diagnostics for the static model analyzer (src/lint).
//
// The paper's methodology (Sec. V) assumes the infrastructure model, the
// service description and the XML service mapping are mutually consistent
// before path discovery runs; in the original Eclipse/VIATRA2 tool-chain the
// modeling front-end enforced much of that.  upsim::lint is the from-scratch
// equivalent: a compiler-style pass over a loaded model bundle that turns
// silent inconsistencies (dangling mapping references, components without
// availability values, unreachable requester/provider pairs...) into precise,
// early, machine-readable findings instead of failures — or misleading empty
// UPSIMs — deep inside the pipeline.
//
// Two passes share this vocabulary.  The syntactic pass (analyzer.hpp,
// UPS0xx) checks well-formedness; the semantic pass (semantic.hpp, UPS1xx
// quantitative/graph-theoretic and UPS2xx scenario-trace rules) computes
// cut-sets, availability bounds and path-count forecasts over the projected
// infrastructure graph.
//
// Every finding is a Diagnostic: a stable rule code (UPS000...), a severity,
// a human message, and the source location the loaders recorded while
// parsing the XML (umlio::BundleLocations / mapping::MappingLocations).
// Reports order deterministically, so the JSON and SARIF renderings are
// byte-stable for a fixed bundle — CI diffs them across runs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace upsim::lint {

enum class Severity : std::uint8_t { Error, Warning, Note };

[[nodiscard]] constexpr const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

/// Where a finding points: an artifact (file) plus a 1-based line/column.
/// Any part may be unknown — in-memory models have no file, programmatically
/// built elements no position.
struct SourceLocation {
  std::string file;        ///< empty = no backing file
  std::size_t line = 0;    ///< 0 = unknown
  std::size_t column = 0;

  [[nodiscard]] bool has_position() const noexcept { return line != 0; }
};

/// The stable rule vocabulary.  Codes are append-only: a rule may be retired
/// but its code is never reused, so SARIF baselines stay comparable.  The
/// numeric families are UPS0xx syntactic, UPS1xx quantitative (graph
/// structure over the projected infrastructure), UPS2xx scenario-trace.
enum class Rule : std::uint8_t {
  LoadFailed,              ///< UPS000
  UnknownComponent,        ///< UPS001
  UnknownAtomicService,    ///< UPS002
  UnmappedAtomicService,   ///< UPS003
  SelfMappedPair,          ///< UPS004
  UnusedAtomicService,     ///< UPS005
  ParallelLinks,           ///< UPS006
  MissingAvailability,     ///< UPS007
  NonPositiveDependability,///< UPS008
  ImplausibleDependability,///< UPS009
  UnreachablePair,         ///< UPS010
  IsolatedComponent,       ///< UPS011
  MalformedActivity,       ///< UPS012
  IrrelevantPair,          ///< UPS013
  SinglePointOfFailure,    ///< UPS100
  BridgeLink,              ///< UPS101
  LowMinCut,               ///< UPS102
  AvailabilityBelowSlo,    ///< UPS103
  PredictedTruncation,     ///< UPS104
  TraceUnknownElement,     ///< UPS200
  TraceRedundantTransition,///< UPS201
  TraceNonMonotonicTime,   ///< UPS202
  TraceUnmappedTarget,     ///< UPS203
};

/// Static description of one rule: its code string, SARIF rule name, default
/// severity, a one-line summary, and a help URI.  This table is the single
/// source of truth consumed by all renderers and mirrored by the rule table
/// in docs/ARCHITECTURE.md (a test asserts they match).
struct RuleInfo {
  Rule rule;
  const char* code;       ///< "UPS001"
  const char* name;       ///< SARIF rule.name, e.g. "UnknownComponent"
  Severity severity;
  const char* summary;
  const char* help_uri;   ///< anchor into the published rule docs
};

inline constexpr std::array<RuleInfo, 23> kRules = {{
    {Rule::LoadFailed, "UPS000", "LoadFailed", Severity::Error,
     "model artifact failed to parse or load",
     "https://example.invalid/upsim/lint#ups000"},
    {Rule::UnknownComponent, "UPS001", "UnknownComponent", Severity::Error,
     "mapping references a component that is not an instance of the "
     "infrastructure",
     "https://example.invalid/upsim/lint#ups001"},
    {Rule::UnknownAtomicService, "UPS002", "UnknownAtomicService",
     Severity::Error,
     "mapping references an atomic service the catalog does not define",
     "https://example.invalid/upsim/lint#ups002"},
    {Rule::UnmappedAtomicService, "UPS003", "UnmappedAtomicService",
     Severity::Error,
     "atomic service of the analysed composite has no mapping pair",
     "https://example.invalid/upsim/lint#ups003"},
    {Rule::SelfMappedPair, "UPS004", "SelfMappedPair", Severity::Error,
     "requester and provider of a pair are the same component",
     "https://example.invalid/upsim/lint#ups004"},
    {Rule::UnusedAtomicService, "UPS005", "UnusedAtomicService",
     Severity::Warning,
     "atomic service is referenced by no composite's activity diagram",
     "https://example.invalid/upsim/lint#ups005"},
    {Rule::ParallelLinks, "UPS006", "ParallelLinks", Severity::Warning,
     "two links join the same pair of components (parallel edge)",
     "https://example.invalid/upsim/lint#ups006"},
    {Rule::MissingAvailability, "UPS007", "MissingAvailability",
     Severity::Error,
     "component or link class lacks availability-profile values "
     "(MTBF/MTTR)",
     "https://example.invalid/upsim/lint#ups007"},
    {Rule::NonPositiveDependability, "UPS008", "NonPositiveDependability",
     Severity::Error, "MTBF or MTTR value is zero or negative",
     "https://example.invalid/upsim/lint#ups008"},
    {Rule::ImplausibleDependability, "UPS009", "ImplausibleDependability",
     Severity::Warning,
     "MTTR is not smaller than MTBF (component mostly under repair)",
     "https://example.invalid/upsim/lint#ups009"},
    {Rule::UnreachablePair, "UPS010", "UnreachablePair", Severity::Error,
     "requester and provider lie in different connected components of the "
     "infrastructure",
     "https://example.invalid/upsim/lint#ups010"},
    {Rule::IsolatedComponent, "UPS011", "IsolatedComponent", Severity::Warning,
     "component has no links, so no mapping can ever reach it",
     "https://example.invalid/upsim/lint#ups011"},
    {Rule::MalformedActivity, "UPS012", "MalformedActivity", Severity::Error,
     "composite's activity diagram is not well-formed (cyclic or "
     "structurally invalid)",
     "https://example.invalid/upsim/lint#ups012"},
    {Rule::IrrelevantPair, "UPS013", "IrrelevantPair", Severity::Note,
     "mapping pair is unused by the analysed composite",
     "https://example.invalid/upsim/lint#ups013"},
    {Rule::SinglePointOfFailure, "UPS100", "SinglePointOfFailure",
     Severity::Note,
     "component is an articulation point lying on every path of a mapped "
     "requester/provider pair",
     "https://example.invalid/upsim/lint#ups100"},
    {Rule::BridgeLink, "UPS101", "BridgeLink", Severity::Note,
     "link is a bridge lying on every path of a mapped requester/provider "
     "pair",
     "https://example.invalid/upsim/lint#ups101"},
    {Rule::LowMinCut, "UPS102", "LowMinCut", Severity::Note,
     "minimum link cut between a mapped requester/provider pair is at or "
     "below the redundancy threshold",
     "https://example.invalid/upsim/lint#ups102"},
    {Rule::AvailabilityBelowSlo, "UPS103", "AvailabilityBelowSlo",
     Severity::Warning,
     "structural availability upper bound of a mapped pair falls below the "
     "configured SLO",
     "https://example.invalid/upsim/lint#ups103"},
    {Rule::PredictedTruncation, "UPS104", "PredictedTruncation",
     Severity::Warning,
     "path discovery for a mapped pair would hit the configured truncation "
     "limits",
     "https://example.invalid/upsim/lint#ups104"},
    {Rule::TraceUnknownElement, "UPS200", "TraceUnknownElement",
     Severity::Error,
     "scenario event references an element the infrastructure does not "
     "define",
     "https://example.invalid/upsim/lint#ups200"},
    {Rule::TraceRedundantTransition, "UPS201", "TraceRedundantTransition",
     Severity::Warning,
     "scenario fails an element that is already down or repairs one that is "
     "already up",
     "https://example.invalid/upsim/lint#ups201"},
    {Rule::TraceNonMonotonicTime, "UPS202", "TraceNonMonotonicTime",
     Severity::Error,
     "scenario event timestamps are not non-decreasing",
     "https://example.invalid/upsim/lint#ups202"},
    {Rule::TraceUnmappedTarget, "UPS203", "TraceUnmappedTarget",
     Severity::Error,
     "scenario migration targets an element outside the mapped "
     "infrastructure",
     "https://example.invalid/upsim/lint#ups203"},
}};

/// All rules, ordered by code.
[[nodiscard]] std::span<const RuleInfo> all_rules() noexcept;

/// Metadata for one rule; throws InvariantError for an unknown value.
[[nodiscard]] const RuleInfo& rule_info(Rule rule);

/// One finding.
struct Diagnostic {
  Rule rule;
  Severity severity;
  std::string message;
  SourceLocation location;

  [[nodiscard]] const char* code() const { return rule_info(rule).code; }
};

/// Stable 16-hex-digit fingerprint of a finding: FNV-1a 64 over rule code,
/// artifact and message (separator-delimited).  Line/column are deliberately
/// excluded so unrelated edits that shift positions do not invalidate
/// baselines or SARIF dedup (`partialFingerprints`).
[[nodiscard]] std::string fingerprint(const Diagnostic& d);

/// An analyzer run's findings.  Diagnostics are kept in deterministic order:
/// by file, position, rule code, then message.
class Report {
 public:
  /// Adds a finding with the rule's default severity.
  void add(Rule rule, std::string message, SourceLocation location = {});
  /// Adds a finding with an explicit severity (rules that escalate).
  void add(Rule rule, Severity severity, std::string message,
           SourceLocation location = {});

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  [[nodiscard]] std::size_t note_count() const noexcept;
  [[nodiscard]] bool has_errors() const noexcept { return error_count() != 0; }
  [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return diagnostics_.size();
  }

  /// Restores the deterministic order after a batch of add()s.  analyze()
  /// returns sorted reports; call this after adding findings by hand.
  void sort();

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace upsim::lint
