#include "lint/semantic.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/obs.hpp"
#include "pathdisc/csr.hpp"
#include "pathdisc/forecast.hpp"
#include "pathdisc/stats.hpp"
#include "transform/projection.hpp"

namespace upsim::lint {

namespace {

using graph::EdgeId;
using graph::VertexId;

/// Looks `key` up in an optional location map and stamps `file` on hits
/// (same shape as the syntactic analyzer's helper).
SourceLocation locate(const std::string& file,
                      const std::map<std::string, xml::Location>* positions,
                      std::string_view key) {
  SourceLocation loc;
  loc.file = file;
  if (positions != nullptr) {
    const auto it = positions->find(std::string(key));
    if (it != positions->end()) {
      loc.line = it->second.line;
      loc.column = it->second.column;
    }
  }
  return loc;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// One resolved mapping pair: both endpoints exist in the projected graph.
/// Unresolvable pairs are the syntactic pass's findings (UPS001/UPS004),
/// not re-reported here.
struct PairRef {
  std::string name;  ///< "label:atomic" or "atomic"
  std::string requester;
  std::string provider;
  VertexId s;
  VertexId t;
  SourceLocation location;
};

std::string pair_phrase(const PairRef& p) {
  return "'" + p.name + "' (" + p.requester + " -> " + p.provider + ")";
}

/// "pairs 'a' (x -> y), 'b' (z -> w) and 3 more" — bounded message body.
std::string pair_list(const std::vector<const PairRef*>& pairs) {
  constexpr std::size_t kMax = 8;
  std::string out;
  const std::size_t shown = std::min(pairs.size(), kMax);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i != 0) out += ", ";
    out += pair_phrase(*pairs[i]);
  }
  if (pairs.size() > kMax) {
    out += " and " + std::to_string(pairs.size() - kMax) + " more";
  }
  return out;
}

/// Availability mtbf/(mtbf+mttr) of a projected element, when its
/// attributes are present and positive; nullopt = treat as perfect (the
/// syntactic pass owns missing/implausible-value findings).
std::optional<double> availability_of(const graph::AttributeMap& attrs) {
  const auto mtbf = attrs.find("mtbf");
  const auto mttr = attrs.find("mttr");
  if (mtbf == attrs.end() || mttr == attrs.end()) return std::nullopt;
  if (mtbf->second <= 0.0 || mttr->second < 0.0) return std::nullopt;
  return mtbf->second / (mtbf->second + mttr->second);
}

struct TraceContext {
  const graph::Graph* graph = nullptr;
  const std::vector<MappingInput>* mappings = nullptr;
  std::string file;
};

std::string event_prefix(std::size_t ordinal, const scenario::Event& e) {
  return "event #" + std::to_string(ordinal) + " (t=" + fmt(e.at_hours) +
         "): " + std::string(scenario::kind_name(e.kind)) + " ";
}

void check_trace(const std::vector<scenario::Event>& trace,
                 const TraceContext& ctx, Report& report) {
  const graph::Graph* g = ctx.graph;
  // Operational state per element name, for UPS201.  Everything starts up.
  std::unordered_map<std::string, bool> down;
  double previous_t = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const scenario::Event& e = trace[i];
    const std::size_t ordinal = i + 1;
    SourceLocation loc;
    loc.file = ctx.file;
    loc.line = ordinal;  // 1-based event ordinal, not a byte-exact line
    if (i > 0 && e.at_hours < previous_t) {
      report.add(Rule::TraceNonMonotonicTime,
                 event_prefix(ordinal, e) + "timestamp decreases (previous "
                     "event at t=" + fmt(previous_t) + ")",
                 loc);
    }
    previous_t = std::max(previous_t, e.at_hours);

    if (e.is_state_change() || e.kind == scenario::EventKind::PropertyUpdate) {
      const bool wants_component =
          e.kind == scenario::EventKind::FailComponent ||
          e.kind == scenario::EventKind::RepairComponent;
      const bool wants_link = e.kind == scenario::EventKind::FailLink ||
                              e.kind == scenario::EventKind::RepairLink;
      bool known = true;
      if (g != nullptr) {
        const bool is_vertex = g->find_vertex(e.element).has_value();
        const bool is_edge = g->find_edge(e.element).has_value();
        if (wants_component) {
          known = is_vertex;
        } else if (wants_link) {
          known = is_edge;
        } else {
          known = is_vertex || is_edge;
        }
        if (!known) {
          report.add(Rule::TraceUnknownElement,
                     event_prefix(ordinal, e) + "references unknown " +
                         (wants_component ? "component '"
                          : wants_link    ? "link '"
                                          : "element '") +
                         e.element + "'",
                     loc);
        }
      }
      if (known && e.is_state_change()) {
        const bool was_down = down[e.element];
        if (e.is_failure()) {
          if (was_down) {
            report.add(Rule::TraceRedundantTransition,
                       event_prefix(ordinal, e) + "'" + e.element +
                           "' is already down",
                       loc);
          }
          down[e.element] = true;
        } else {
          if (!was_down) {
            report.add(Rule::TraceRedundantTransition,
                       event_prefix(ordinal, e) + "'" + e.element +
                           "' is already up",
                       loc);
          }
          down[e.element] = false;
        }
      }
    } else if (e.is_mapping_change()) {
      if (g != nullptr) {
        if (!g->find_vertex(e.to).has_value()) {
          report.add(Rule::TraceUnmappedTarget,
                     event_prefix(ordinal, e) + "target '" + e.to +
                         "' is not an instance of the infrastructure",
                     loc);
        }
        if (!g->find_vertex(e.from).has_value()) {
          report.add(Rule::TraceUnknownElement,
                     event_prefix(ordinal, e) + "references unknown "
                         "component '" + e.from + "'",
                     loc);
        }
      }
      if (ctx.mappings != nullptr) {
        for (const MappingInput& m : *ctx.mappings) {
          if (m.mapping == nullptr || m.label != e.perspective) continue;
          bool referenced = false;
          for (const auto& pair : m.mapping->pairs()) {
            if (pair.requester == e.from || pair.provider == e.from) {
              referenced = true;
              break;
            }
          }
          if (!referenced) {
            report.add(Rule::TraceUnmappedTarget,
                       event_prefix(ordinal, e) + "rewrites '" + e.from +
                           "' but perspective '" + e.perspective +
                           "' maps nothing to it",
                       loc);
          }
        }
      }
    }
  }
}

}  // namespace

SemanticAnalyzer::SemanticAnalyzer(SemanticOptions options)
    : options_(std::move(options)) {}

Report SemanticAnalyzer::analyze(const SemanticInput& input) const {
  obs::ScopedSpan span("lint.semantic", "lint");
  Report report;
  graph::Graph g;
  if (input.objects != nullptr) {
    transform::ProjectionOptions popts;
    popts.mtbf_attribute = options_.mtbf_attribute;
    popts.mttr_attribute = options_.mttr_attribute;
    // The semantic pass analyses whatever topology there is; missing
    // dependability values are the syntactic pass's UPS007.
    popts.require_dependability_attributes = false;
    g = transform::project(*input.objects, popts);
  }

  const auto instance_location = [&](std::string_view name) {
    return locate(input.bundle_file,
                  input.bundle_locations != nullptr
                      ? &input.bundle_locations->instances
                      : nullptr,
                  name);
  };
  const auto link_location = [&](std::string_view name) {
    return locate(input.bundle_file,
                  input.bundle_locations != nullptr
                      ? &input.bundle_locations->links
                      : nullptr,
                  name);
  };

  if (input.objects != nullptr && g.vertex_count() > 0) {
    const pathdisc::Connectivity conn = pathdisc::connectivity(g);

    // Resolve mapped pairs; dangling or self-mapped pairs are UPS001/UPS004
    // territory and silently skipped here.
    std::vector<PairRef> pairs;
    for (const MappingInput& m : input.mappings) {
      if (m.mapping == nullptr) continue;
      for (const auto& pair : m.mapping->pairs()) {
        const auto s = g.find_vertex(pair.requester);
        const auto t = g.find_vertex(pair.provider);
        if (!s || !t || *s == *t) continue;
        PairRef ref;
        ref.name = m.label.empty() ? pair.atomic_service
                                   : m.label + ":" + pair.atomic_service;
        ref.requester = pair.requester;
        ref.provider = pair.provider;
        ref.s = *s;
        ref.t = *t;
        ref.location =
            locate(m.file,
                   m.locations != nullptr ? &m.locations->pairs : nullptr,
                   pair.atomic_service);
        pairs.push_back(std::move(ref));
      }
    }
    // Pairs across connected components have no paths at all (UPS010);
    // cut-set statements about them would be vacuous.
    std::vector<const PairRef*> connected;
    for (const PairRef& p : pairs) {
      if (conn.component[graph::index(p.s)] ==
          conn.component[graph::index(p.t)]) {
        connected.push_back(&p);
      }
    }

    if (input.mappings.empty()) {
      // Infrastructure mode: no pairs to scope by — report the graph's
      // articulation skeleton itself (the registry upload gate's view).
      for (const VertexId v : conn.articulation_points) {
        report.add(Rule::SinglePointOfFailure,
                   "component '" + g.vertex(v).name +
                       "' is an articulation point: its failure splits the "
                       "infrastructure",
                   instance_location(g.vertex(v).name));
      }
      for (const EdgeId e : conn.bridges) {
        report.add(Rule::BridgeLink,
                   "link '" + g.edge(e).name +
                       "' is a bridge: its failure splits the infrastructure",
                   link_location(g.edge(e).name));
      }
    } else {
      for (const VertexId v : conn.articulation_points) {
        std::vector<const PairRef*> affected;
        for (const PairRef* p : connected) {
          if (pathdisc::separates(g, v, p->s, p->t)) affected.push_back(p);
        }
        if (affected.empty()) continue;
        report.add(Rule::SinglePointOfFailure,
                   "component '" + g.vertex(v).name +
                       "' is a single point of failure: every path of " +
                       pair_list(affected) + " crosses it",
                   instance_location(g.vertex(v).name));
      }
      for (const EdgeId e : conn.bridges) {
        std::vector<const PairRef*> affected;
        for (const PairRef* p : connected) {
          if (pathdisc::separates_edge(g, e, p->s, p->t)) affected.push_back(p);
        }
        if (affected.empty()) continue;
        report.add(Rule::BridgeLink,
                   "link '" + g.edge(e).name +
                       "' is a bridge: every path of " + pair_list(affected) +
                       " crosses it",
                   link_location(g.edge(e).name));
      }
    }

    if (options_.min_cut_threshold > 0) {
      std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> cut_cache;
      for (const PairRef* p : connected) {
        const auto key = std::make_pair(graph::index(p->s), graph::index(p->t));
        auto it = cut_cache.find(key);
        if (it == cut_cache.end()) {
          it = cut_cache
                   .emplace(key, pathdisc::edge_connectivity(
                                     g, p->s, p->t,
                                     options_.min_cut_threshold + 1))
                   .first;
        }
        const std::size_t cut = it->second;
        if (cut == 0 || cut > options_.min_cut_threshold) continue;
        report.add(Rule::LowMinCut,
                   "pair " + pair_phrase(*p) + ": minimum link cut is " +
                       std::to_string(cut) + " (threshold " +
                       std::to_string(options_.min_cut_threshold) +
                       ") — " + std::to_string(cut) +
                       " link failure(s) can sever the pair",
                   p->location);
      }
    }

    if (options_.availability_slo > 0.0) {
      for (const PairRef* p : connected) {
        // Series cut-set: the endpoints, every articulation point and every
        // bridge separating the pair.  All of them sit on every path, so
        // the product of their availabilities bounds the pair's
        // availability from above — whatever the redundant paths do.
        double bound = 1.0;
        std::size_t elements = 0;
        const auto fold = [&bound, &elements](const graph::AttributeMap& a) {
          if (const auto availability = availability_of(a)) {
            bound *= *availability;
            ++elements;
          }
        };
        fold(g.vertex(p->s).attributes);
        fold(g.vertex(p->t).attributes);
        for (const VertexId v : conn.articulation_points) {
          if (pathdisc::separates(g, v, p->s, p->t)) {
            fold(g.vertex(v).attributes);
          }
        }
        for (const EdgeId e : conn.bridges) {
          if (pathdisc::separates_edge(g, e, p->s, p->t)) {
            fold(g.edge(e).attributes);
          }
        }
        if (bound < options_.availability_slo) {
          report.add(Rule::AvailabilityBelowSlo,
                     "pair " + pair_phrase(*p) +
                         ": structural availability upper bound " +
                         fmt(bound) + " (series cut-set of " +
                         std::to_string(elements) +
                         " elements) is below the SLO " +
                         fmt(options_.availability_slo),
                     p->location);
        }
      }
    }

    if (options_.discovery.max_paths != 0 ||
        options_.discovery.max_path_length != 0) {
      const pathdisc::CsrView view(g);
      for (const PairRef& p : pairs) {
        const pathdisc::PathForecast fc =
            pathdisc::forecast(view, p.s, p.t, options_.discovery);
        if (!fc.would_truncate) continue;
        std::string limits;
        if (options_.discovery.max_paths != 0) {
          limits += "max_paths=" + std::to_string(options_.discovery.max_paths);
        }
        if (options_.discovery.max_path_length != 0) {
          if (!limits.empty()) limits += ", ";
          limits += "max_path_length=" +
                    std::to_string(options_.discovery.max_path_length);
        }
        report.add(Rule::PredictedTruncation,
                   "pair " + pair_phrase(p) + ": discovery under " + limits +
                       " would truncate (forecast: " +
                       std::to_string(fc.paths) + " paths, " +
                       std::to_string(fc.nodes_expanded) +
                       " nodes expanded) — results will be a lower bound",
                   p.location);
      }
    }
  }

  if (input.trace != nullptr) {
    TraceContext ctx;
    ctx.graph = input.objects != nullptr ? &g : nullptr;
    ctx.mappings = &input.mappings;
    ctx.file = input.trace_file;
    check_trace(*input.trace, ctx, report);
  }

  report.sort();
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    registry.counter("lint.semantic_runs").add(1);
    registry.counter("lint.semantic_errors").add(report.error_count());
    registry.counter("lint.semantic_warnings").add(report.warning_count());
  }
  return report;
}

Report analyze_semantic(const SemanticInput& input,
                        const SemanticOptions& options) {
  return SemanticAnalyzer(options).analyze(input);
}

}  // namespace upsim::lint
