// Lint baseline files: accepted findings, listed by fingerprint.
//
// A baseline (conventionally `.upsim-lint-baseline.json`, committed next to
// the model it blesses) lets CI fail only on *new* findings: existing ones
// are acknowledged by their stable fingerprint (lint::fingerprint — rule,
// artifact and message, independent of line/column), so reformatting the
// XML never invalidates the file, while any new rule hit or message change
// surfaces immediately.  The same fingerprints ride the SARIF output as
// `partialFingerprints`, so a baseline can be grown straight from a scan.
//
//   {"version":1,"fingerprints":["0c6a1...","9f3e2..."]}
//
// upsim_cli --baseline applies one; --update-baseline writes one; the
// registry accepts fingerprints on model_upload for wire-side suppression.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.hpp"

namespace upsim::lint {

struct Baseline {
  std::vector<std::string> fingerprints;  ///< sorted, unique

  [[nodiscard]] bool contains(std::string_view fp) const;
  [[nodiscard]] bool empty() const noexcept { return fingerprints.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return fingerprints.size();
  }
};

/// Builds a baseline accepting every finding of `report`.
[[nodiscard]] Baseline baseline_of(const Report& report);

/// Normalizes (sorts, dedups) a fingerprint list into a baseline.
[[nodiscard]] Baseline baseline_from_fingerprints(
    std::vector<std::string> fingerprints);

/// Parses the JSON form; throws ParseError on malformed input or an
/// unsupported version.
[[nodiscard]] Baseline baseline_from_json(std::string_view text);

/// Deterministic JSON, schema above (no trailing newline).
[[nodiscard]] std::string to_json(const Baseline& baseline);

/// File conveniences; load throws ParseError when the file cannot be read.
[[nodiscard]] Baseline load_baseline(const std::string& path);
void save_baseline(const Baseline& baseline, const std::string& path);

/// The report minus baselined findings, order preserved.  `suppressed`
/// (optional) receives how many findings the baseline absorbed.
[[nodiscard]] Report apply_baseline(const Report& report,
                                    const Baseline& baseline,
                                    std::size_t* suppressed = nullptr);

}  // namespace upsim::lint
