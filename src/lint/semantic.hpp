// The semantic analysis pass: quantitative, graph-theoretic checks over a
// loaded bundle (UPS1xx) plus scenario-trace lint (UPS2xx).
//
// Where the syntactic analyzer (analyzer.hpp) asks "is this model
// well-formed?", this second layer asks "will the well-formed model behave
// the way its author thinks?".  It projects the infrastructure to the same
// graph the pipeline runs on and computes:
//
//   UPS100  single points of failure — articulation points (from
//           pathdisc::connectivity's biconnected machinery) that lie on
//           every requester->provider path of some mapped pair
//   UPS101  bridge links, same criterion on edges
//   UPS102  minimum link cut between a mapped pair at or below a
//           redundancy threshold (unit-capacity max-flow / Menger)
//   UPS103  structural availability upper bound below a configured SLO:
//           the product over the pair's series cut-set (endpoints,
//           separating articulation points, separating bridges) bounds
//           every path's availability from above, whatever the paths are
//   UPS104  predicted path-count explosion: a count-only mirror of the
//           discovery kernels (pathdisc/forecast.hpp) warns when a query
//           under the configured limits *would* truncate, before it runs
//
// and over an optional scenario trace (PR 7's reader):
//
//   UPS200  events referencing unknown components/links
//   UPS201  fail-while-down / repair-while-up sequences
//   UPS202  non-monotonic timestamps
//   UPS203  migrations to targets outside the mapped infrastructure
//
// With no mappings the pass runs in *infrastructure mode* (the registry
// upload gate's shape): UPS100/UPS101 report articulation points and
// bridges globally, the pair-scoped and trace rules are skipped.
//
// Like the syntactic pass the analysis is read-only and deterministic; the
// graph algorithms are near-linear (one Tarjan DFS, a BFS per
// articulation-point/pair combination, an early-exit max-flow per pair), so
// the registry can afford it on every upload.  UPS104 alone costs up to one
// discovery-shaped walk per pair — bounded by the very limits it checks.
#pragma once

#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/diagnostics.hpp"
#include "pathdisc/path_discovery.hpp"
#include "scenario/event.hpp"

namespace upsim::lint {

struct SemanticOptions {
  /// Availability SLO for UPS103, within (0, 1); 0 disables the rule.
  double availability_slo = 0.0;
  /// UPS102 fires when the minimum link cut of a pair is <= this; 0
  /// disables the rule.  The default flags pairs a single link failure
  /// can sever.
  std::size_t min_cut_threshold = 1;
  /// Discovery limits UPS104 forecasts against.  The default (both limits
  /// unbounded) disables the rule — an unbounded query never truncates.
  pathdisc::Options discovery;
  /// Stereotype attribute names of the availability profile; must match
  /// the projection options the pipeline will run with.
  std::string mtbf_attribute = "MTBF";
  std::string mttr_attribute = "MTTR";
};

/// Everything one semantic run looks at.  Null members disable the rules
/// that need them: no objects -> nothing to analyse; no mappings ->
/// infrastructure mode; no trace -> no UPS2xx.
struct SemanticInput {
  const uml::ObjectModel* objects = nullptr;
  std::vector<MappingInput> mappings;

  /// Scenario trace to lint (UPS2xx); null = skip.
  const std::vector<scenario::Event>* trace = nullptr;
  /// Artifact the trace came from ("" = in-memory).  Trace diagnostics
  /// use the 1-based event ordinal as the line number.
  std::string trace_file;

  /// Artifact the bundle came from ("" = in-memory).
  std::string bundle_file;
  const umlio::BundleLocations* bundle_locations = nullptr;
};

class SemanticAnalyzer {
 public:
  explicit SemanticAnalyzer(SemanticOptions options = {});

  /// Runs every applicable rule and returns the deterministic-ordered
  /// report.  Never throws on model content; a bundle that fails the
  /// syntactic pass simply produces fewer semantic findings (dangling
  /// references are skipped, not re-reported).
  [[nodiscard]] Report analyze(const SemanticInput& input) const;

 private:
  SemanticOptions options_;
};

/// Convenience: one-shot run, the upsim_cli --check --semantic shape.
[[nodiscard]] Report analyze_semantic(const SemanticInput& input,
                                      const SemanticOptions& options = {});

}  // namespace upsim::lint
