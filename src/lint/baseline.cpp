#include "lint/baseline.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace upsim::lint {

bool Baseline::contains(std::string_view fp) const {
  return std::binary_search(fingerprints.begin(), fingerprints.end(), fp);
}

Baseline baseline_from_fingerprints(std::vector<std::string> fingerprints) {
  std::sort(fingerprints.begin(), fingerprints.end());
  fingerprints.erase(
      std::unique(fingerprints.begin(), fingerprints.end()),
      fingerprints.end());
  return Baseline{std::move(fingerprints)};
}

Baseline baseline_of(const Report& report) {
  std::vector<std::string> fps;
  fps.reserve(report.size());
  for (const Diagnostic& d : report.diagnostics()) {
    fps.push_back(fingerprint(d));
  }
  return baseline_from_fingerprints(std::move(fps));
}

Baseline baseline_from_json(std::string_view text) {
  const obs::JsonValue doc = obs::json_parse(text);
  if (!doc.is_object() || !doc.has("fingerprints")) {
    throw ParseError("lint baseline: expected an object with a "
                     "'fingerprints' array");
  }
  if (doc.has("version") && doc.at("version").number != 1.0) {
    throw ParseError("lint baseline: unsupported version");
  }
  const obs::JsonValue& fps = doc.at("fingerprints");
  if (!fps.is_array()) {
    throw ParseError("lint baseline: 'fingerprints' must be an array");
  }
  std::vector<std::string> out;
  out.reserve(fps.array.size());
  for (const obs::JsonValue& fp : fps.array) {
    if (fp.kind != obs::JsonValue::Kind::String) {
      throw ParseError("lint baseline: fingerprints must be strings");
    }
    out.push_back(fp.string);
  }
  return baseline_from_fingerprints(std::move(out));
}

std::string to_json(const Baseline& baseline) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("version");
  w.value(std::uint64_t{1});
  w.key("fingerprints");
  w.begin_array();
  for (const std::string& fp : baseline.fingerprints) {
    w.value(fp);
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

Baseline load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("lint baseline '" + path + "': cannot open");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return baseline_from_json(text.str());
  } catch (const ParseError& e) {
    throw ParseError("lint baseline '" + path + "': " + e.what());
  }
}

void save_baseline(const Baseline& baseline, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw ParseError("lint baseline '" + path + "': cannot write");
  }
  out << to_json(baseline) << "\n";
}

Report apply_baseline(const Report& report, const Baseline& baseline,
                      std::size_t* suppressed) {
  Report out;
  std::size_t absorbed = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (baseline.contains(fingerprint(d))) {
      ++absorbed;
      continue;
    }
    out.add(d.rule, d.severity, d.message, d.location);
  }
  if (suppressed != nullptr) *suppressed = absorbed;
  return out;
}

}  // namespace upsim::lint
