#include "lint/analyzer.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "uml/class_model.hpp"
#include "util/strings.hpp"

namespace upsim::lint {

namespace {

/// Looks `key` up in an optional location map and stamps `file` on hits.
SourceLocation locate(const std::string& file,
                      const std::map<std::string, xml::Location>* positions,
                      std::string_view key) {
  SourceLocation loc;
  loc.file = file;
  if (positions != nullptr) {
    const auto it = positions->find(std::string(key));
    if (it != positions->end()) {
      loc.line = it->second.line;
      loc.column = it->second.column;
    }
  }
  return loc;
}

std::string mapping_prefix(const MappingInput& input) {
  return input.label.empty() ? std::string()
                             : "mapping '" + input.label + "': ";
}

// ---------------------------------------------------------------------------
// Union-find over instance indices (UPS010).  Path-halving find plus union
// by size: the reachability verdict for every pair costs near-linear time in
// links + queries, no DFS and no graph projection.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

// ---------------------------------------------------------------------------
// Infrastructure rules: UPS006 parallel links, UPS007/008/009 availability
// values, UPS011 isolated components.

/// Shared dependability-value check for the class behind instances and the
/// association behind links; `context` names what carries the value and
/// `users` how many model elements inherit it.
void check_dependability_values(const uml::StereotypedElement& element,
                                const std::string& context, std::size_t users,
                                const Input& input, SourceLocation location,
                                Report& report) {
  const auto mtbf = element.stereotype_value(input.mtbf_attribute);
  const auto mttr = element.stereotype_value(input.mttr_attribute);
  if (!mtbf || !mttr) {
    const Severity severity =
        input.require_dependability ? Severity::Error : Severity::Note;
    report.add(Rule::MissingAvailability, severity,
               context + " lacks availability values '" +
                   input.mtbf_attribute + "'/'" + input.mttr_attribute +
                   "' (" + std::to_string(users) + " model element(s) "
                   "inherit them)",
               std::move(location));
    return;
  }
  const double mtbf_v = mtbf->as_real();
  const double mttr_v = mttr->as_real();
  for (const auto& [name, value] :
       {std::pair<const std::string&, double>{input.mtbf_attribute, mtbf_v},
        std::pair<const std::string&, double>{input.mttr_attribute, mttr_v}}) {
    if (value <= 0.0) {
      report.add(Rule::NonPositiveDependability,
                 context + ": " + name + " = " + util::format_sig(value, 6) +
                     " must be positive",
                 location);
    }
  }
  if (mtbf_v > 0.0 && mttr_v > 0.0 && mttr_v >= mtbf_v) {
    report.add(Rule::ImplausibleDependability,
               context + ": MTTR (" + util::format_sig(mttr_v, 6) +
                   ") >= MTBF (" + util::format_sig(mtbf_v, 6) +
                   ") — the component would spend most of its life under "
                   "repair",
               std::move(location));
  }
}

void check_infrastructure(const Input& input, Report& report) {
  const uml::ObjectModel& objects = *input.objects;
  const auto* locs = input.bundle_locations;
  const std::string& file = input.bundle_file;

  // UPS007/008/009 once per *used* classifier and association — the paper
  // keeps properties on classes, so one finding per class covers every
  // instance of it.
  std::map<std::string, std::pair<const uml::Class*, std::size_t>> classes;
  for (const uml::InstanceSpecification* inst : objects.instances()) {
    auto [it, inserted] =
        classes.emplace(inst->classifier().name(),
                        std::make_pair(&inst->classifier(), std::size_t{0}));
    ++it->second.second;
  }
  for (const auto& [name, entry] : classes) {
    check_dependability_values(
        *entry.first, "class '" + name + "'", entry.second, input,
        locate(file, locs != nullptr ? &locs->classes : nullptr, name),
        report);
  }
  std::map<std::string, std::pair<const uml::Association*, std::size_t>>
      associations;
  for (const auto& link : objects.links()) {
    auto [it, inserted] = associations.emplace(
        link->association().name(),
        std::make_pair(&link->association(), std::size_t{0}));
    ++it->second.second;
  }
  for (const auto& [name, entry] : associations) {
    check_dependability_values(
        *entry.first, "association '" + name + "'", entry.second, input,
        locate(file, locs != nullptr ? &locs->associations : nullptr, name),
        report);
  }

  // UPS006: parallel links.  Legitimate for modelling redundant trunks, so
  // a warning, not an error — but flagged because a duplicated <link> line
  // is the more common cause.
  std::map<std::pair<std::string, std::string>, const uml::Link*> seen;
  for (const auto& link : objects.links()) {
    auto key = std::minmax(link->end_a().name(), link->end_b().name());
    const auto [it, inserted] =
        seen.emplace(std::make_pair(key.first, key.second), link.get());
    if (!inserted) {
      report.add(Rule::ParallelLinks,
                 "links '" + it->second->name() + "' and '" + link->name() +
                     "' both join '" + key.first + "' and '" + key.second +
                     "' — redundant trunk or duplicated <link>?",
                 locate(file, locs != nullptr ? &locs->links : nullptr,
                        link->name()));
    }
  }

  // UPS011: isolated components.
  std::set<std::string> linked;
  for (const auto& link : objects.links()) {
    linked.insert(link->end_a().name());
    linked.insert(link->end_b().name());
  }
  for (const uml::InstanceSpecification* inst : objects.instances()) {
    if (!linked.contains(inst->name())) {
      report.add(Rule::IsolatedComponent,
                 "component '" + inst->name() + "' has no links; no "
                 "requester/provider pair can reach it",
                 locate(file, locs != nullptr ? &locs->instances : nullptr,
                        inst->name()));
    }
  }
}

// ---------------------------------------------------------------------------
// Service-catalog rules: UPS005 unused atomics, UPS012 malformed activities.

void check_services(const Input& input, Report& report) {
  const service::ServiceCatalog& services = *input.services;
  const auto* locs = input.bundle_locations;
  const std::string& file = input.bundle_file;

  for (const service::AtomicService* atomic : services.atomics()) {
    if (services.composites_using(atomic->name()).empty()) {
      report.add(Rule::UnusedAtomicService,
                 "atomic service '" + atomic->name() +
                     "' is referenced by no composite's activity diagram",
                 locate(file, locs != nullptr ? &locs->atomics : nullptr,
                        atomic->name()));
    }
  }
  for (const service::CompositeService* composite : services.composites()) {
    check_activity(composite->activity(), report,
                   locate(file, locs != nullptr ? &locs->composites : nullptr,
                          composite->name()));
  }
}

// ---------------------------------------------------------------------------
// Mapping rules: UPS001/002/004/010/013 per pair, UPS003 per composite
// atomic.

void check_mapping(const Input& input, const MappingInput& mapping_input,
                   UnionFind* components,
                   const std::map<std::string, std::size_t>& instance_index,
                   Report& report) {
  const mapping::ServiceMapping& mapping = *mapping_input.mapping;
  const auto* locs = mapping_input.locations;
  const std::string& file = mapping_input.file;
  const std::string prefix = mapping_prefix(mapping_input);

  for (const mapping::ServiceMappingPair& pair : mapping.pairs()) {
    const auto pair_at =
        locate(file, locs != nullptr ? &locs->pairs : nullptr,
               pair.atomic_service);
    if (input.services != nullptr &&
        input.services->find_atomic(pair.atomic_service) == nullptr) {
      report.add(Rule::UnknownAtomicService,
                 prefix + "pair '" + pair.atomic_service +
                     "': the service catalog defines no such atomic service",
                 pair_at);
    }
    bool endpoints_known = true;
    for (const auto& [role, id, role_locs] :
         {std::tuple<const char*, const std::string&,
                     const std::map<std::string, xml::Location>*>{
              "requester", pair.requester,
              locs != nullptr ? &locs->requesters : nullptr},
          std::tuple<const char*, const std::string&,
                     const std::map<std::string, xml::Location>*>{
              "provider", pair.provider,
              locs != nullptr ? &locs->providers : nullptr}}) {
      if (input.objects != nullptr &&
          input.objects->find_instance(id) == nullptr) {
        endpoints_known = false;
        report.add(Rule::UnknownComponent,
                   prefix + "pair '" + pair.atomic_service + "': " + role +
                       " '" + id + "' is not an instance of infrastructure '" +
                       input.objects->name() + "'",
                   locate(file, role_locs, pair.atomic_service));
      }
    }
    if (pair.requester == pair.provider) {
      report.add(Rule::SelfMappedPair,
                 prefix + "pair '" + pair.atomic_service +
                     "': requester and provider are both '" + pair.requester +
                     "'",
                 pair_at);
    } else if (endpoints_known && components != nullptr) {
      const std::size_t a = instance_index.at(pair.requester);
      const std::size_t b = instance_index.at(pair.provider);
      if (components->find(a) != components->find(b)) {
        report.add(Rule::UnreachablePair,
                   prefix + "pair '" + pair.atomic_service + "': requester '" +
                       pair.requester + "' and provider '" + pair.provider +
                       "' lie in different connected components — no path "
                       "can ever be discovered",
                   pair_at);
      }
    }
    if (input.composite != nullptr &&
        !input.composite->uses(pair.atomic_service)) {
      report.add(Rule::IrrelevantPair,
                 prefix + "pair '" + pair.atomic_service +
                     "' is unused by composite '" + input.composite->name() +
                     "' (allowed, but dead weight for this perspective)",
                 pair_at);
    }
  }

  if (input.composite != nullptr) {
    for (const std::string& atomic : input.composite->atomic_services()) {
      if (!mapping.contains(atomic)) {
        report.add(Rule::UnmappedAtomicService,
                   prefix + "composite '" + input.composite->name() +
                       "': atomic service '" + atomic + "' has no pair",
                   locate(file, nullptr, atomic));
      }
    }
  }
}

}  // namespace

void check_activity(const uml::Activity& activity, Report& report,
                    const SourceLocation& location) {
  for (const std::string& problem : activity.validate()) {
    report.add(Rule::MalformedActivity,
               "activity '" + activity.name() + "': " + problem, location);
  }
}

Report analyze(const Input& input) {
  obs::ScopedSpan span("lint.analyze", "lint");
  Report report;

  if (input.objects != nullptr) {
    check_infrastructure(input, report);
  }
  if (input.services != nullptr) {
    check_services(input, report);
  }

  // The union-find components are shared by every mapping checked against
  // the same infrastructure.
  std::map<std::string, std::size_t> instance_index;
  std::optional<UnionFind> components;
  if (input.objects != nullptr) {
    for (const uml::InstanceSpecification* inst : input.objects->instances()) {
      instance_index.emplace(inst->name(), instance_index.size());
    }
    components.emplace(instance_index.size());
    for (const auto& link : input.objects->links()) {
      components->unite(instance_index.at(link->end_a().name()),
                        instance_index.at(link->end_b().name()));
    }
  }
  for (const MappingInput& mapping_input : input.mappings) {
    if (mapping_input.mapping == nullptr) continue;
    check_mapping(input, mapping_input,
                  components.has_value() ? &*components : nullptr,
                  instance_index, report);
  }

  report.sort();
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    registry.counter("lint.runs").add(1);
    registry.counter("lint.errors").add(report.error_count());
    registry.counter("lint.warnings").add(report.warning_count());
  }
  return report;
}

Report analyze_bundle(const umlio::UmlBundle& bundle,
                      const mapping::ServiceMapping* mapping,
                      const service::CompositeService* composite,
                      const Input& base) {
  Input input = base;
  input.objects = bundle.objects.get();
  input.services = bundle.services.get();
  input.composite = composite;
  if (mapping != nullptr) {
    input.mappings.push_back(MappingInput{mapping, "", "", nullptr});
  }
  return analyze(input);
}

}  // namespace upsim::lint
