// The static model analyzer: cross-layer consistency rules over a loaded
// bundle (infrastructure object model + service catalog + service mappings),
// run *without* executing the pipeline.
//
// The rules span every modeling layer the methodology exchanges on disk:
//
//   mapping x uml      UPS001 dangling requester/provider references,
//                      UPS004 self-mapped pairs
//   mapping x service  UPS002 unknown atomic services, UPS003 unmapped
//                      atomics of the analysed composite, UPS013 pairs the
//                      composite never uses
//   service            UPS005 atomics no activity references,
//                      UPS012 malformed activity diagrams
//   uml                UPS006 parallel links, UPS011 isolated components
//   uml x profile      UPS007 missing MTBF/MTTR, UPS008 non-positive values,
//                      UPS009 MTTR >= MTBF
//   uml x graph        UPS010 requester/provider in different connected
//                      components — a union-find reachability precheck, so
//                      the verdict costs near-linear time instead of a path
//                      discovery run
//
// Analysis is read-only and needs no VPM model space, no graph projection
// and no path discovery; a full run over the USI case study takes
// microseconds, which is what lets the engine afford it on every bundle it
// accepts.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "mapping/mapping.hpp"
#include "service/service.hpp"
#include "uml/activity.hpp"
#include "uml/object_model.hpp"
#include "umlio/serialize.hpp"

namespace upsim::lint {

/// One mapping to check, with optional provenance for diagnostics.
struct MappingInput {
  const mapping::ServiceMapping* mapping = nullptr;
  /// Label used in messages when several mappings are checked ("" = omit).
  std::string label;
  /// Artifact the mapping came from ("" = in-memory).
  std::string file;
  const mapping::MappingLocations* locations = nullptr;
};

/// Everything one analyzer run looks at.  Null members simply disable the
/// rules that need them (e.g. no catalog -> no UPS002/UPS003/UPS005).
struct Input {
  const uml::ObjectModel* objects = nullptr;
  const service::ServiceCatalog* services = nullptr;
  /// The composite the mappings will be analysed against; enables
  /// UPS003/UPS013.  Null checks mappings against the infrastructure only.
  const service::CompositeService* composite = nullptr;
  std::vector<MappingInput> mappings;

  /// Artifact the bundle came from ("" = in-memory).
  std::string bundle_file;
  const umlio::BundleLocations* bundle_locations = nullptr;

  /// Stereotype attribute names of the availability profile (Fig. 6); must
  /// match the projection options the pipeline will run with.
  std::string mtbf_attribute = "MTBF";
  std::string mttr_attribute = "MTTR";
  /// When false (mirroring ProjectionOptions::require_dependability_
  /// attributes), UPS007 downgrades from error to note: the pipeline will
  /// accept the pure topology, but the modeler should still know.
  bool require_dependability = true;
};

/// Runs every applicable rule and returns the deterministic-ordered report.
[[nodiscard]] Report analyze(const Input& input);

/// Convenience: analyze a loaded bundle against one mapping/composite pair,
/// the upsim_cli --check shape.  Any member of `bundle` may be null.
[[nodiscard]] Report analyze_bundle(
    const umlio::UmlBundle& bundle, const mapping::ServiceMapping* mapping,
    const service::CompositeService* composite, const Input& base = {});

/// UPS012 on one activity diagram (also reachable through analyze() for the
/// catalog's composites; exposed so hand-built activities can be checked
/// before ServiceCatalog::define_composite rejects them opaquely).
void check_activity(const uml::Activity& activity, Report& report,
                    const SourceLocation& location = {});

}  // namespace upsim::lint
