// Renderers for lint reports: compiler-style text for humans, deterministic
// JSON for tooling, and SARIF 2.1.0 so CI systems (GitHub code scanning and
// friends) surface model findings natively.
//
// JSON and SARIF output is byte-stable for a fixed report: fixed key order,
// no timestamps, diagnostics already deterministically ordered by Report.
// tests/test_lint.cpp pins that property.
#pragma once

#include <string>

#include "lint/diagnostics.hpp"

namespace upsim::lint {

struct TextOptions {
  /// ANSI colors (red errors, magenta warnings, cyan notes).
  bool color = false;
};

/// Compiler-style listing grouped by file:
///
///   map.xml:
///     3:14  error  UPS001  pair 'p': requester 't99' is not an instance ...
///   (no file):
///     -     note   UPS013  ...
///   2 errors, 1 warning, 0 notes
///
/// Empty reports render a single "no findings" line.
[[nodiscard]] std::string render_text(const Report& report,
                                      const TextOptions& options = {});

/// {"diagnostics":[{"code":...,"severity":...,"message":...,"file":...,
///  "line":N,"column":N}...],"errors":N,"warnings":N,"notes":N,"ok":bool}
/// — "ok" is the gate CI scripts branch on (true iff zero errors).
[[nodiscard]] std::string render_json(const Report& report);

/// SARIF 2.1.0: one run of driver "upsim-lint" with the full rule table and
/// one result per diagnostic (region omitted when the position is unknown).
[[nodiscard]] std::string render_sarif(const Report& report);

}  // namespace upsim::lint
