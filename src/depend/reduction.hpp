// Series-parallel preprocessing for exact reliability (the classical
// network-reduction step that makes factoring practical on realistic
// topologies).
//
// Three availability-preserving rewrites run to a fixed point before
// factoring:
//
//   dangling:  a non-terminal vertex of degree <= 1 can never lie on a
//              terminal path — drop it (this iteratively prunes whole
//              client/server subtrees off the UPSIM periphery);
//   parallel:  two edges with the same endpoints merge into one with
//              a = 1 - (1-a1)(1-a2);
//   series:    a non-terminal degree-2 vertex v between distinct x and y
//              contracts into one x-y edge with a = a_{xv} * a_v * a_{vy}.
//
// On the Fig. 5-style campus each dual-homed distribution switch whose
// subtree was pruned becomes a degree-2 bridge and contracts into a
// parallel core-core edge, so the factoring recursion — exponential in the
// number of bridges on the raw graph — runs on a constant-size core.
// bench_availability quantifies the effect (E6 ablation); correctness is
// property-tested against the unreduced engine.
#pragma once

#include <memory>

#include "depend/reliability.hpp"

namespace upsim::depend {

/// A reduced problem.  Owns its reduced graph; `problem.g` points into it.
struct ReducedProblem {
  std::unique_ptr<graph::Graph> graph;
  ReliabilityProblem problem;
  std::size_t removed_vertices = 0;
  std::size_t merged_edges = 0;
};

/// Applies the rewrites to a fixed point.  The input problem is not
/// modified; terminals are never removed.
[[nodiscard]] ReducedProblem reduce(const ReliabilityProblem& problem);

/// exact_availability after reduction — same value as the raw engine (the
/// rewrites are exact), usually orders of magnitude faster on access
/// networks.
[[nodiscard]] double exact_availability_reduced(
    const ReliabilityProblem& problem, const ExactOptions& options = {});

}  // namespace upsim::depend
