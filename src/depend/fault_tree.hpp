// Fault trees (the second analysis formalism named in Sec. VII).
//
// A fault tree expresses the *failure* of the service as a boolean function
// of basic component-failure events.  For a UPSIM pair the canonical tree
// is: TOP = AND over discovered paths (every path must fail) of OR over the
// path's components (one failed component kills a path).  The module
// provides construction from path sets, top-event probability under
// independence, and minimal cut sets via bottom-up expansion with
// absorption (a small MOCUS) — a cut set of the service is a minimal set of
// components whose joint failure disconnects requester from provider.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace upsim::depend {

class FaultTreeNode;
using FaultTreePtr = std::shared_ptr<const FaultTreeNode>;

enum class GateKind : std::uint8_t { Basic, And, Or, KofN };

class FaultTreeNode {
 public:
  virtual ~FaultTreeNode() = default;
  [[nodiscard]] virtual GateKind kind() const noexcept = 0;
  /// Probability of the failure event under independent basic events.
  [[nodiscard]] virtual double probability() const = 0;
  [[nodiscard]] virtual std::string to_string() const = 0;
  [[nodiscard]] virtual const std::vector<FaultTreePtr>& children() const = 0;
  /// Basic-event name ("" for gates).
  [[nodiscard]] virtual const std::string& event_name() const = 0;
  /// Threshold for k-of-n gates; 0 for every other node kind.
  [[nodiscard]] virtual std::size_t threshold() const noexcept = 0;
};

/// Basic failure event with probability q (component unavailability).
[[nodiscard]] FaultTreePtr failure_event(std::string name, double q);
/// AND gate: occurs iff every child occurs.
[[nodiscard]] FaultTreePtr and_gate(std::vector<FaultTreePtr> children);
/// OR gate: occurs iff any child occurs.
[[nodiscard]] FaultTreePtr or_gate(std::vector<FaultTreePtr> children);
/// k-of-n gate: occurs iff at least k children occur.
[[nodiscard]] FaultTreePtr k_of_n_gate(std::size_t k,
                                       std::vector<FaultTreePtr> children);

/// Builds the service-failure tree from the component-name paths of one
/// requester/provider pair: AND over paths of OR over components.
/// `unavailability_of` maps component names to failure probabilities.
/// NOTE: evaluating this tree under independence is the dual of the RBD
/// approximation; exact numbers come from depend/reliability.hpp.
[[nodiscard]] FaultTreePtr fault_tree_from_paths(
    const std::vector<std::vector<std::string>>& component_paths,
    const std::function<double(const std::string&)>& unavailability_of);

/// A cut set: component names whose joint failure triggers the top event.
using CutSet = std::set<std::string>;

struct CutSetOptions {
  /// Drop cut sets larger than this during expansion; 0 = keep all.
  std::size_t max_order = 0;
  /// Abort with Error when the working set exceeds this many cut sets
  /// (guards exponential blow-up); 0 = unlimited.
  std::size_t max_working_sets = 100000;
};

/// Minimal cut sets of the tree (after absorption).  Deterministic order
/// (sorted).  k-of-n gates are expanded combinatorially.
[[nodiscard]] std::vector<CutSet> minimal_cut_sets(
    const FaultTreePtr& top, const CutSetOptions& options = {});

/// Rare-event upper bound on the top probability from minimal cut sets:
/// sum over cut sets of the product of basic probabilities.
[[nodiscard]] double cut_set_upper_bound(
    const std::vector<CutSet>& cut_sets,
    const std::function<double(const std::string&)>& unavailability_of);

}  // namespace upsim::depend
