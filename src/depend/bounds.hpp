// Esary–Proschan bounds on two-terminal availability from minimal path and
// cut sets.
//
// For a coherent system with independent components,
//
//   prod over minimal cut sets C of (1 - prod_{i in C} q_i)
//     <=  A  <=
//   1 - prod over minimal path sets P of (1 - prod_{i in P} a_i)
//
// The upper bound is exactly the parallel-series RBD value of ref. [20]
// (duplicated blocks treated as independent), which places the paper's RBD
// transformation inside classical reliability theory: it is the EP *upper*
// bound, tight only when paths are disjoint.  The lower bound comes from
// the dual cut-set expansion.  Both are cheap once the sets are known and
// bracket the exact factoring value — asserted by property tests.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "depend/reliability.hpp"

namespace upsim::depend {

struct AvailabilityBounds {
  double lower = 0.0;  ///< Esary–Proschan cut-set bound
  double upper = 1.0;  ///< Esary–Proschan path-set bound (== RBD value)
  std::size_t path_sets = 0;
  std::size_t cut_sets = 0;
};

struct BoundsOptions {
  /// Guard for the cut-set expansion (see fault_tree.hpp).
  std::size_t max_working_sets = 100000;
};

/// Computes the EP bounds for a single-pair problem: path sets come from
/// all-simple-paths discovery (vertices plus the best edge per hop), cut
/// sets from the dual fault tree with absorption.  Throws Error when either
/// expansion exceeds its budget.
[[nodiscard]] AvailabilityBounds esary_proschan_bounds(
    const ReliabilityProblem& problem, const BoundsOptions& options = {});

}  // namespace upsim::depend
