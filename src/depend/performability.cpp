#include "depend/performability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "graph/widest_path.hpp"
#include "pathdisc/path_discovery.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace upsim::depend {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::index;

namespace {

double edge_capacity(const Graph& g, EdgeId e, const ThroughputModel& model) {
  const auto& attrs = g.edge(e).attributes;
  const auto it = attrs.find(model.attribute);
  return it == attrs.end() ? model.edge_default : it->second;
}

void check_single_pair(const ReliabilityProblem& problem) {
  problem.validate();
  if (problem.terminal_pairs.size() != 1) {
    throw ModelError(
        "performability: exactly one terminal pair expected (analyse atomic "
        "services separately)");
  }
}

}  // namespace

PerformabilityResult exact_performability(const ReliabilityProblem& problem,
                                          const ThroughputModel& throughput) {
  check_single_pair(problem);
  const Graph& g = *problem.g;
  const auto [s, t] = problem.terminal_pairs[0];

  const auto set = pathdisc::discover(g, s, t);
  if (set.count() > 25) {
    throw Error("exact_performability: " + std::to_string(set.count()) +
                " paths exceed the 2^25 budget; use "
                "monte_carlo_performability");
  }

  // Per path: bottleneck (using the best parallel edge per hop) plus the
  // component sets of its up-event.
  struct PathEvent {
    double bottleneck;
    std::vector<std::uint32_t> vertices;
    std::vector<std::uint32_t> edges;
  };
  std::vector<PathEvent> events;
  events.reserve(set.count());
  for (const auto& path : set.paths) {
    PathEvent event;
    event.bottleneck = std::numeric_limits<double>::infinity();
    for (const VertexId v : path) event.vertices.push_back(index(v));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      double best_capacity = -1.0;
      EdgeId best_edge{0};
      for (const EdgeId e : g.incident_edges(path[i])) {
        if (g.opposite(e, path[i]) != path[i + 1]) continue;
        const double c = edge_capacity(g, e, throughput);
        if (c > best_capacity) {
          best_capacity = c;
          best_edge = e;
        }
      }
      UPSIM_ASSERT(best_capacity >= 0.0);
      event.edges.push_back(index(best_edge));
      event.bottleneck = std::min(event.bottleneck, best_capacity);
    }
    if (path.size() == 1) event.bottleneck = 0.0;  // co-located pair: no link
    events.push_back(std::move(event));
  }

  PerformabilityResult result;
  if (events.empty()) return result;

  // P(union of the events with bottleneck >= level up), by
  // inclusion-exclusion over the qualifying subset.
  auto union_probability = [&](double level) {
    std::vector<const PathEvent*> qualifying;
    for (const PathEvent& e : events) {
      if (e.bottleneck >= level) qualifying.push_back(&e);
    }
    if (qualifying.empty()) return 0.0;
    std::vector<bool> vertex_in(g.vertex_count());
    std::vector<bool> edge_in(g.edge_count());
    double total = 0.0;
    const std::size_t k = qualifying.size();
    for (std::uint64_t mask = 1; mask < (1ULL << k); ++mask) {
      std::fill(vertex_in.begin(), vertex_in.end(), false);
      std::fill(edge_in.begin(), edge_in.end(), false);
      int bits = 0;
      for (std::size_t i = 0; i < k; ++i) {
        if ((mask >> i & 1ULL) == 0) continue;
        ++bits;
        for (const std::uint32_t v : qualifying[i]->vertices) {
          vertex_in[v] = true;
        }
        for (const std::uint32_t e : qualifying[i]->edges) edge_in[e] = true;
      }
      double p = 1.0;
      for (std::size_t v = 0; v < vertex_in.size(); ++v) {
        if (vertex_in[v]) p *= problem.vertex_availability[v];
      }
      for (std::size_t e = 0; e < edge_in.size(); ++e) {
        if (edge_in[e]) p *= problem.edge_availability[e];
      }
      total += (bits % 2 == 1) ? p : -p;
    }
    return total;
  };

  // Distinct levels, descending.
  std::vector<double> levels;
  for (const PathEvent& e : events) levels.push_back(e.bottleneck);
  std::sort(levels.begin(), levels.end(), std::greater<>());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

  result.nominal_throughput = levels.front();
  double previous_probability = 0.0;
  for (const double level : levels) {
    const double p = union_probability(level);
    result.distribution.emplace_back(level, p);
    // E[T] = sum over levels of level * P(T == level); P(T == level_k) =
    // P(T >= level_k) - P(T >= level_{k-1}) with levels descending.
    result.expected_throughput += level * (p - previous_probability);
    previous_probability = p;
  }
  result.availability = previous_probability;  // P(T >= smallest level > 0)
  return result;
}

PerformabilityResult monte_carlo_performability(
    const ReliabilityProblem& problem, const ThroughputModel& throughput,
    std::size_t samples, std::uint64_t seed, util::ThreadPool* pool) {
  check_single_pair(problem);
  if (samples == 0) throw ModelError("performability: 0 samples");
  const Graph& g = *problem.g;
  const auto [s, t] = problem.terminal_pairs[0];
  const auto capacity = [&](EdgeId e) {
    return edge_capacity(g, e, throughput);
  };

  PerformabilityResult result;
  {
    const auto nominal = graph::widest_path(g, s, t, capacity);
    result.nominal_throughput = nominal.reachable() ? nominal.width : 0.0;
  }

  struct Tally {
    std::map<double, std::size_t> level_counts;  // delivered == level
    double sum = 0.0;
    std::size_t connected = 0;
  };
  auto run_block = [&](util::Rng rng, std::size_t n) {
    Tally tally;
    std::vector<bool> vertex_up(g.vertex_count());
    std::vector<bool> edge_up(g.edge_count());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t v = 0; v < vertex_up.size(); ++v) {
        vertex_up[v] = rng.bernoulli(problem.vertex_availability[v]);
      }
      for (std::size_t e = 0; e < edge_up.size(); ++e) {
        edge_up[e] = rng.bernoulli(problem.edge_availability[e]);
      }
      const auto wp = graph::widest_path(
          g, s, t, capacity,
          [&](VertexId v) { return vertex_up[index(v)]; },
          [&](EdgeId e) { return edge_up[index(e)]; });
      if (!wp.reachable()) continue;
      ++tally.connected;
      tally.sum += wp.width;
      ++tally.level_counts[wp.width];
    }
    return tally;
  };

  util::Rng master(seed);
  Tally total;
  if (pool == nullptr) {
    total = run_block(master.fork(), samples);
  } else {
    const std::size_t blocks = std::max<std::size_t>(1, pool->thread_count());
    const std::size_t per_block = samples / blocks;
    std::vector<util::Rng> rngs;
    rngs.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) rngs.push_back(master.fork());
    std::vector<Tally> partial(blocks);
    pool->parallel_for(blocks, [&](std::size_t b) {
      const std::size_t n =
          b + 1 == blocks ? samples - per_block * (blocks - 1) : per_block;
      partial[b] = run_block(std::move(rngs[b]), n);
    });
    for (const Tally& tally : partial) {
      total.connected += tally.connected;
      total.sum += tally.sum;
      for (const auto& [level, count] : tally.level_counts) {
        total.level_counts[level] += count;
      }
    }
  }

  result.availability =
      static_cast<double>(total.connected) / static_cast<double>(samples);
  result.expected_throughput = total.sum / static_cast<double>(samples);
  // P(delivered >= level), accumulated from the highest level down.
  std::size_t at_least = 0;
  for (auto it = total.level_counts.rbegin(); it != total.level_counts.rend();
       ++it) {
    at_least += it->second;
    result.distribution.emplace_back(
        it->first, static_cast<double>(at_least) /
                       static_cast<double>(samples));
  }
  return result;
}

}  // namespace upsim::depend
