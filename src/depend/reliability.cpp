#include "depend/reliability.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>

#include "depend/availability.hpp"
#include "util/error.hpp"

namespace upsim::depend {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::index;

ReliabilityProblem ReliabilityProblem::from_attributes(
    const Graph& g,
    std::vector<std::pair<VertexId, VertexId>> terminal_pairs,
    bool linear_formula) {
  ReliabilityProblem problem;
  problem.g = &g;
  problem.terminal_pairs = std::move(terminal_pairs);
  auto availability_from = [linear_formula](const graph::AttributeMap& attrs,
                                            const std::string& what) {
    const auto mtbf = attrs.find("mtbf");
    const auto mttr = attrs.find("mttr");
    if (mtbf == attrs.end() || mttr == attrs.end()) {
      throw NotFoundError(what + " lacks mtbf/mttr attributes");
    }
    double a = linear_formula ? availability_linear(mtbf->second, mttr->second)
                              : availability_exact(mtbf->second, mttr->second);
    const auto redundant = attrs.find("redundant");
    if (redundant != attrs.end()) {
      a = availability_redundant(a, static_cast<int>(redundant->second));
    }
    return a;
  };
  problem.vertex_availability.reserve(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const graph::Vertex& vertex = g.vertex(VertexId{static_cast<std::uint32_t>(v)});
    problem.vertex_availability.push_back(
        availability_from(vertex.attributes, "vertex '" + vertex.name + "'"));
  }
  problem.edge_availability.reserve(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const graph::Edge& edge = g.edge(EdgeId{static_cast<std::uint32_t>(e)});
    problem.edge_availability.push_back(
        availability_from(edge.attributes, "edge '" + edge.name + "'"));
  }
  problem.validate();
  return problem;
}

void ReliabilityProblem::validate() const {
  if (g == nullptr) throw ModelError("reliability problem: no graph");
  if (vertex_availability.size() != g->vertex_count()) {
    throw ModelError("reliability problem: vertex availability size mismatch");
  }
  if (edge_availability.size() != g->edge_count()) {
    throw ModelError("reliability problem: edge availability size mismatch");
  }
  for (const double a : vertex_availability) {
    if (!(a >= 0.0 && a <= 1.0)) {
      throw ModelError("reliability problem: vertex availability outside [0,1]");
    }
  }
  for (const double a : edge_availability) {
    if (!(a >= 0.0 && a <= 1.0)) {
      throw ModelError("reliability problem: edge availability outside [0,1]");
    }
  }
  if (terminal_pairs.empty()) {
    throw ModelError("reliability problem: no terminal pairs");
  }
  for (const auto& [a, b] : terminal_pairs) {
    (void)g->vertex(a);
    (void)g->vertex(b);
  }
}

namespace {

enum class State : std::uint8_t { Undecided, Up, Down };

/// Mutable factoring state: one State per vertex and per edge.
struct FactoringState {
  std::vector<State> vertex;
  std::vector<State> edge;
};

/// Connectivity of (s, t) treating Undecided as `optimistic ? Up : Down`.
/// A terminal that is Down (or, pessimistically, Undecided) disconnects the
/// pair immediately.
bool pair_connected(const Graph& g, const FactoringState& st, VertexId s,
                    VertexId t, bool optimistic) {
  auto vertex_ok = [&](VertexId v) {
    const State state = st.vertex[index(v)];
    return state == State::Up || (optimistic && state == State::Undecided);
  };
  auto edge_ok = [&](EdgeId e) {
    const State state = st.edge[index(e)];
    return state == State::Up || (optimistic && state == State::Undecided);
  };
  if (!vertex_ok(s) || !vertex_ok(t)) return false;
  if (s == t) return true;
  std::vector<bool> seen(g.vertex_count(), false);
  std::deque<VertexId> queue{s};
  seen[index(s)] = true;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const EdgeId e : g.incident_edges(v)) {
      if (!edge_ok(e)) continue;
      const VertexId w = g.opposite(e, v);
      if (seen[index(w)] || !vertex_ok(w)) continue;
      if (w == t) return true;
      seen[index(w)] = true;
      queue.push_back(w);
    }
  }
  return false;
}

bool all_connected(const Graph& g, const FactoringState& st,
                   const std::vector<std::pair<VertexId, VertexId>>& pairs,
                   bool optimistic) {
  for (const auto& [s, t] : pairs) {
    if (!pair_connected(g, st, s, t, optimistic)) return false;
  }
  return true;
}

/// Picks the next component to condition on: an undecided vertex or edge
/// lying on an optimistic BFS path of the first not-yet-certain pair.
/// Branching on components that actually matter keeps the recursion close
/// to the number of genuinely redundant structures.
struct Pivot {
  bool is_vertex = false;
  std::uint32_t id = 0;
  bool found = false;
};

Pivot pick_pivot(const Graph& g, const FactoringState& st,
                 const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  for (const auto& [s, t] : pairs) {
    if (pair_connected(g, st, s, t, /*optimistic=*/false)) continue;
    // Undecided terminals are always valid pivots (covers s == t, where no
    // BFS edge ever "reaches" the target).
    if (st.vertex[index(s)] == State::Undecided) {
      return Pivot{true, index(s), true};
    }
    if (st.vertex[index(t)] == State::Undecided) {
      return Pivot{true, index(t), true};
    }
    if (s == t) continue;  // terminals decided; nothing to factor here
    // BFS over optimistic states recording parents; then walk the s->t path
    // and return its first undecided component.
    if (st.vertex[index(s)] == State::Down || st.vertex[index(t)] == State::Down) {
      continue;  // pair already impossible; caller's optimism check handles
    }
    std::vector<std::int64_t> parent_edge(g.vertex_count(), -1);
    std::vector<bool> seen(g.vertex_count(), false);
    std::deque<VertexId> queue{s};
    seen[index(s)] = true;
    bool reached = false;
    while (!queue.empty() && !reached) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const EdgeId e : g.incident_edges(v)) {
        if (st.edge[index(e)] == State::Down) continue;
        const VertexId w = g.opposite(e, v);
        if (seen[index(w)] || st.vertex[index(w)] == State::Down) continue;
        seen[index(w)] = true;
        parent_edge[index(w)] = static_cast<std::int64_t>(index(e));
        if (w == t) {
          reached = true;
          break;
        }
        queue.push_back(w);
      }
    }
    if (!reached) continue;
    // Walk back from t to s over parent edges.
    std::vector<std::pair<bool, std::uint32_t>> on_path;  // (is_vertex, id)
    VertexId cur = t;
    while (cur != s) {
      const auto e = EdgeId{static_cast<std::uint32_t>(parent_edge[index(cur)])};
      on_path.emplace_back(false, index(e));
      on_path.emplace_back(true, index(cur));
      cur = g.opposite(e, cur);
    }
    // Prefer components closer to the source (stable, depth-first flavour).
    for (auto it = on_path.rbegin(); it != on_path.rend(); ++it) {
      const auto [is_vertex, id] = *it;
      const State state = is_vertex ? st.vertex[id] : st.edge[id];
      if (state == State::Undecided) return Pivot{is_vertex, id, true};
    }
  }
  return Pivot{};
}

class FactoringEvaluator {
 public:
  FactoringEvaluator(const ReliabilityProblem& problem,
                     const ExactOptions& options)
      : problem_(problem), options_(options) {
    state_.vertex.assign(problem.g->vertex_count(), State::Undecided);
    state_.edge.assign(problem.g->edge_count(), State::Undecided);
  }

  double run() { return recurse(); }

  [[nodiscard]] std::size_t expansions() const noexcept { return expansions_; }

 private:
  double recurse() {
    if (options_.max_expansions != 0 && expansions_ > options_.max_expansions) {
      throw Error("exact_availability: expansion budget exceeded (" +
                  std::to_string(options_.max_expansions) +
                  "); the topology is too dense for exact factoring");
    }
    ++expansions_;
    const Graph& g = *problem_.g;
    // Pessimistic success: everything needed is already Up.
    if (all_connected(g, state_, problem_.terminal_pairs, false)) return 1.0;
    // Optimistic failure: even with every undecided component Up, some pair
    // cannot connect.
    if (!all_connected(g, state_, problem_.terminal_pairs, true)) return 0.0;

    const Pivot pivot = pick_pivot(g, state_, problem_.terminal_pairs);
    UPSIM_ASSERT(pivot.found);  // otherwise one of the two cuts above fired
    State& slot = pivot.is_vertex ? state_.vertex[pivot.id]
                                  : state_.edge[pivot.id];
    const double a = pivot.is_vertex
                         ? problem_.vertex_availability[pivot.id]
                         : problem_.edge_availability[pivot.id];
    slot = State::Up;
    const double up = recurse();
    slot = State::Down;
    const double down = recurse();
    slot = State::Undecided;
    return a * up + (1.0 - a) * down;
  }

  const ReliabilityProblem& problem_;
  ExactOptions options_;
  FactoringState state_;
  std::size_t expansions_ = 0;
};

}  // namespace

double exact_availability(const ReliabilityProblem& problem,
                          const ExactOptions& options) {
  problem.validate();
  FactoringEvaluator evaluator(problem, options);
  return evaluator.run();
}

double path_inclusion_exclusion(
    const ReliabilityProblem& problem,
    const std::vector<std::vector<VertexId>>& paths) {
  problem.validate();
  if (paths.empty()) {
    throw ModelError("path_inclusion_exclusion: empty path set");
  }
  if (paths.size() > 25) {
    throw Error("path_inclusion_exclusion: " + std::to_string(paths.size()) +
                " paths exceed the 2^25 term budget; use exact_availability");
  }
  const Graph& g = *problem.g;

  // Components per path: vertex ids and, between consecutive vertices, the
  // single most-available connecting edge (parallel links collapse to their
  // best representative, which upper-bounds per-link availability — the
  // case study has no parallel links so this is exact there).
  struct PathComponents {
    std::vector<std::uint32_t> vertices;
    std::vector<std::uint32_t> edges;
  };
  std::vector<PathComponents> sets(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto& path = paths[i];
    if (path.empty()) throw ModelError("path_inclusion_exclusion: empty path");
    for (const VertexId v : path) sets[i].vertices.push_back(index(v));
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      std::optional<EdgeId> best;
      for (const EdgeId e : g.incident_edges(path[k])) {
        if (g.opposite(e, path[k]) != path[k + 1]) continue;
        if (!best || problem.edge_availability[index(e)] >
                         problem.edge_availability[index(*best)]) {
          best = e;
        }
      }
      if (!best) {
        throw ModelError("path_inclusion_exclusion: consecutive path "
                         "vertices are not adjacent");
      }
      sets[i].edges.push_back(index(*best));
    }
  }

  // Inclusion-exclusion over path subsets; P(union of paths all-up events).
  const std::size_t p = paths.size();
  double total = 0.0;
  std::vector<bool> vertex_in(g.vertex_count());
  std::vector<bool> edge_in(g.edge_count());
  for (std::uint64_t mask = 1; mask < (1ULL << p); ++mask) {
    std::fill(vertex_in.begin(), vertex_in.end(), false);
    std::fill(edge_in.begin(), edge_in.end(), false);
    int bits = 0;
    for (std::size_t i = 0; i < p; ++i) {
      if ((mask >> i & 1ULL) == 0) continue;
      ++bits;
      for (const std::uint32_t v : sets[i].vertices) vertex_in[v] = true;
      for (const std::uint32_t e : sets[i].edges) edge_in[e] = true;
    }
    double prob = 1.0;
    for (std::size_t v = 0; v < vertex_in.size(); ++v) {
      if (vertex_in[v]) prob *= problem.vertex_availability[v];
    }
    for (std::size_t e = 0; e < edge_in.size(); ++e) {
      if (edge_in[e]) prob *= problem.edge_availability[e];
    }
    total += (bits % 2 == 1) ? prob : -prob;
  }
  return total;
}

MonteCarloResult monte_carlo_availability(const ReliabilityProblem& problem,
                                          std::size_t samples,
                                          std::uint64_t seed,
                                          util::ThreadPool* pool) {
  problem.validate();
  if (samples == 0) throw ModelError("monte_carlo_availability: 0 samples");
  const Graph& g = *problem.g;

  auto run_block = [&](util::Rng rng, std::size_t n) -> std::size_t {
    FactoringState st;
    st.vertex.resize(g.vertex_count());
    st.edge.resize(g.edge_count());
    std::size_t up = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t v = 0; v < st.vertex.size(); ++v) {
        st.vertex[v] = rng.bernoulli(problem.vertex_availability[v])
                           ? State::Up
                           : State::Down;
      }
      for (std::size_t e = 0; e < st.edge.size(); ++e) {
        st.edge[e] = rng.bernoulli(problem.edge_availability[e]) ? State::Up
                                                                 : State::Down;
      }
      if (all_connected(g, st, problem.terminal_pairs, false)) ++up;
    }
    return up;
  };

  util::Rng master(seed);
  std::size_t up_total = 0;
  if (pool == nullptr) {
    up_total = run_block(master.fork(), samples);
  } else {
    const std::size_t blocks = std::max<std::size_t>(1, pool->thread_count());
    const std::size_t per_block = samples / blocks;
    std::vector<util::Rng> rngs;
    std::vector<std::size_t> counts(blocks, 0);
    rngs.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) rngs.push_back(master.fork());
    pool->parallel_for(blocks, [&](std::size_t b) {
      const std::size_t n =
          b + 1 == blocks ? samples - per_block * (blocks - 1) : per_block;
      counts[b] = run_block(std::move(rngs[b]), n);
    });
    for (const std::size_t c : counts) up_total += c;
  }

  MonteCarloResult result;
  result.samples = samples;
  result.estimate = static_cast<double>(up_total) / static_cast<double>(samples);
  result.std_error = std::sqrt(result.estimate * (1.0 - result.estimate) /
                               static_cast<double>(samples));
  return result;
}

double independent_pairs_approximation(const ReliabilityProblem& problem,
                                       const ExactOptions& options) {
  problem.validate();
  double product = 1.0;
  for (const auto& pair : problem.terminal_pairs) {
    ReliabilityProblem single = problem;
    single.terminal_pairs = {pair};
    product *= exact_availability(single, options);
  }
  return product;
}

}  // namespace upsim::depend
