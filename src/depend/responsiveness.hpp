// User-perceived responsiveness (Sec. VII lists responsiveness [7] among
// the dependability properties a UPSIM enables; Dittrich & Salfner define
// it as the probability of a correct response within a deadline).
//
// Model: every vertex carries a processing latency and every edge a
// transmission latency (graph attributes "latency_ms"; defaults apply for
// components that do not declare one).  When components fail, traffic
// re-routes over the best *working* path, so the user-perceived response
// time of one requester/provider pair is the cheapest-path latency in the
// random up/down state — infinite when the pair is disconnected.
// Responsiveness(d) = P(response time <= d), which folds availability and
// latency into one user-perceived figure.
//
// Two evaluators:
//   * exact_responsiveness — enumerates over the component-state space by
//     factoring on latency-relevant components (exact, small UPSIMs);
//   * monte_carlo_responsiveness — samples states, Dijkstra per sample.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "depend/reliability.hpp"
#include "graph/shortest_path.hpp"
#include "util/thread_pool.hpp"

namespace upsim::depend {

struct LatencyModel {
  /// Attribute name holding per-component latency (milliseconds).
  std::string attribute = "latency_ms";
  double vertex_default_ms = 0.1;  ///< per-hop processing latency
  double edge_default_ms = 0.05;   ///< per-link transmission latency
};

/// Distribution of the user-perceived response time of ONE terminal pair:
/// P(T <= d) for each requested deadline, plus the always-up baseline.
struct ResponsivenessResult {
  std::vector<double> deadlines_ms;      ///< as requested, sorted ascending
  std::vector<double> probability;       ///< P(response within deadline)
  double availability = 0.0;             ///< P(any path works) == limit d->inf
  double best_case_ms = 0.0;             ///< latency with everything up
};

/// Monte-Carlo estimate.  The problem must have exactly one terminal pair.
[[nodiscard]] ResponsivenessResult monte_carlo_responsiveness(
    const ReliabilityProblem& problem, const LatencyModel& latency,
    std::vector<double> deadlines_ms, std::size_t samples, std::uint64_t seed,
    util::ThreadPool* pool = nullptr);

/// Exact computation via enumeration of the simple-path set: the response
/// time is min over working paths of the path latency, so
/// P(T <= d) = P(union of {path p fully up} for paths with latency <= d),
/// evaluated by inclusion-exclusion.  Feasible for <= 25 paths; throws
/// Error beyond that (use the Monte-Carlo variant).  The problem must have
/// exactly one terminal pair.
[[nodiscard]] ResponsivenessResult exact_responsiveness(
    const ReliabilityProblem& problem, const LatencyModel& latency,
    std::vector<double> deadlines_ms);

/// Latency of a concrete vertex path under the model (helper shared by the
/// evaluators and the examples).
[[nodiscard]] double path_latency_ms(const graph::Graph& g,
                                     const std::vector<graph::VertexId>& path,
                                     const LatencyModel& latency);

}  // namespace upsim::depend
