// Event-driven failure/repair simulation of a service network.
//
// The paper's companion methodology (Milanovic et al. [2], [8]) assumes a
// CMDB fed by run-time monitoring; no such trace is available for the USI
// network, so this module *simulates* the operational history instead
// (substitution documented in DESIGN.md): every component alternates
// between Up and Down with exponentially distributed sojourn times of mean
// MTBF and MTTR.  The simulator replays that alternating-renewal process
// event by event and measures the service exactly as a monitoring system
// would: the fraction of time every terminal pair stayed connected, the
// number of service outages, and their duration distribution.
//
// By renewal theory the long-run empirical availability converges to the
// steady-state value MTBF/(MTBF+MTTR) per component — and therefore the
// measured service availability converges to depend::exact_availability of
// the corresponding ReliabilityProblem, which the property tests verify.
#pragma once

#include <cstdint>
#include <vector>

#include "depend/reliability.hpp"
#include "graph/graph.hpp"

namespace upsim::depend {

/// Mean time between failures / to repair, hours.
struct ComponentRates {
  double mtbf = 0.0;
  double mttr = 0.0;
};

/// The stochastic model behind a simulation run.
struct SimulationModel {
  const graph::Graph* g = nullptr;
  std::vector<ComponentRates> vertex_rates;  ///< indexed by VertexId
  std::vector<ComponentRates> edge_rates;    ///< indexed by EdgeId
  std::vector<std::pair<graph::VertexId, graph::VertexId>> terminal_pairs;

  /// Reads "mtbf"/"mttr" attributes off every vertex and edge.
  [[nodiscard]] static SimulationModel from_attributes(
      const graph::Graph& g,
      std::vector<std::pair<graph::VertexId, graph::VertexId>> terminal_pairs);

  /// The steady-state reliability problem this process converges to.
  [[nodiscard]] ReliabilityProblem steady_state_problem() const;

  /// Throws ModelError when rates are missing/non-positive or no terminal
  /// pairs are given.
  void validate() const;
};

struct SimulationOptions {
  double horizon_hours = 24.0 * 365.0;  ///< simulated operation time
  /// Initial transient to discard before measuring (all components start
  /// Up, which biases short runs optimistically).
  double warmup_hours = 0.0;
  std::uint64_t seed = 1;
};

struct OutageRecord {
  double start_hours = 0.0;
  double duration_hours = 0.0;
};

struct SimulationResult {
  double measured_hours = 0.0;       ///< horizon - warmup
  double uptime_hours = 0.0;
  std::size_t component_events = 0;  ///< failures + repairs processed
  std::size_t outages = 0;           ///< service-down intervals (measured)
  std::vector<OutageRecord> outage_log;  ///< every measured outage

  [[nodiscard]] double availability() const noexcept {
    return measured_hours > 0.0 ? uptime_hours / measured_hours : 0.0;
  }
  /// Mean time between service failures observed in this run (0 when the
  /// service never failed).
  [[nodiscard]] double service_mtbf_hours() const noexcept;
  /// Mean service outage duration (0 when the service never failed).
  [[nodiscard]] double service_mttr_hours() const noexcept;
};

/// Runs the event-driven simulation.  Deterministic for a fixed seed.
[[nodiscard]] SimulationResult simulate(const SimulationModel& model,
                                        const SimulationOptions& options);

}  // namespace upsim::depend
