// Network availability with failing devices AND failing links.
//
// This is the analysis the UPSIM enables (Sec. VII): given the user-
// perceived sub-network, the probability that requester and provider can
// still communicate when every component fails independently with its
// steady-state unavailability.  Three evaluators are provided:
//
//   * exact_availability        — complete enumeration by factoring
//     (conditioning on one undecided component at a time) with optimistic/
//     pessimistic connectivity pruning; exact for arbitrary topologies and
//     multiple terminal pairs (a composite service is up only if EVERY
//     atomic service's pair is connected — shared components are handled
//     exactly, not assumed independent).
//   * path_inclusion_exclusion — exact for a single pair given its
//     complete simple-path set (2^p terms; feasible for p <~ 25).
//   * monte_carlo_availability — sampling cross-check, parallelisable.
//
// Terminal components are ordinary components: a service whose requester
// machine is down is down, matching the RBD construction in ref. [20].
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace upsim::depend {

/// The probabilistic model over a graph: availability per vertex and per
/// edge, plus the terminal pairs that must all be connected.
struct ReliabilityProblem {
  const graph::Graph* g = nullptr;
  std::vector<double> vertex_availability;  ///< indexed by VertexId
  std::vector<double> edge_availability;    ///< indexed by EdgeId
  std::vector<std::pair<graph::VertexId, graph::VertexId>> terminal_pairs;

  /// Builds the availability vectors from graph attributes: every vertex
  /// and edge must carry "mtbf" and "mttr" attributes (hours); an optional
  /// "redundant" attribute adds spares.  Set `linear_formula` to use the
  /// paper's Formula 1 instead of the exact form.
  [[nodiscard]] static ReliabilityProblem from_attributes(
      const graph::Graph& g,
      std::vector<std::pair<graph::VertexId, graph::VertexId>> terminal_pairs,
      bool linear_formula = false);

  /// Sanity checks (sizes match the graph, probabilities in [0,1], at
  /// least one terminal pair).  Throws ModelError on violation.
  void validate() const;
};

struct ExactOptions {
  /// Abort and throw Error once this many factoring recursions have been
  /// expanded (guards against accidental exponential blow-up on dense
  /// graphs).  0 = unlimited.
  std::size_t max_expansions = 0;
};

/// Exact probability that every terminal pair is connected.  Complexity is
/// exponential in the number of "undecided" components in the worst case
/// but the connectivity pruning collapses tree-like regions immediately.
[[nodiscard]] double exact_availability(const ReliabilityProblem& problem,
                                        const ExactOptions& options = {});

/// Exact single-pair availability from the complete set of simple paths
/// between the pair (vertex sequences).  Edge availabilities are folded in
/// by locating, for consecutive path vertices, the *most available* edge
/// between them (parallel links).  Throws ModelError when given no paths.
[[nodiscard]] double path_inclusion_exclusion(
    const ReliabilityProblem& problem,
    const std::vector<std::vector<graph::VertexId>>& paths);

struct MonteCarloResult {
  double estimate = 0.0;
  double std_error = 0.0;
  std::size_t samples = 0;
};

/// Monte-Carlo estimate of the same probability.  Deterministic for a
/// fixed (seed, samples, thread count).
[[nodiscard]] MonteCarloResult monte_carlo_availability(
    const ReliabilityProblem& problem, std::size_t samples,
    std::uint64_t seed, util::ThreadPool* pool = nullptr);

/// The independence approximation used by the RBD transformation: the
/// product over terminal pairs of each pair's exact availability.  Exact
/// for a single pair; an approximation (reported by E6) when pairs share
/// components.
[[nodiscard]] double independent_pairs_approximation(
    const ReliabilityProblem& problem, const ExactOptions& options = {});

}  // namespace upsim::depend
