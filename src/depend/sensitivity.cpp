#include "depend/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "depend/importance.hpp"
#include "util/error.hpp"

namespace upsim::depend {

std::vector<SensitivityRecord> sensitivity_analysis(
    const ReliabilityProblem& problem, const SensitivityOptions& options) {
  problem.validate();
  const graph::Graph& g = *problem.g;

  ImportanceOptions importance_options;
  importance_options.include_edges = options.include_edges;
  importance_options.exact = options.exact;
  const auto ranking = importance_ranking(problem, importance_options);

  auto rates_of = [&](const SensitivityRecord& record)
      -> std::pair<double, double> {
    const graph::AttributeMap* attrs = nullptr;
    if (record.is_vertex) {
      attrs = &g.vertex(g.vertex_by_name(record.component)).attributes;
    } else {
      // Edges have no name lookup; scan (sensitivity is an offline report).
      for (std::size_t e = 0; e < g.edge_count(); ++e) {
        const auto& edge = g.edge(graph::EdgeId{static_cast<std::uint32_t>(e)});
        if (edge.name == record.component) {
          attrs = &edge.attributes;
          break;
        }
      }
    }
    if (attrs == nullptr) {
      throw NotFoundError("sensitivity: component '" + record.component +
                          "' not found");
    }
    const auto mtbf = attrs->find("mtbf");
    const auto mttr = attrs->find("mttr");
    if (mtbf == attrs->end() || mttr == attrs->end()) {
      throw NotFoundError("sensitivity: component '" + record.component +
                          "' lacks mtbf/mttr attributes");
    }
    return {mtbf->second, mttr->second};
  };

  std::vector<SensitivityRecord> records;
  records.reserve(ranking.size());
  for (const ImportanceRecord& importance : ranking) {
    SensitivityRecord record;
    record.component = importance.component;
    record.is_vertex = importance.is_vertex;
    record.birnbaum = importance.birnbaum;
    const auto [mtbf, mttr] = rates_of(record);
    record.mtbf_hours = mtbf;
    record.mttr_hours = mttr;
    const double denom = (mtbf + mttr) * (mtbf + mttr);
    record.dA_dMTBF = importance.birnbaum * mttr / denom;
    record.dA_dMTTR = -importance.birnbaum * mtbf / denom;
    record.downtime_saved_per_mttr_hour =
        -record.dA_dMTTR * 365.0 * 24.0;  // hours of downtime per year
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const SensitivityRecord& a, const SensitivityRecord& b) {
              const double da = std::abs(a.dA_dMTTR);
              const double db = std::abs(b.dA_dMTTR);
              if (da != db) return da > db;
              return a.component < b.component;
            });
  return records;
}

}  // namespace upsim::depend
