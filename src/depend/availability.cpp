#include "depend/availability.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace upsim::depend {

namespace {
void check(double mtbf, double mttr) {
  if (!(mtbf > 0.0)) {
    throw ModelError("availability: MTBF must be positive, got " +
                     std::to_string(mtbf));
  }
  if (!(mttr >= 0.0)) {
    throw ModelError("availability: MTTR must be non-negative, got " +
                     std::to_string(mttr));
  }
}
}  // namespace

double availability_exact(double mtbf_hours, double mttr_hours) {
  check(mtbf_hours, mttr_hours);
  return mtbf_hours / (mtbf_hours + mttr_hours);
}

double availability_linear(double mtbf_hours, double mttr_hours) {
  check(mtbf_hours, mttr_hours);
  return std::max(0.0, 1.0 - mttr_hours / mtbf_hours);
}

double availability_redundant(double a, int redundant_components) {
  if (!(a >= 0.0 && a <= 1.0)) {
    throw ModelError("availability must be within [0,1], got " +
                     std::to_string(a));
  }
  if (redundant_components < 0) {
    throw ModelError("redundantComponents must be >= 0");
  }
  // 1 - P(all 1 + r copies down)
  return 1.0 - std::pow(1.0 - a, redundant_components + 1);
}

}  // namespace upsim::depend
