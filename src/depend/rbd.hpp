// Reliability block diagrams (Sec. VII / ref. [20] of the paper).
//
// The outlook of the paper transforms a UPSIM into an RBD whose blocks are
// the UPSIM components: each discovered requester-provider path becomes a
// series arrangement, and the redundant paths are placed in parallel.  RBD
// evaluation assumes *independent* blocks; when paths share components (as
// they do in any real core network) this is an approximation whose error
// the library quantifies against the exact factoring computation in
// reliability.hpp (bench_availability, experiment E6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace upsim::depend {

enum class BlockKind : std::uint8_t { Basic, Series, Parallel, KofN };

class Block;
using BlockPtr = std::shared_ptr<const Block>;

/// A node of an RBD expression tree.
class Block {
 public:
  virtual ~Block() = default;
  [[nodiscard]] virtual BlockKind kind() const noexcept = 0;
  /// Probability the block is operational under block independence.
  [[nodiscard]] virtual double availability() const = 0;
  /// Number of basic blocks in the subtree (with multiplicity).
  [[nodiscard]] virtual std::size_t basic_count() const = 0;
  /// Compact textual rendering, e.g. "(t1*e1*d1*c1*d4*printS)".
  [[nodiscard]] virtual std::string to_string() const = 0;
  /// Children (empty for basic blocks).
  [[nodiscard]] virtual const std::vector<BlockPtr>& children() const = 0;
  /// Component name ("" for composite blocks).
  [[nodiscard]] virtual const std::string& block_name() const = 0;
  /// Threshold for k-of-n blocks; 0 otherwise.
  [[nodiscard]] virtual std::size_t threshold() const noexcept = 0;
};

/// A basic block: one component with a fixed availability.
[[nodiscard]] BlockPtr basic(std::string name, double availability);

/// Series arrangement: operational iff every child is.
[[nodiscard]] BlockPtr series(std::vector<BlockPtr> children);

/// Parallel arrangement: operational iff at least one child is.
[[nodiscard]] BlockPtr parallel(std::vector<BlockPtr> children);

/// k-out-of-n arrangement over identical-or-not children: operational iff
/// at least `k` children are.  Evaluated exactly via dynamic programming
/// over children (no identical-block assumption).
[[nodiscard]] BlockPtr k_of_n(std::size_t k, std::vector<BlockPtr> children);

/// Builds the paper's UPSIM->RBD transformation for one requester/provider
/// pair: parallel over paths, series over each path's components.
/// `component_paths` holds component names per discovered path and
/// `availability_of` maps names to block availabilities.
[[nodiscard]] BlockPtr rbd_from_paths(
    const std::vector<std::vector<std::string>>& component_paths,
    const std::function<double(const std::string&)>& availability_of);

}  // namespace upsim::depend
