// User-perceived performability (Sec. VII names performability [6] among
// the properties a UPSIM enables; Eusgeld et al. define it as performance
// weighted by the degraded states the system can be in).
//
// Model: every link carries a capacity ("throughput_mbps" graph attribute —
// the network profile's throughput of Fig. 7, carried over by the default
// projection).  In a random up/down state the pair's delivered throughput
// is the bottleneck capacity of the widest surviving path (capacity-aware
// routing), zero when disconnected.  The analysis reports
//
//   * the throughput distribution P(delivered >= level) per capacity level,
//   * the performability E[delivered throughput] — availability-weighted
//     capacity, collapsing to A * nominal when all paths have equal width.
//
// Evaluators mirror responsiveness: exact path enumeration (single pair,
// <= 25 paths) and Monte Carlo via widest-path queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depend/reliability.hpp"
#include "util/thread_pool.hpp"

namespace upsim::depend {

struct ThroughputModel {
  /// Edge attribute holding capacity; vertices are assumed to forward at
  /// line rate (devices are not capacity bottlenecks in this model).
  std::string attribute = "throughput_mbps";
  double edge_default = 1000.0;
};

struct PerformabilityResult {
  /// Distinct achievable throughput levels, descending, with
  /// P(delivered >= level).
  std::vector<std::pair<double, double>> distribution;
  double expected_throughput = 0.0;  ///< the performability measure
  double nominal_throughput = 0.0;   ///< all components up
  double availability = 0.0;         ///< P(delivered > 0)
};

/// Exact computation from the pair's complete simple-path set.  The
/// problem must have exactly one terminal pair; throws Error beyond 25
/// paths (use the Monte-Carlo variant).
[[nodiscard]] PerformabilityResult exact_performability(
    const ReliabilityProblem& problem, const ThroughputModel& throughput = {});

/// Monte-Carlo estimate (widest-path query per sample).
[[nodiscard]] PerformabilityResult monte_carlo_performability(
    const ReliabilityProblem& problem, const ThroughputModel& throughput,
    std::size_t samples, std::uint64_t seed,
    util::ThreadPool* pool = nullptr);

}  // namespace upsim::depend
