#include "depend/fault_tree.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::depend {

namespace {

const std::vector<FaultTreePtr> kNoChildren;
const std::string kNoName;

class BasicEvent final : public FaultTreeNode {
 public:
  BasicEvent(std::string name, double q) : name_(std::move(name)), q_(q) {
    if (!(q_ >= 0.0 && q_ <= 1.0)) {
      throw ModelError("fault tree event '" + name_ +
                       "': probability must be within [0,1]");
    }
  }
  [[nodiscard]] GateKind kind() const noexcept override {
    return GateKind::Basic;
  }
  [[nodiscard]] double probability() const override { return q_; }
  [[nodiscard]] std::string to_string() const override { return name_; }
  [[nodiscard]] const std::vector<FaultTreePtr>& children() const override {
    return kNoChildren;
  }
  [[nodiscard]] const std::string& event_name() const override { return name_; }
  [[nodiscard]] std::size_t threshold() const noexcept override { return 0; }

 private:
  std::string name_;
  double q_;
};

class Gate final : public FaultTreeNode {
 public:
  Gate(GateKind kind, std::size_t k, std::vector<FaultTreePtr> children)
      : kind_(kind), k_(k), children_(std::move(children)) {
    if (children_.empty()) throw ModelError("fault tree gate: no children");
    for (const FaultTreePtr& c : children_) {
      if (c == nullptr) throw ModelError("fault tree gate: null child");
    }
    if (kind_ == GateKind::KofN && (k_ == 0 || k_ > children_.size())) {
      throw ModelError("fault tree k-of-n gate: k must be within [1, n]");
    }
  }
  [[nodiscard]] GateKind kind() const noexcept override { return kind_; }
  [[nodiscard]] double probability() const override {
    switch (kind_) {
      case GateKind::And: {
        double p = 1.0;
        for (const FaultTreePtr& c : children_) p *= c->probability();
        return p;
      }
      case GateKind::Or: {
        double q = 1.0;
        for (const FaultTreePtr& c : children_) q *= 1.0 - c->probability();
        return 1.0 - q;
      }
      case GateKind::KofN: {
        std::vector<double> dp(children_.size() + 1, 0.0);
        dp[0] = 1.0;
        std::size_t processed = 0;
        for (const FaultTreePtr& c : children_) {
          const double p = c->probability();
          ++processed;
          for (std::size_t j = processed; j-- > 0;) {
            dp[j + 1] += dp[j] * p;
            dp[j] *= 1.0 - p;
          }
        }
        double total = 0.0;
        for (std::size_t j = k_; j <= children_.size(); ++j) total += dp[j];
        return total;
      }
      case GateKind::Basic: break;
    }
    throw InvariantError("unreachable fault-tree gate kind");
  }
  [[nodiscard]] std::string to_string() const override {
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const FaultTreePtr& c : children_) parts.push_back(c->to_string());
    switch (kind_) {
      case GateKind::And: return "AND(" + util::join(parts, ",") + ")";
      case GateKind::Or: return "OR(" + util::join(parts, ",") + ")";
      case GateKind::KofN:
        return std::to_string(k_) + "ofN(" + util::join(parts, ",") + ")";
      case GateKind::Basic: break;
    }
    throw InvariantError("unreachable fault-tree gate kind");
  }
  [[nodiscard]] const std::vector<FaultTreePtr>& children() const override {
    return children_;
  }
  [[nodiscard]] const std::string& event_name() const override {
    return kNoName;
  }
  [[nodiscard]] std::size_t threshold() const noexcept override {
    return kind_ == GateKind::KofN ? k_ : 0;
  }

 private:
  GateKind kind_;
  std::size_t k_;
  std::vector<FaultTreePtr> children_;
};

}  // namespace

FaultTreePtr failure_event(std::string name, double q) {
  return std::make_shared<BasicEvent>(std::move(name), q);
}

FaultTreePtr and_gate(std::vector<FaultTreePtr> children) {
  return std::make_shared<Gate>(GateKind::And, 0, std::move(children));
}

FaultTreePtr or_gate(std::vector<FaultTreePtr> children) {
  return std::make_shared<Gate>(GateKind::Or, 0, std::move(children));
}

FaultTreePtr k_of_n_gate(std::size_t k, std::vector<FaultTreePtr> children) {
  return std::make_shared<Gate>(GateKind::KofN, k, std::move(children));
}

FaultTreePtr fault_tree_from_paths(
    const std::vector<std::vector<std::string>>& component_paths,
    const std::function<double(const std::string&)>& unavailability_of) {
  if (component_paths.empty()) {
    throw ModelError("fault_tree_from_paths: no paths");
  }
  std::vector<FaultTreePtr> path_failures;
  path_failures.reserve(component_paths.size());
  for (const auto& path : component_paths) {
    if (path.empty()) throw ModelError("fault_tree_from_paths: empty path");
    std::vector<FaultTreePtr> events;
    events.reserve(path.size());
    for (const std::string& component : path) {
      events.push_back(failure_event(component, unavailability_of(component)));
    }
    path_failures.push_back(or_gate(std::move(events)));
  }
  return and_gate(std::move(path_failures));
}

namespace {

using CutSets = std::vector<CutSet>;

/// Removes non-minimal sets (absorption: drop any superset of another set).
CutSets absorb(CutSets sets) {
  std::sort(sets.begin(), sets.end(),
            [](const CutSet& a, const CutSet& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  CutSets minimal;
  for (CutSet& candidate : sets) {
    bool dominated = false;
    for (const CutSet& kept : minimal) {
      if (std::includes(candidate.begin(), candidate.end(), kept.begin(),
                        kept.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(std::move(candidate));
  }
  return minimal;
}

CutSets expand(const FaultTreePtr& node, const CutSetOptions& options) {
  auto guard = [&](const CutSets& sets) {
    if (options.max_working_sets != 0 &&
        sets.size() > options.max_working_sets) {
      throw Error("minimal_cut_sets: working set exceeded " +
                  std::to_string(options.max_working_sets) +
                  " cut sets; raise max_working_sets or bound max_order");
    }
  };
  switch (node->kind()) {
    case GateKind::Basic:
      return CutSets{CutSet{node->event_name()}};
    case GateKind::Or: {
      CutSets out;
      for (const FaultTreePtr& c : node->children()) {
        CutSets sub = expand(c, options);
        out.insert(out.end(), std::make_move_iterator(sub.begin()),
                   std::make_move_iterator(sub.end()));
        guard(out);
      }
      return absorb(std::move(out));
    }
    case GateKind::And: {
      CutSets out{CutSet{}};
      for (const FaultTreePtr& c : node->children()) {
        const CutSets sub = expand(c, options);
        CutSets next;
        next.reserve(out.size() * sub.size());
        for (const CutSet& left : out) {
          for (const CutSet& right : sub) {
            CutSet merged = left;
            merged.insert(right.begin(), right.end());
            if (options.max_order != 0 && merged.size() > options.max_order) {
              continue;
            }
            next.push_back(std::move(merged));
          }
        }
        guard(next);
        out = absorb(std::move(next));
      }
      return out;
    }
    case GateKind::KofN: {
      // k-of-n = OR over all k-subsets of AND over the subset members, so
      // expand each subset as a synthetic AND gate and union the results.
      const auto& children = node->children();
      const std::size_t n = children.size();
      const std::size_t k = node->threshold();
      CutSets out;
      std::vector<std::size_t> pick(k);
      for (std::size_t i = 0; i < k; ++i) pick[i] = i;
      for (;;) {
        std::vector<FaultTreePtr> subset;
        subset.reserve(k);
        for (const std::size_t i : pick) subset.push_back(children[i]);
        CutSets sub = expand(and_gate(std::move(subset)), options);
        out.insert(out.end(), std::make_move_iterator(sub.begin()),
                   std::make_move_iterator(sub.end()));
        guard(out);
        // Next combination in lexicographic order.
        std::size_t pos = k;
        while (pos-- > 0) {
          if (pick[pos] != pos + n - k) break;
          if (pos == 0) {
            return absorb(std::move(out));
          }
        }
        if (pick[pos] == pos + n - k) return absorb(std::move(out));
        ++pick[pos];
        for (std::size_t j = pos + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
      }
    }
  }
  throw InvariantError("unreachable fault-tree expansion");
}

}  // namespace

std::vector<CutSet> minimal_cut_sets(const FaultTreePtr& top,
                                     const CutSetOptions& options) {
  if (top == nullptr) throw ModelError("minimal_cut_sets: null tree");
  return expand(top, options);
}

double cut_set_upper_bound(
    const std::vector<CutSet>& cut_sets,
    const std::function<double(const std::string&)>& unavailability_of) {
  double total = 0.0;
  for (const CutSet& cs : cut_sets) {
    double p = 1.0;
    for (const std::string& component : cs) p *= unavailability_of(component);
    total += p;
  }
  return total;
}

}  // namespace upsim::depend
