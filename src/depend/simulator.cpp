#include "depend/simulator.hpp"

#include <deque>
#include <queue>

#include "depend/availability.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace upsim::depend {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::index;

SimulationModel SimulationModel::from_attributes(
    const Graph& g,
    std::vector<std::pair<VertexId, VertexId>> terminal_pairs) {
  SimulationModel model;
  model.g = &g;
  model.terminal_pairs = std::move(terminal_pairs);
  auto rates_from = [](const graph::AttributeMap& attrs,
                       const std::string& what) {
    const auto mtbf = attrs.find("mtbf");
    const auto mttr = attrs.find("mttr");
    if (mtbf == attrs.end() || mttr == attrs.end()) {
      throw NotFoundError(what + " lacks mtbf/mttr attributes");
    }
    return ComponentRates{mtbf->second, mttr->second};
  };
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto& vertex = g.vertex(VertexId{static_cast<std::uint32_t>(v)});
    model.vertex_rates.push_back(
        rates_from(vertex.attributes, "vertex '" + vertex.name + "'"));
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(EdgeId{static_cast<std::uint32_t>(e)});
    model.edge_rates.push_back(
        rates_from(edge.attributes, "edge '" + edge.name + "'"));
  }
  model.validate();
  return model;
}

ReliabilityProblem SimulationModel::steady_state_problem() const {
  validate();
  ReliabilityProblem problem;
  problem.g = g;
  problem.terminal_pairs = terminal_pairs;
  for (const ComponentRates& r : vertex_rates) {
    problem.vertex_availability.push_back(availability_exact(r.mtbf, r.mttr));
  }
  for (const ComponentRates& r : edge_rates) {
    problem.edge_availability.push_back(availability_exact(r.mtbf, r.mttr));
  }
  return problem;
}

void SimulationModel::validate() const {
  if (g == nullptr) throw ModelError("simulation model: no graph");
  if (vertex_rates.size() != g->vertex_count() ||
      edge_rates.size() != g->edge_count()) {
    throw ModelError("simulation model: rate vector size mismatch");
  }
  for (const auto* rates : {&vertex_rates, &edge_rates}) {
    for (const ComponentRates& r : *rates) {
      if (!(r.mtbf > 0.0) || !(r.mttr > 0.0)) {
        throw ModelError(
            "simulation model: MTBF and MTTR must be positive (a component "
            "that never fails or repairs instantly has no renewal process)");
      }
    }
  }
  if (terminal_pairs.empty()) {
    throw ModelError("simulation model: no terminal pairs");
  }
  for (const auto& [a, b] : terminal_pairs) {
    (void)g->vertex(a);
    (void)g->vertex(b);
  }
}

double SimulationResult::service_mtbf_hours() const noexcept {
  if (outages == 0) return 0.0;
  return uptime_hours / static_cast<double>(outages);
}

double SimulationResult::service_mttr_hours() const noexcept {
  if (outage_log.empty()) return 0.0;
  double total = 0.0;
  for (const OutageRecord& o : outage_log) total += o.duration_hours;
  return total / static_cast<double>(outage_log.size());
}

namespace {

/// Live component states during a run; vertices first, then edges.
struct LiveState {
  std::vector<bool> vertex_up;
  std::vector<bool> edge_up;
};

bool service_up(const Graph& g, const LiveState& st,
                const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  for (const auto& [s, t] : pairs) {
    if (!st.vertex_up[index(s)] || !st.vertex_up[index(t)]) return false;
    if (s == t) continue;
    std::vector<bool> seen(g.vertex_count(), false);
    std::deque<VertexId> queue{s};
    seen[index(s)] = true;
    bool reached = false;
    while (!queue.empty() && !reached) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const EdgeId e : g.incident_edges(v)) {
        if (!st.edge_up[index(e)]) continue;
        const VertexId w = g.opposite(e, v);
        if (seen[index(w)] || !st.vertex_up[index(w)]) continue;
        if (w == t) {
          reached = true;
          break;
        }
        seen[index(w)] = true;
        queue.push_back(w);
      }
    }
    if (!reached) return false;
  }
  return true;
}

}  // namespace

SimulationResult simulate(const SimulationModel& model,
                          const SimulationOptions& options) {
  model.validate();
  if (!(options.horizon_hours > 0.0)) {
    throw ModelError("simulate: horizon must be positive");
  }
  if (options.warmup_hours < 0.0 ||
      options.warmup_hours >= options.horizon_hours) {
    throw ModelError("simulate: warmup must be within [0, horizon)");
  }
  const Graph& g = *model.g;
  const std::size_t vertices = g.vertex_count();
  const std::size_t components = vertices + g.edge_count();
  util::Rng rng(options.seed);

  const auto rates_of = [&](std::size_t c) -> const ComponentRates& {
    return c < vertices ? model.vertex_rates[c]
                        : model.edge_rates[c - vertices];
  };

  LiveState state;
  state.vertex_up.assign(vertices, true);
  state.edge_up.assign(g.edge_count(), true);

  // Event queue: (time, component index).  Every component starts Up with
  // an exponential time-to-failure.
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  for (std::size_t c = 0; c < components; ++c) {
    events.emplace(rng.exponential(1.0 / rates_of(c).mtbf), c);
  }

  SimulationResult result;
  result.measured_hours = options.horizon_hours - options.warmup_hours;

  double now = 0.0;
  bool up = true;  // all components start Up, so the service starts up
  double last_change = 0.0;
  double outage_started = 0.0;

  auto measured_span = [&](double from, double to) {
    // Clips [from, to) to the measurement window.
    const double lo = std::max(from, options.warmup_hours);
    const double hi = std::min(to, options.horizon_hours);
    return std::max(0.0, hi - lo);
  };

  while (!events.empty()) {
    const auto [when, component] = events.top();
    events.pop();
    if (when >= options.horizon_hours) break;
    now = when;
    ++result.component_events;

    // Toggle the component and schedule its next transition.
    const bool was_up = component < vertices
                            ? state.vertex_up[component]
                            : state.edge_up[component - vertices];
    const bool is_up = !was_up;
    if (component < vertices) {
      state.vertex_up[component] = is_up;
    } else {
      state.edge_up[component - vertices] = is_up;
    }
    const ComponentRates& rates = rates_of(component);
    const double sojourn =
        rng.exponential(1.0 / (is_up ? rates.mtbf : rates.mttr));
    events.emplace(now + sojourn, component);

    // Re-evaluate the service only when its state can actually change:
    // repairs while up and failures of non-UPSIM-relevant parts are
    // filtered by the connectivity check itself.
    const bool now_up = service_up(g, state, model.terminal_pairs);
    if (now_up == up) continue;
    if (up) {
      // Service just failed.
      result.uptime_hours += measured_span(last_change, now);
      outage_started = now;
    } else {
      // Service just recovered; log the outage if it intersects the
      // measurement window.
      const double measured_outage = measured_span(outage_started, now);
      if (measured_outage > 0.0) {
        ++result.outages;
        result.outage_log.push_back(
            OutageRecord{std::max(outage_started, options.warmup_hours),
                         measured_outage});
      }
    }
    up = now_up;
    last_change = now;
  }

  // Close the final interval at the horizon.
  if (up) {
    result.uptime_hours += measured_span(last_change, options.horizon_hours);
  } else {
    const double measured_outage =
        measured_span(outage_started, options.horizon_hours);
    if (measured_outage > 0.0) {
      ++result.outages;
      result.outage_log.push_back(
          OutageRecord{std::max(outage_started, options.warmup_hours),
                       measured_outage});
    }
  }
  return result;
}

}  // namespace upsim::depend
