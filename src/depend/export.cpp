#include "depend/export.hpp"

#include <functional>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::depend {

std::string to_dot(const BlockPtr& rbd, std::string_view graph_name) {
  if (rbd == nullptr) throw ModelError("to_dot: null RBD");
  std::string out = "digraph " + std::string(graph_name) + " {\n";
  std::size_t counter = 0;
  const std::function<std::size_t(const BlockPtr&)> emit =
      [&](const BlockPtr& node) -> std::size_t {
    const std::size_t id = counter++;
    std::string label;
    std::string shape = "ellipse";
    switch (node->kind()) {
      case BlockKind::Basic:
        shape = "box";
        label = node->block_name() + "\\nA=" +
                util::format_sig(node->availability(), 6);
        break;
      case BlockKind::Series:
        label = "series\\nA=" + util::format_sig(node->availability(), 6);
        break;
      case BlockKind::Parallel:
        label = "parallel\\nA=" + util::format_sig(node->availability(), 6);
        break;
      case BlockKind::KofN:
        label = std::to_string(node->threshold()) + "-of-" +
                std::to_string(node->children().size()) + "\\nA=" +
                util::format_sig(node->availability(), 6);
        break;
    }
    out += "  n" + std::to_string(id) + " [shape=" + shape + ", label=\"" +
           label + "\"];\n";
    for (const BlockPtr& child : node->children()) {
      const std::size_t child_id = emit(child);
      out += "  n" + std::to_string(id) + " -> n" + std::to_string(child_id) +
             ";\n";
    }
    return id;
  };
  emit(rbd);
  out += "}\n";
  return out;
}

std::string to_dot(const FaultTreePtr& tree, std::string_view graph_name) {
  if (tree == nullptr) throw ModelError("to_dot: null fault tree");
  std::string out = "digraph " + std::string(graph_name) + " {\n";
  std::size_t counter = 0;
  const std::function<std::size_t(const FaultTreePtr&)> emit =
      [&](const FaultTreePtr& node) -> std::size_t {
    const std::size_t id = counter++;
    std::string label;
    std::string shape;
    switch (node->kind()) {
      case GateKind::Basic:
        shape = "circle";
        label = node->event_name() + "\\nq=" +
                util::format_sig(node->probability(), 4);
        break;
      case GateKind::And:
        shape = "box";
        label = "AND";
        break;
      case GateKind::Or:
        shape = "box";
        label = "OR";
        break;
      case GateKind::KofN:
        shape = "box";
        label = std::to_string(node->threshold()) + "-of-" +
                std::to_string(node->children().size());
        break;
    }
    out += "  n" + std::to_string(id) + " [shape=" + shape + ", label=\"" +
           label + "\"];\n";
    for (const FaultTreePtr& child : node->children()) {
      const std::size_t child_id = emit(child);
      out += "  n" + std::to_string(id) + " -> n" + std::to_string(child_id) +
             ";\n";
    }
    return id;
  };
  emit(tree);
  out += "}\n";
  return out;
}

}  // namespace upsim::depend
