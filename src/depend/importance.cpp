#include "depend/importance.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace upsim::depend {

std::vector<ImportanceRecord> importance_ranking(
    const ReliabilityProblem& problem, const ImportanceOptions& options) {
  problem.validate();
  const graph::Graph& g = *problem.g;
  const double baseline = exact_availability(problem, options.exact);
  const double baseline_risk = 1.0 - baseline;

  std::vector<ImportanceRecord> records;
  const std::size_t edge_count = options.include_edges ? g.edge_count() : 0;
  records.reserve(g.vertex_count() + edge_count);

  auto evaluate = [&](bool is_vertex, std::size_t i) {
    ImportanceRecord record;
    record.is_vertex = is_vertex;
    if (is_vertex) {
      const auto id = graph::VertexId{static_cast<std::uint32_t>(i)};
      record.component = g.vertex(id).name;
      record.availability = problem.vertex_availability[i];
    } else {
      const auto id = graph::EdgeId{static_cast<std::uint32_t>(i)};
      record.component = g.edge(id).name;
      record.availability = problem.edge_availability[i];
    }
    auto conditioned = problem;
    auto& slot = record.is_vertex ? conditioned.vertex_availability[i]
                                  : conditioned.edge_availability[i];
    slot = 0.0;
    record.system_when_down = exact_availability(conditioned, options.exact);
    slot = 1.0;
    record.system_when_up = exact_availability(conditioned, options.exact);

    record.birnbaum = record.system_when_up - record.system_when_down;
    record.improvement_potential = record.system_when_up - baseline;
    record.risk_achievement_worth =
        baseline_risk > 0.0 ? (1.0 - record.system_when_down) / baseline_risk
                            : 1.0;
    const double residual_risk = 1.0 - record.system_when_up;
    record.risk_reduction_worth =
        residual_risk > 0.0 ? baseline_risk / residual_risk
                            : std::numeric_limits<double>::infinity();
    records.push_back(std::move(record));
  };

  for (std::size_t v = 0; v < g.vertex_count(); ++v) evaluate(true, v);
  for (std::size_t e = 0; e < edge_count; ++e) evaluate(false, e);

  std::sort(records.begin(), records.end(),
            [](const ImportanceRecord& a, const ImportanceRecord& b) {
              if (a.birnbaum != b.birnbaum) return a.birnbaum > b.birnbaum;
              return a.component < b.component;
            });
  return records;
}

}  // namespace upsim::depend
