// Operational translations of an availability figure — the units service
// level agreements are written in.
#pragma once

#include <string>

namespace upsim::depend {

/// Expected downtime per year (8760 h) for steady-state availability `a`.
/// Throws ModelError unless a is within [0, 1].
[[nodiscard]] double downtime_hours_per_year(double a);

/// Expected downtime per 30-day month, minutes.
[[nodiscard]] double downtime_minutes_per_month(double a);

/// The "number of nines" of an availability: floor(-log10(1 - a)), capped
/// at 9 for display; a == 1 reports 9.  Throws outside [0, 1].
[[nodiscard]] int nines(double a);

/// Human-readable availability class, e.g. "99.99% (4 nines)".
[[nodiscard]] std::string availability_class(double a);

/// True if availability `a` satisfies an SLA target (e.g. target = 0.999).
/// Both must be within [0, 1].
[[nodiscard]] bool meets_sla(double a, double target);

}  // namespace upsim::depend
