#include "depend/bdd_availability.hpp"

#include <unordered_map>

#include "bdd/bdd.hpp"
#include "pathdisc/path_discovery.hpp"
#include "util/error.hpp"

namespace upsim::depend {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::index;

BddAvailabilityResult bdd_availability(const ReliabilityProblem& problem,
                                       const BddOptions& options) {
  problem.validate();
  if (problem.terminal_pairs.size() != 1) {
    throw ModelError("bdd_availability: exactly one terminal pair expected");
  }
  const Graph& g = *problem.g;
  const auto [s, t] = problem.terminal_pairs[0];
  const auto set = pathdisc::discover(g, s, t);
  BddAvailabilityResult result;
  result.paths = set.count();
  if (set.empty()) return result;
  if (set.count() > options.max_paths) {
    throw Error("bdd_availability: " + std::to_string(set.count()) +
                " paths exceed max_paths");
  }

  // Assign BDD variables to components in first-appearance order along the
  // paths (vertices and edges interleaved as encountered) — a natural
  // ordering heuristic for unions of path functions.
  bdd::Manager manager(g.vertex_count() + g.edge_count());
  std::vector<std::int64_t> vertex_var(g.vertex_count(), -1);
  std::vector<std::int64_t> edge_var(g.edge_count(), -1);
  std::vector<double> probabilities(manager.variable_count(), 1.0);
  std::size_t next_var = 0;
  auto var_of_vertex = [&](VertexId v) {
    if (vertex_var[index(v)] < 0) {
      vertex_var[index(v)] = static_cast<std::int64_t>(next_var);
      probabilities[next_var] = problem.vertex_availability[index(v)];
      ++next_var;
    }
    return manager.variable(
        static_cast<std::size_t>(vertex_var[index(v)]));
  };
  auto var_of_edge = [&](EdgeId e) {
    if (edge_var[index(e)] < 0) {
      edge_var[index(e)] = static_cast<std::int64_t>(next_var);
      probabilities[next_var] = problem.edge_availability[index(e)];
      ++next_var;
    }
    return manager.variable(static_cast<std::size_t>(edge_var[index(e)]));
  };

  bdd::Manager::Ref connected = bdd::Manager::kFalse;
  for (const auto& path : set.paths) {
    bdd::Manager::Ref path_up = bdd::Manager::kTrue;
    for (std::size_t i = 0; i < path.size(); ++i) {
      path_up = manager.bdd_and(path_up, var_of_vertex(path[i]));
      if (i + 1 < path.size()) {
        // Hop works iff ANY parallel edge between the endpoints works —
        // exact treatment of redundant links.
        bdd::Manager::Ref hop = bdd::Manager::kFalse;
        for (const EdgeId e : g.incident_edges(path[i])) {
          if (g.opposite(e, path[i]) != path[i + 1]) continue;
          hop = manager.bdd_or(hop, var_of_edge(e));
        }
        path_up = manager.bdd_and(path_up, hop);
      }
    }
    connected = manager.bdd_or(connected, path_up);
  }

  result.bdd_nodes = manager.size(connected);
  result.availability = manager.probability(connected, probabilities);
  return result;
}

}  // namespace upsim::depend
