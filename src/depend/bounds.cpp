#include "depend/bounds.hpp"

#include <algorithm>
#include <unordered_map>

#include "depend/fault_tree.hpp"
#include "pathdisc/path_discovery.hpp"
#include "util/error.hpp"

namespace upsim::depend {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::index;

AvailabilityBounds esary_proschan_bounds(const ReliabilityProblem& problem,
                                         const BoundsOptions& options) {
  problem.validate();
  if (problem.terminal_pairs.size() != 1) {
    throw ModelError("esary_proschan_bounds: exactly one terminal pair "
                     "expected");
  }
  const Graph& g = *problem.g;
  const auto [s, t] = problem.terminal_pairs[0];
  const auto set = pathdisc::discover(g, s, t);

  AvailabilityBounds bounds;
  if (set.empty()) {
    bounds.upper = 0.0;
    return bounds;  // disconnected: A == 0, both bounds trivially 0
  }

  // Component name -> availability, and the per-path component lists
  // (vertices plus the most available edge per hop).
  std::unordered_map<std::string, double> availability;
  std::vector<std::vector<std::string>> component_paths;
  component_paths.reserve(set.count());
  for (const auto& path : set.paths) {
    std::vector<std::string> components;
    for (std::size_t i = 0; i < path.size(); ++i) {
      const graph::Vertex& v = g.vertex(path[i]);
      components.push_back(v.name);
      availability.emplace(v.name,
                           problem.vertex_availability[index(path[i])]);
      if (i + 1 < path.size()) {
        const graph::Edge* best = nullptr;
        double best_a = -1.0;
        for (const EdgeId e : g.incident_edges(path[i])) {
          if (g.opposite(e, path[i]) != path[i + 1]) continue;
          const double a = problem.edge_availability[index(e)];
          if (a > best_a) {
            best_a = a;
            best = &g.edge(e);
          }
        }
        UPSIM_ASSERT(best != nullptr);
        components.push_back(best->name);
        availability.emplace(best->name, best_a);
      }
    }
    component_paths.push_back(std::move(components));
  }
  bounds.path_sets = component_paths.size();

  // Upper bound: 1 - prod over paths (1 - prod a_i).
  double product_of_path_failures = 1.0;
  for (const auto& path : component_paths) {
    double path_up = 1.0;
    for (const std::string& component : path) {
      path_up *= availability.at(component);
    }
    product_of_path_failures *= 1.0 - path_up;
  }
  bounds.upper = 1.0 - product_of_path_failures;

  // Lower bound: cut sets from the dual fault tree.
  const auto tree = fault_tree_from_paths(
      component_paths, [&](const std::string& component) {
        return 1.0 - availability.at(component);
      });
  CutSetOptions cut_options;
  cut_options.max_working_sets = options.max_working_sets;
  const auto cuts = minimal_cut_sets(tree, cut_options);
  bounds.cut_sets = cuts.size();
  double product_over_cuts = 1.0;
  for (const CutSet& cut : cuts) {
    double all_down = 1.0;
    for (const std::string& component : cut) {
      all_down *= 1.0 - availability.at(component);
    }
    product_over_cuts *= 1.0 - all_down;
  }
  bounds.lower = product_over_cuts;
  return bounds;
}

}  // namespace upsim::depend
