#include "depend/responsiveness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pathdisc/path_discovery.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace upsim::depend {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::index;

namespace {

double attribute_or(const graph::AttributeMap& attrs, const std::string& key,
                    double fallback) {
  const auto it = attrs.find(key);
  return it == attrs.end() ? fallback : it->second;
}

void check_single_pair(const ReliabilityProblem& problem) {
  problem.validate();
  if (problem.terminal_pairs.size() != 1) {
    throw ModelError(
        "responsiveness: exactly one terminal pair expected (analyse atomic "
        "services separately)");
  }
}

std::vector<double> sorted_deadlines(std::vector<double> deadlines) {
  if (deadlines.empty()) {
    throw ModelError("responsiveness: no deadlines given");
  }
  for (const double d : deadlines) {
    if (!(d >= 0.0)) {
      throw ModelError("responsiveness: deadlines must be non-negative");
    }
  }
  std::sort(deadlines.begin(), deadlines.end());
  return deadlines;
}

}  // namespace

double path_latency_ms(const Graph& g, const std::vector<VertexId>& path,
                       const LatencyModel& latency) {
  if (path.empty()) throw ModelError("path_latency_ms: empty path");
  double total = 0.0;
  for (const VertexId v : path) {
    total += attribute_or(g.vertex(v).attributes, latency.attribute,
                          latency.vertex_default_ms);
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const EdgeId e : g.incident_edges(path[i])) {
      if (g.opposite(e, path[i]) != path[i + 1]) continue;
      best = std::min(best, attribute_or(g.edge(e).attributes,
                                         latency.attribute,
                                         latency.edge_default_ms));
    }
    if (!std::isfinite(best)) {
      throw ModelError("path_latency_ms: non-adjacent hop in path");
    }
    total += best;
  }
  return total;
}

ResponsivenessResult monte_carlo_responsiveness(
    const ReliabilityProblem& problem, const LatencyModel& latency,
    std::vector<double> deadlines_ms, std::size_t samples, std::uint64_t seed,
    util::ThreadPool* pool) {
  check_single_pair(problem);
  if (samples == 0) throw ModelError("responsiveness: 0 samples");
  const Graph& g = *problem.g;
  const auto [s, t] = problem.terminal_pairs[0];

  ResponsivenessResult result;
  result.deadlines_ms = sorted_deadlines(std::move(deadlines_ms));
  const auto weights =
      graph::attribute_weights(g, latency.attribute, latency.vertex_default_ms,
                               latency.attribute, latency.edge_default_ms);
  {
    const auto baseline = graph::shortest_path(g, s, t, weights);
    result.best_case_ms = baseline.reachable()
                              ? baseline.cost
                              : std::numeric_limits<double>::infinity();
  }

  struct Counts {
    std::vector<std::size_t> within;  // per deadline
    std::size_t connected = 0;
  };
  auto run_block = [&](util::Rng rng, std::size_t n) {
    Counts counts;
    counts.within.assign(result.deadlines_ms.size(), 0);
    std::vector<bool> vertex_up(g.vertex_count());
    std::vector<bool> edge_up(g.edge_count());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t v = 0; v < vertex_up.size(); ++v) {
        vertex_up[v] = rng.bernoulli(problem.vertex_availability[v]);
      }
      for (std::size_t e = 0; e < edge_up.size(); ++e) {
        edge_up[e] = rng.bernoulli(problem.edge_availability[e]);
      }
      const auto sp = graph::shortest_path(
          g, s, t, weights,
          [&](VertexId v) { return vertex_up[index(v)]; },
          [&](EdgeId e) { return edge_up[index(e)]; });
      if (!sp.reachable()) continue;
      ++counts.connected;
      for (std::size_t d = 0; d < result.deadlines_ms.size(); ++d) {
        if (sp.cost <= result.deadlines_ms[d]) ++counts.within[d];
      }
    }
    return counts;
  };

  util::Rng master(seed);
  Counts total;
  total.within.assign(result.deadlines_ms.size(), 0);
  if (pool == nullptr) {
    total = run_block(master.fork(), samples);
  } else {
    const std::size_t blocks = std::max<std::size_t>(1, pool->thread_count());
    const std::size_t per_block = samples / blocks;
    std::vector<util::Rng> rngs;
    rngs.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) rngs.push_back(master.fork());
    std::vector<Counts> partial(blocks);
    pool->parallel_for(blocks, [&](std::size_t b) {
      const std::size_t n =
          b + 1 == blocks ? samples - per_block * (blocks - 1) : per_block;
      partial[b] = run_block(std::move(rngs[b]), n);
    });
    for (const Counts& c : partial) {
      total.connected += c.connected;
      for (std::size_t d = 0; d < total.within.size(); ++d) {
        total.within[d] += c.within[d];
      }
    }
  }

  result.availability =
      static_cast<double>(total.connected) / static_cast<double>(samples);
  result.probability.reserve(result.deadlines_ms.size());
  for (const std::size_t hits : total.within) {
    result.probability.push_back(static_cast<double>(hits) /
                                 static_cast<double>(samples));
  }
  return result;
}

ResponsivenessResult exact_responsiveness(const ReliabilityProblem& problem,
                                          const LatencyModel& latency,
                                          std::vector<double> deadlines_ms) {
  check_single_pair(problem);
  const Graph& g = *problem.g;
  const auto [s, t] = problem.terminal_pairs[0];

  const auto set = pathdisc::discover(g, s, t);
  if (set.count() > 25) {
    throw Error("exact_responsiveness: " + std::to_string(set.count()) +
                " paths exceed the 2^25 inclusion-exclusion budget; use "
                "monte_carlo_responsiveness");
  }

  ResponsivenessResult result;
  result.deadlines_ms = sorted_deadlines(std::move(deadlines_ms));

  // Per path: latency and the component index sets of its up-event.
  struct PathEvent {
    double latency_ms;
    std::vector<std::uint32_t> vertices;
    std::vector<std::uint32_t> edges;
  };
  std::vector<PathEvent> events;
  events.reserve(set.count());
  for (const auto& path : set.paths) {
    PathEvent event;
    event.latency_ms = path_latency_ms(g, path, latency);
    for (const VertexId v : path) event.vertices.push_back(index(v));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      // The minimum-latency edge per hop defines the routed path; parallel
      // higher-latency links are ignored, a documented approximation that
      // is exact on graphs without parallel edges.
      std::optional<EdgeId> best;
      double best_latency = std::numeric_limits<double>::infinity();
      for (const EdgeId e : g.incident_edges(path[i])) {
        if (g.opposite(e, path[i]) != path[i + 1]) continue;
        const double l = attribute_or(g.edge(e).attributes, latency.attribute,
                                      latency.edge_default_ms);
        if (l < best_latency) {
          best_latency = l;
          best = e;
        }
      }
      UPSIM_ASSERT(best.has_value());
      event.edges.push_back(index(*best));
    }
    events.push_back(std::move(event));
  }
  std::sort(events.begin(), events.end(),
            [](const PathEvent& a, const PathEvent& b) {
              return a.latency_ms < b.latency_ms;
            });
  result.best_case_ms = events.empty()
                            ? std::numeric_limits<double>::infinity()
                            : events.front().latency_ms;

  // P(union of the first k path-up events) by inclusion-exclusion.
  auto union_probability = [&](std::size_t k) {
    if (k == 0) return 0.0;
    std::vector<bool> vertex_in(g.vertex_count());
    std::vector<bool> edge_in(g.edge_count());
    double total = 0.0;
    for (std::uint64_t mask = 1; mask < (1ULL << k); ++mask) {
      std::fill(vertex_in.begin(), vertex_in.end(), false);
      std::fill(edge_in.begin(), edge_in.end(), false);
      int bits = 0;
      for (std::size_t i = 0; i < k; ++i) {
        if ((mask >> i & 1ULL) == 0) continue;
        ++bits;
        for (const std::uint32_t v : events[i].vertices) vertex_in[v] = true;
        for (const std::uint32_t e : events[i].edges) edge_in[e] = true;
      }
      double p = 1.0;
      for (std::size_t v = 0; v < vertex_in.size(); ++v) {
        if (vertex_in[v]) p *= problem.vertex_availability[v];
      }
      for (std::size_t e = 0; e < edge_in.size(); ++e) {
        if (edge_in[e]) p *= problem.edge_availability[e];
      }
      total += (bits % 2 == 1) ? p : -p;
    }
    return total;
  };

  // Response time <= d iff some path with latency <= d is fully up
  // (the router always picks the cheapest working path, and any working
  // path with latency <= d witnesses the event).
  result.probability.reserve(result.deadlines_ms.size());
  for (const double deadline : result.deadlines_ms) {
    std::size_t k = 0;
    while (k < events.size() && events[k].latency_ms <= deadline) ++k;
    result.probability.push_back(union_probability(k));
  }
  result.availability = union_probability(events.size());
  return result;
}

}  // namespace upsim::depend
