// Transient (point-in-time) availability — what a user perceives in the
// hours after a maintenance window, before the steady state of Formula 1
// is reached.
//
// Each component alternates Up/Down with exponential rates lambda = 1/MTBF
// and mu = 1/MTTR.  Starting Up at t = 0 (all components fresh, e.g. after
// maintenance), the instantaneous availability of one component is the
// classic alternating-renewal solution
//
//   A_i(t) = mu/(lambda+mu) + lambda/(lambda+mu) * exp(-(lambda+mu) t),
//
// which decays from 1 to the steady-state value.  Components stay
// independent, so the system-level curve is the exact (reduced factoring)
// availability evaluated with the per-time component vectors.  A(0) = 1
// whenever the pair is connected, A(inf) equals the steady-state value —
// both property-tested, along with the closed form itself.
#pragma once

#include <vector>

#include "depend/simulator.hpp"

namespace upsim::depend {

/// Instantaneous availability of one component starting Up at t = 0.
/// Requires mtbf > 0, mttr > 0, t >= 0.
[[nodiscard]] double component_transient_availability(double mtbf_hours,
                                                      double mttr_hours,
                                                      double t_hours);

struct TransientPoint {
  double t_hours = 0.0;
  double availability = 0.0;
};

/// System transient availability at each requested time (sorted copies of
/// `times_hours`), via series-parallel-reduced exact factoring per point.
[[nodiscard]] std::vector<TransientPoint> transient_availability(
    const SimulationModel& model, std::vector<double> times_hours,
    const ExactOptions& options = {});

}  // namespace upsim::depend
