// Component importance measures on a reliability problem (Sec. VII: the
// UPSIM "provides a quick overview on which ICT components can be the
// cause" of a service problem — these measures rank that overview).
//
// All measures condition the exact factoring computation on one component
// being forced Up or Down:
//   Birnbaum          B_i  = A(1_i) - A(0_i)       (structural criticality)
//   improvement       IP_i = A(1_i) - A            (what a perfect i buys)
//   risk achievement  RAW_i = U(0_i) / U           (how much worse if i dies)
//   risk reduction    RRW_i = U / U(1_i)           (how much better if i is
//                                                   perfect; inf for single
//                                                   points of failure)
// with A the system availability, U = 1 - A, and A(x_i) the availability
// with component i forced to state x.
#pragma once

#include <string>
#include <vector>

#include "depend/reliability.hpp"

namespace upsim::depend {

struct ImportanceRecord {
  std::string component;   ///< vertex or edge name
  bool is_vertex = true;
  double availability = 0.0;      ///< the component's own availability
  double system_when_down = 0.0;  ///< A(0_i)
  double system_when_up = 0.0;    ///< A(1_i)
  double birnbaum = 0.0;
  double improvement_potential = 0.0;
  double risk_achievement_worth = 0.0;  ///< >= 1
  double risk_reduction_worth = 0.0;    ///< >= 1; infinity() for SPOFs

  /// True if the service cannot work without this component.
  [[nodiscard]] bool single_point_of_failure() const noexcept {
    return system_when_down == 0.0;
  }
};

struct ImportanceOptions {
  bool include_edges = true;  ///< also rank links, not only devices
  ExactOptions exact;
};

/// Computes all measures for every component, sorted by descending
/// Birnbaum importance (ties broken by name).  Cost: two exact
/// evaluations per component.
[[nodiscard]] std::vector<ImportanceRecord> importance_ranking(
    const ReliabilityProblem& problem, const ImportanceOptions& options = {});

}  // namespace upsim::depend
