#include "depend/transient.hpp"

#include <algorithm>
#include <cmath>

#include "depend/reduction.hpp"
#include "util/error.hpp"

namespace upsim::depend {

double component_transient_availability(double mtbf_hours, double mttr_hours,
                                        double t_hours) {
  if (!(mtbf_hours > 0.0) || !(mttr_hours > 0.0)) {
    throw ModelError("transient availability: MTBF and MTTR must be positive");
  }
  if (!(t_hours >= 0.0)) {
    throw ModelError("transient availability: t must be non-negative");
  }
  const double lambda = 1.0 / mtbf_hours;
  const double mu = 1.0 / mttr_hours;
  const double rate = lambda + mu;
  // mu/rate + lambda/rate can round to 1 + epsilon at t = 0; clamp so the
  // result is a valid probability.
  return std::min(1.0,
                  mu / rate + (lambda / rate) * std::exp(-rate * t_hours));
}

std::vector<TransientPoint> transient_availability(
    const SimulationModel& model, std::vector<double> times_hours,
    const ExactOptions& options) {
  model.validate();
  if (times_hours.empty()) {
    throw ModelError("transient availability: no time points");
  }
  std::sort(times_hours.begin(), times_hours.end());
  if (times_hours.front() < 0.0) {
    throw ModelError("transient availability: negative time point");
  }

  ReliabilityProblem problem;
  problem.g = model.g;
  problem.terminal_pairs = model.terminal_pairs;
  problem.vertex_availability.resize(model.vertex_rates.size());
  problem.edge_availability.resize(model.edge_rates.size());

  std::vector<TransientPoint> out;
  out.reserve(times_hours.size());
  for (const double t : times_hours) {
    for (std::size_t v = 0; v < model.vertex_rates.size(); ++v) {
      problem.vertex_availability[v] = component_transient_availability(
          model.vertex_rates[v].mtbf, model.vertex_rates[v].mttr, t);
    }
    for (std::size_t e = 0; e < model.edge_rates.size(); ++e) {
      problem.edge_availability[e] = component_transient_availability(
          model.edge_rates[e].mtbf, model.edge_rates[e].mttr, t);
    }
    out.push_back(
        TransientPoint{t, exact_availability_reduced(problem, options)});
  }
  return out;
}

}  // namespace upsim::depend
