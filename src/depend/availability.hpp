// Steady-state component availability (Formula 1 of the paper).
//
// The paper computes A = 1 - MTTR/MTBF, the first-order approximation of
// the exact steady-state availability A = MTBF / (MTBF + MTTR).  Both are
// provided: `linear` reproduces the paper's numbers, `exact` is the default
// everywhere else in the library.  The two agree to O((MTTR/MTBF)^2), i.e.
// to ~1e-8 for the case-study components, and EXPERIMENTS.md reports both.
#pragma once

namespace upsim::depend {

/// Exact steady-state availability MTBF / (MTBF + MTTR).
/// Requires mtbf > 0 and mttr >= 0; throws ModelError otherwise.
[[nodiscard]] double availability_exact(double mtbf_hours, double mttr_hours);

/// The paper's linearised Formula 1: A = 1 - MTTR / MTBF, clamped to >= 0
/// (the approximation goes negative once MTTR > MTBF).
/// Requires mtbf > 0 and mttr >= 0; throws ModelError otherwise.
[[nodiscard]] double availability_linear(double mtbf_hours, double mttr_hours);

/// Availability of 1-out-of-(1+r) identical redundant components, each with
/// availability `a` — models the redundantComponents stereotype attribute:
/// the component set fails only when the primary and all r spares are down.
[[nodiscard]] double availability_redundant(double a, int redundant_components);

}  // namespace upsim::depend
