#include "depend/reduction.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "util/error.hpp"

namespace upsim::depend {

using graph::Graph;
using graph::VertexId;
using graph::index;

namespace {

/// Mutable working copy during reduction.
struct Work {
  struct Edge {
    std::size_t a;
    std::size_t b;
    double availability;
    bool alive = true;
  };
  std::vector<bool> vertex_alive;
  std::vector<double> vertex_availability;
  std::vector<bool> is_terminal;
  std::vector<Edge> edges;
  std::vector<std::set<std::size_t>> incident;  // vertex -> edge indices

  std::size_t degree(std::size_t v) const { return incident[v].size(); }

  std::size_t opposite(std::size_t e, std::size_t v) const {
    return edges[e].a == v ? edges[e].b : edges[e].a;
  }

  void kill_edge(std::size_t e) {
    if (!edges[e].alive) return;
    edges[e].alive = false;
    incident[edges[e].a].erase(e);
    incident[edges[e].b].erase(e);
  }

  void kill_vertex(std::size_t v) {
    vertex_alive[v] = false;
    const auto incident_copy = incident[v];
    for (const std::size_t e : incident_copy) kill_edge(e);
  }

  std::size_t add_edge(std::size_t a, std::size_t b, double availability) {
    const std::size_t e = edges.size();
    edges.push_back(Edge{a, b, availability, true});
    incident[a].insert(e);
    incident[b].insert(e);
    return e;
  }
};

}  // namespace

ReducedProblem reduce(const ReliabilityProblem& problem) {
  problem.validate();
  const Graph& g = *problem.g;

  Work work;
  work.vertex_alive.assign(g.vertex_count(), true);
  work.vertex_availability = problem.vertex_availability;
  work.is_terminal.assign(g.vertex_count(), false);
  for (const auto& [s, t] : problem.terminal_pairs) {
    work.is_terminal[index(s)] = true;
    work.is_terminal[index(t)] = true;
  }
  work.incident.resize(g.vertex_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(graph::EdgeId{static_cast<std::uint32_t>(e)});
    work.add_edge(index(edge.a), index(edge.b), problem.edge_availability[e]);
  }

  ReducedProblem out;
  bool changed = true;
  while (changed) {
    changed = false;
    // 1. Dangling non-terminal vertices.
    for (std::size_t v = 0; v < work.vertex_alive.size(); ++v) {
      if (!work.vertex_alive[v] || work.is_terminal[v]) continue;
      if (work.degree(v) <= 1) {
        work.kill_vertex(v);
        ++out.removed_vertices;
        changed = true;
      }
    }
    // 2. Parallel edges.
    for (std::size_t v = 0; v < work.vertex_alive.size(); ++v) {
      if (!work.vertex_alive[v]) continue;
      // Group incident edges by the opposite endpoint.
      std::vector<std::size_t> incident(work.incident[v].begin(),
                                        work.incident[v].end());
      std::sort(incident.begin(), incident.end(),
                [&](std::size_t x, std::size_t y) {
                  return work.opposite(x, v) < work.opposite(y, v);
                });
      for (std::size_t i = 0; i + 1 < incident.size();) {
        const std::size_t e1 = incident[i];
        const std::size_t e2 = incident[i + 1];
        if (work.opposite(e1, v) != work.opposite(e2, v)) {
          ++i;
          continue;
        }
        // Merge e2 into e1 (process each unordered pair once: when v is
        // the smaller endpoint, or always — merging twice is prevented by
        // the kill).
        work.edges[e1].availability =
            1.0 - (1.0 - work.edges[e1].availability) *
                      (1.0 - work.edges[e2].availability);
        work.kill_edge(e2);
        incident.erase(incident.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        ++out.merged_edges;
        changed = true;
      }
    }
    // 3. Series contraction of non-terminal degree-2 vertices.
    for (std::size_t v = 0; v < work.vertex_alive.size(); ++v) {
      if (!work.vertex_alive[v] || work.is_terminal[v]) continue;
      if (work.degree(v) != 2) continue;
      const auto it = work.incident[v].begin();
      const std::size_t e1 = *it;
      const std::size_t e2 = *std::next(it);
      const std::size_t x = work.opposite(e1, v);
      const std::size_t y = work.opposite(e2, v);
      if (x == y) {
        // A pendant cycle through v adds no s-t connectivity: drop it.
        work.kill_vertex(v);
        ++out.removed_vertices;
        changed = true;
        continue;
      }
      const double merged = work.edges[e1].availability *
                            work.vertex_availability[v] *
                            work.edges[e2].availability;
      work.kill_vertex(v);
      work.add_edge(x, y, merged);
      ++out.removed_vertices;
      changed = true;
    }
  }

  // Materialise the reduced graph and problem.
  out.graph = std::make_unique<Graph>();
  std::vector<std::int64_t> new_id(work.vertex_alive.size(), -1);
  ReliabilityProblem reduced;
  for (std::size_t v = 0; v < work.vertex_alive.size(); ++v) {
    if (!work.vertex_alive[v]) continue;
    const auto& src = g.vertex(VertexId{static_cast<std::uint32_t>(v)});
    new_id[v] = static_cast<std::int64_t>(
        index(out.graph->add_vertex(src.name, src.type)));
    reduced.vertex_availability.push_back(work.vertex_availability[v]);
  }
  for (const Work::Edge& e : work.edges) {
    if (!e.alive) continue;
    out.graph->add_edge(
        VertexId{static_cast<std::uint32_t>(new_id[e.a])},
        VertexId{static_cast<std::uint32_t>(new_id[e.b])});
    reduced.edge_availability.push_back(e.availability);
  }
  for (const auto& [s, t] : problem.terminal_pairs) {
    reduced.terminal_pairs.emplace_back(
        VertexId{static_cast<std::uint32_t>(new_id[index(s)])},
        VertexId{static_cast<std::uint32_t>(new_id[index(t)])});
  }
  reduced.g = out.graph.get();
  reduced.validate();
  out.problem = std::move(reduced);
  return out;
}

double exact_availability_reduced(const ReliabilityProblem& problem,
                                  const ExactOptions& options) {
  const ReducedProblem reduced = reduce(problem);
  return exact_availability(reduced.problem, options);
}

}  // namespace upsim::depend
