#include "depend/rbd.hpp"

#include <functional>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::depend {

namespace {

const std::vector<BlockPtr> kNoChildren;
const std::string kNoName;

class BasicBlock final : public Block {
 public:
  BasicBlock(std::string name, double availability)
      : name_(std::move(name)), availability_(availability) {
    if (!(availability_ >= 0.0 && availability_ <= 1.0)) {
      throw ModelError("RBD basic block '" + name_ +
                       "': availability must be within [0,1]");
    }
  }
  [[nodiscard]] BlockKind kind() const noexcept override {
    return BlockKind::Basic;
  }
  [[nodiscard]] double availability() const override { return availability_; }
  [[nodiscard]] std::size_t basic_count() const override { return 1; }
  [[nodiscard]] std::string to_string() const override { return name_; }
  [[nodiscard]] const std::vector<BlockPtr>& children() const override {
    return kNoChildren;
  }
  [[nodiscard]] const std::string& block_name() const override {
    return name_;
  }
  [[nodiscard]] std::size_t threshold() const noexcept override { return 0; }

 private:
  std::string name_;
  double availability_;
};

class SeriesBlock final : public Block {
 public:
  explicit SeriesBlock(std::vector<BlockPtr> children)
      : children_(std::move(children)) {
    if (children_.empty()) throw ModelError("RBD series: no children");
  }
  [[nodiscard]] BlockKind kind() const noexcept override {
    return BlockKind::Series;
  }
  [[nodiscard]] const std::vector<BlockPtr>& children() const override {
    return children_;
  }
  [[nodiscard]] const std::string& block_name() const override {
    return kNoName;
  }
  [[nodiscard]] std::size_t threshold() const noexcept override { return 0; }
  [[nodiscard]] double availability() const override {
    double a = 1.0;
    for (const BlockPtr& c : children_) a *= c->availability();
    return a;
  }
  [[nodiscard]] std::size_t basic_count() const override {
    std::size_t n = 0;
    for (const BlockPtr& c : children_) n += c->basic_count();
    return n;
  }
  [[nodiscard]] std::string to_string() const override {
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const BlockPtr& c : children_) parts.push_back(c->to_string());
    return "(" + util::join(parts, "*") + ")";
  }

 private:
  std::vector<BlockPtr> children_;
};

class ParallelBlock final : public Block {
 public:
  explicit ParallelBlock(std::vector<BlockPtr> children)
      : children_(std::move(children)) {
    if (children_.empty()) throw ModelError("RBD parallel: no children");
  }
  [[nodiscard]] BlockKind kind() const noexcept override {
    return BlockKind::Parallel;
  }
  [[nodiscard]] const std::vector<BlockPtr>& children() const override {
    return children_;
  }
  [[nodiscard]] const std::string& block_name() const override {
    return kNoName;
  }
  [[nodiscard]] std::size_t threshold() const noexcept override { return 0; }
  [[nodiscard]] double availability() const override {
    double q = 1.0;
    for (const BlockPtr& c : children_) q *= 1.0 - c->availability();
    return 1.0 - q;
  }
  [[nodiscard]] std::size_t basic_count() const override {
    std::size_t n = 0;
    for (const BlockPtr& c : children_) n += c->basic_count();
    return n;
  }
  [[nodiscard]] std::string to_string() const override {
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const BlockPtr& c : children_) parts.push_back(c->to_string());
    return "(" + util::join(parts, "+") + ")";
  }

 private:
  std::vector<BlockPtr> children_;
};

class KofNBlock final : public Block {
 public:
  KofNBlock(std::size_t k, std::vector<BlockPtr> children)
      : k_(k), children_(std::move(children)) {
    if (children_.empty()) throw ModelError("RBD k-of-n: no children");
    if (k_ == 0 || k_ > children_.size()) {
      throw ModelError("RBD k-of-n: k must be within [1, n]");
    }
  }
  [[nodiscard]] BlockKind kind() const noexcept override {
    return BlockKind::KofN;
  }
  [[nodiscard]] const std::vector<BlockPtr>& children() const override {
    return children_;
  }
  [[nodiscard]] const std::string& block_name() const override {
    return kNoName;
  }
  [[nodiscard]] std::size_t threshold() const noexcept override { return k_; }
  [[nodiscard]] double availability() const override {
    // dp[j] = P(exactly j of the children processed so far are up)
    std::vector<double> dp(children_.size() + 1, 0.0);
    dp[0] = 1.0;
    std::size_t processed = 0;
    for (const BlockPtr& c : children_) {
      const double a = c->availability();
      ++processed;
      for (std::size_t j = processed; j-- > 0;) {
        dp[j + 1] += dp[j] * a;
        dp[j] *= 1.0 - a;
      }
    }
    double p = 0.0;
    for (std::size_t j = k_; j <= children_.size(); ++j) p += dp[j];
    return p;
  }
  [[nodiscard]] std::size_t basic_count() const override {
    std::size_t n = 0;
    for (const BlockPtr& c : children_) n += c->basic_count();
    return n;
  }
  [[nodiscard]] std::string to_string() const override {
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const BlockPtr& c : children_) parts.push_back(c->to_string());
    return "(" + std::to_string(k_) + "of" +
           std::to_string(children_.size()) + ":" + util::join(parts, ",") +
           ")";
  }

 private:
  std::size_t k_;
  std::vector<BlockPtr> children_;
};

}  // namespace

BlockPtr basic(std::string name, double availability) {
  return std::make_shared<BasicBlock>(std::move(name), availability);
}

BlockPtr series(std::vector<BlockPtr> children) {
  return std::make_shared<SeriesBlock>(std::move(children));
}

BlockPtr parallel(std::vector<BlockPtr> children) {
  return std::make_shared<ParallelBlock>(std::move(children));
}

BlockPtr k_of_n(std::size_t k, std::vector<BlockPtr> children) {
  return std::make_shared<KofNBlock>(k, std::move(children));
}

BlockPtr rbd_from_paths(
    const std::vector<std::vector<std::string>>& component_paths,
    const std::function<double(const std::string&)>& availability_of) {
  if (component_paths.empty()) {
    throw ModelError("rbd_from_paths: no paths (requester and provider are "
                     "disconnected)");
  }
  std::vector<BlockPtr> branches;
  branches.reserve(component_paths.size());
  for (const auto& path : component_paths) {
    std::vector<BlockPtr> blocks;
    blocks.reserve(path.size());
    for (const std::string& component : path) {
      blocks.push_back(basic(component, availability_of(component)));
    }
    branches.push_back(series(std::move(blocks)));
  }
  return parallel(std::move(branches));
}

}  // namespace upsim::depend
