// GraphViz export of the dependability models (RBDs and fault trees), the
// artefact form of the paper's ref. [20] companion transformation.
#pragma once

#include <string>

#include "depend/fault_tree.hpp"
#include "depend/rbd.hpp"

namespace upsim::depend {

/// Renders an RBD expression tree as a GraphViz digraph: basic blocks are
/// boxes labelled with name and availability, series/parallel/k-of-n nodes
/// are labelled operators.
[[nodiscard]] std::string to_dot(const BlockPtr& rbd,
                                 std::string_view graph_name = "rbd");

/// Renders a fault tree: basic events are circles labelled with name and
/// probability, gates are labelled AND/OR/k-of-n boxes.
[[nodiscard]] std::string to_dot(const FaultTreePtr& tree,
                                 std::string_view graph_name = "fault_tree");

}  // namespace upsim::depend
