// Parametric sensitivity of the user-perceived service availability to the
// underlying MTBF/MTTR figures (the knobs an operator can actually buy:
// better hardware raises MTBF, faster on-site support lowers MTTR).
//
// By the availability decomposition A = a_i * A(1_i) + (1 - a_i) * A(0_i),
// the derivative of the system availability with respect to component i's
// own availability is the Birnbaum importance B_i, and the chain rule
// through a_i = MTBF_i / (MTBF_i + MTTR_i) gives
//
//   dA/dMTBF_i =  B_i * MTTR_i / (MTBF_i + MTTR_i)^2
//   dA/dMTTR_i = -B_i * MTBF_i / (MTBF_i + MTTR_i)^2
//
// The report also converts these to operational units: availability gained
// per hour of MTTR reduction, and the projected downtime change per year.
#pragma once

#include <string>
#include <vector>

#include "depend/reliability.hpp"

namespace upsim::depend {

struct SensitivityRecord {
  std::string component;
  bool is_vertex = true;
  double mtbf_hours = 0.0;
  double mttr_hours = 0.0;
  double birnbaum = 0.0;
  double dA_dMTBF = 0.0;          ///< per hour of MTBF
  double dA_dMTTR = 0.0;          ///< per hour of MTTR (negative)
  /// System downtime saved per year by shaving one hour off this
  /// component's MTTR (hours/year, non-negative).
  double downtime_saved_per_mttr_hour = 0.0;
};

struct SensitivityOptions {
  bool include_edges = true;
  ExactOptions exact;
};

/// Computes the sensitivities for every component carrying mtbf/mttr
/// attributes on the graph (the availabilities in `problem` must have been
/// derived from those same attributes — use
/// ReliabilityProblem::from_attributes).  Sorted by descending
/// |dA/dMTTR| — the most effective repair-time investments first.
[[nodiscard]] std::vector<SensitivityRecord> sensitivity_analysis(
    const ReliabilityProblem& problem, const SensitivityOptions& options = {});

}  // namespace upsim::depend
