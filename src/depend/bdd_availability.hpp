// Exact two-terminal availability via an ROBDD of the connectivity
// structure function — the third exact engine next to factoring and
// inclusion–exclusion (E6 ablation).
//
// The structure function is built as OR over the pair's simple paths of
// AND over the path's components, where each hop contributes OR over the
// parallel edges joining the two vertices — so unlike the
// inclusion–exclusion and RBD construction, parallel links are handled
// exactly rather than collapsed to a best representative.  Once the BDD is
// built, P(connected) evaluates in one pass over the (shared) diagram, so
// the method scales with diagram size, not with 2^paths.
#pragma once

#include "depend/reliability.hpp"

namespace upsim::depend {

struct BddOptions {
  /// Abort when the path set exceeds this (the BDD build is linear per
  /// path, but pathological path sets still mean pathological build time).
  std::size_t max_paths = 100000;
};

struct BddAvailabilityResult {
  double availability = 0.0;
  std::size_t paths = 0;
  std::size_t bdd_nodes = 0;  ///< final diagram size (shared nodes)
};

/// Exact single-pair availability via the structure-function BDD.
/// Variable order: vertices and edges in the order they first appear along
/// the discovered paths (a good heuristic for path-union functions).
[[nodiscard]] BddAvailabilityResult bdd_availability(
    const ReliabilityProblem& problem, const BddOptions& options = {});

}  // namespace upsim::depend
