#include "depend/sla.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace upsim::depend {

namespace {
void check_probability(double a, const char* what) {
  if (!(a >= 0.0 && a <= 1.0)) {
    throw ModelError(std::string(what) + " must be within [0,1], got " +
                     std::to_string(a));
  }
}
}  // namespace

double downtime_hours_per_year(double a) {
  check_probability(a, "availability");
  return (1.0 - a) * 8760.0;
}

double downtime_minutes_per_month(double a) {
  check_probability(a, "availability");
  return (1.0 - a) * 30.0 * 24.0 * 60.0;
}

int nines(double a) {
  check_probability(a, "availability");
  if (a >= 1.0) return 9;
  if (a < 0.9) return 0;
  const int n = static_cast<int>(std::floor(-std::log10(1.0 - a) + 1e-12));
  return std::min(n, 9);
}

std::string availability_class(double a) {
  check_probability(a, "availability");
  const int n = nines(a);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g%% (%d nine%s)", a * 100.0, n,
                n == 1 ? "" : "s");
  return buf;
}

bool meets_sla(double a, double target) {
  check_probability(a, "availability");
  check_probability(target, "SLA target");
  return a >= target;
}

}  // namespace upsim::depend
