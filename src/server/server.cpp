#include "server/server.hpp"

#include <chrono>
#include <exception>

#include "lint/analyzer.hpp"
#include "lint/render.hpp"
#include "lint/semantic.hpp"
#include "obs/obs.hpp"

namespace upsim::server {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

void count(const std::string& name, std::uint64_t n = 1) {
  if (obs::enabled()) obs::Registry::global().counter(name).add(n);
}

void record(const std::string& name, double v) {
  if (obs::enabled()) obs::Registry::global().histogram(name).record(v);
}

void gauge(const std::string& name, double v) {
  if (obs::enabled()) obs::Registry::global().gauge(name).set(v);
}

}  // namespace

Server::Server(engine::PerspectiveEngine& engine,
               const service::ServiceCatalog& services, ServerOptions options)
    : options_(std::move(options)) {
  registry::ModelRegistry::Options ropts;
  ropts.engine.pool = &engine.pool();  // one pool, not one more per model
  ropts.quota = options_.default_quota;
  owned_registry_ = std::make_unique<registry::ModelRegistry>(std::move(ropts));
  owned_registry_->adopt(engine, services);
  registry_ = owned_registry_.get();
  pool_ = options_.pool != nullptr ? options_.pool : &registry_->pool();
}

Server::Server(registry::ModelRegistry& registry, ServerOptions options)
    : registry_(&registry),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : &registry.pool()) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running()) throw Error("server: already running");
  listener_.emplace(options_.host, options_.port,
                    static_cast<int>(options_.max_connections));
  port_ = listener_->port();
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Drain order: refuse new work first, then stop listening, then
  // half-close readers so in-flight requests finish and flush.
  draining_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  listener_->close();
  {
    std::lock_guard lock(connections_mutex_);
    for (const auto& conn : connections_) conn->sock.shutdown_read();
  }
  std::vector<std::unique_ptr<Connection>> doomed;
  {
    std::lock_guard lock(connections_mutex_);
    doomed.swap(connections_);
  }
  for (const auto& conn : doomed) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void Server::reap_connections() {
  std::lock_guard lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (running()) {
    std::optional<net::Socket> accepted;
    try {
      accepted = listener_->accept(/*timeout_ms=*/50);
    } catch (const std::exception&) {
      break;  // listener closed under us: shutting down
    }
    if (!accepted) continue;
    reap_connections();

    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      count("server.connections_rejected");
      try {
        accepted->set_send_timeout_ms(options_.write_timeout_ms);
        net::write_frame(*accepted,
                         make_error(0, kStatusUnavailable,
                                    "too_many_connections",
                                    "connection limit reached"));
      } catch (const std::exception&) {
        // Best effort; the close below says it all.
      }
      continue;
    }

    count("server.connections_accepted");
    auto conn = std::make_unique<Connection>();
    conn->sock = *std::move(accepted);
    Connection* raw = conn.get();
    gauge("server.connections_active",
          static_cast<double>(
              active_connections_.fetch_add(1, std::memory_order_relaxed) +
              1));
    conn->reader = std::thread([this, raw] { serve_connection(raw); });
    std::lock_guard lock(connections_mutex_);
    connections_.push_back(std::move(conn));
  }
}

void Server::serve_connection(Connection* conn) {
  try {
    conn->sock.set_recv_timeout_ms(options_.read_timeout_ms);
    conn->sock.set_send_timeout_ms(options_.write_timeout_ms);
    for (;;) {
      std::string payload;
      try {
        auto frame = net::read_frame(conn->sock, options_.max_request_bytes);
        if (!frame) break;  // clean hang-up (or our drain half-close)
        payload = *std::move(frame);
      } catch (const net::FrameTooLargeError& e) {
        // The oversized payload was never read, so the stream is beyond
        // recovery: report and close.
        write_response(conn, kStatusPayloadTooLarge,
                       make_error(0, kStatusPayloadTooLarge,
                                  "payload_too_large", e.what()));
        break;
      } catch (const net::TimeoutError&) {
        count("server.requests_timed_out");
        break;  // stalled or idle past the budget
      } catch (const net::NetError&) {
        break;  // reset mid-frame etc.; nothing to say to anyone
      }
      count("server.bytes_in",
            payload.size() + net::kFrameHeaderBytes);

      // Rejections get a line too — an access log that hides the 503s
      // would paint a healthy picture of an overloaded server.
      const auto log_unserved = [this, &payload](std::string_view response) {
        if (options_.access_log == nullptr) return;
        AccessRecord rec;
        rec.trace_id = obs::generate_trace_id();
        rec.status = kStatusUnavailable;
        rec.bytes_in = payload.size() + net::kFrameHeaderBytes;
        rec.bytes_out = response.size() + net::kFrameHeaderBytes;
        options_.access_log->log(rec);
      };
      if (draining_.load(std::memory_order_acquire)) {
        const std::string response = make_error(
            0, kStatusUnavailable, "draining", "server is shutting down");
        write_response(conn, kStatusUnavailable, response);
        log_unserved(response);
        continue;
      }
      if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
          options_.max_backlog) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        const std::string response =
            make_error(0, kStatusUnavailable, "busy",
                       "request backlog limit reached");
        write_response(conn, kStatusUnavailable, response);
        log_unserved(response);
        continue;
      }
      // The worker writes the response itself *before* fulfilling the
      // future: the client's wakeup is the very next thing after the
      // handler, and this reader's wakeup happens off the critical path.
      // The reader still waits before touching the socket again, so a
      // connection has at most one request in flight and responses cannot
      // interleave.
      const auto enqueued = Clock::now();
      auto fut = pool_->submit([this, conn, &payload, enqueued] {
        AccessRecord access;
        access.queue_wait_us = us_since(enqueued);
        // Assign a fallback trace id up front so even a request that never
        // parses logs a real, correlatable id.
        access.trace_id = obs::generate_trace_id();
        access.bytes_in = payload.size() + net::kFrameHeaderBytes;
        record("server.queue_wait_us", access.queue_wait_us);
        auto [status, response] = handle_payload(payload, access);
        bool ok = true;
        try {
          write_response(conn, status, response);
        } catch (const std::exception&) {
          ok = false;  // peer vanished or write timeout: drop the connection
        }
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        if (options_.access_log != nullptr) {
          access.status = status;
          access.bytes_out = response.size() + net::kFrameHeaderBytes;
          options_.access_log->log(access);
        }
        return ok;
      });
      if (!fut.get()) break;
    }
  } catch (const std::exception&) {
    // Send-side failures (peer vanished, write timeout): drop the
    // connection; per-request accounting already happened.
  }
  conn->sock.shutdown_both();
  gauge("server.connections_active",
        static_cast<double>(
            active_connections_.fetch_sub(1, std::memory_order_relaxed) - 1));
  conn->finished.store(true, std::memory_order_release);
}

void Server::write_response(Connection* conn, int status,
                            std::string_view response) {
  net::write_frame(conn->sock, response);
  count("server.responses." + std::to_string(status));
  count("server.bytes_out", response.size() + net::kFrameHeaderBytes);
}

std::pair<int, std::string> Server::handle_payload(std::string_view payload,
                                                   AccessRecord& access) {
  const auto started = Clock::now();
  std::uint64_t id = 0;
  int status = kStatusOk;
  std::string response;
  try {
    const obs::JsonValue document = obs::json_parse(
        payload, obs::JsonLimits{/*max_depth=*/64,
                                 /*max_bytes=*/options_.max_request_bytes});
    const Request req = parse_request(document);
    id = req.id;
    access.id = req.id;
    access.method = req.method;
    if (req.trace_id != 0) access.trace_id = req.trace_id;
    count("server.requests." + req.method);
    // Everything the handler records — this span, the engine's query and
    // discovery spans, serialization — carries the request's trace id and
    // parents into one per-request tree.
    obs::TraceScope trace({access.trace_id, /*span_id=*/0});
    obs::ScopedSpan span("server.request", "server");
    response = dispatch(req, access);
  } catch (const ProtocolError& e) {
    status = e.status();
    response = make_error(id, status, e.code(), e.what());
  } catch (const registry::RegistryError& e) {
    // Covers QuotaError too: 403 (model count / bundle bytes), 429
    // (concurrency), 404 (unknown model/version), 409 (conflicts).
    status = e.status();
    response = make_error(id, status, e.code(), e.what());
  } catch (const ParseError& e) {
    status = kStatusBadRequest;
    response = make_error(id, status, "parse_error", e.what());
  } catch (const NotFoundError& e) {
    status = kStatusNotFound;
    response = make_error(id, status, "not_found", e.what());
  } catch (const ModelError& e) {
    status = kStatusBadRequest;
    response = make_error(id, status, "invalid_model", e.what());
  } catch (const std::exception& e) {
    status = kStatusInternalError;
    response = make_error(id, status, "internal_error", e.what());
  }
  access.handle_us = us_since(started);
  record("server.handle_us", access.handle_us);
  if (!access.model.empty() && obs::enabled()) {
    const auto slash = access.model.find('/');
    record("server.model.handle_us#tenant=" + access.model.substr(0, slash) +
               ",model=" + access.model.substr(slash + 1),
           access.handle_us);
  }
  return {status, std::move(response)};
}

Server::ModelContext Server::resolve_model(const Request& req,
                                           AccessRecord& access) {
  ModelContext ctx;
  ctx.model = registry_->acquire(req.model);
  if (ctx.model == nullptr) {
    if (req.model.empty()) {
      throw ProtocolError(kStatusUnavailable, "no_default_model",
                          "no default model is active; upload and activate "
                          "one (model_upload/model_activate)");
    }
    throw ProtocolError(kStatusNotFound, "unknown_model",
                        "unknown model '" + req.model + "'");
  }
  const auto slash = ctx.model->id.find('/');
  const std::string tenant = ctx.model->id.substr(0, slash);
  ctx.ticket = registry_->ticket(tenant);
  access.model = ctx.model->id;
  if (obs::enabled()) {
    count("server.model.requests#tenant=" + tenant +
          ",model=" + ctx.model->id.substr(slash + 1));
  }
  return ctx;
}

std::string Server::dispatch(const Request& req, AccessRecord& access) {
  if (req.method == "upsim") {
    const ModelContext ctx = resolve_model(req, access);
    return make_response(req.id,
                         handle_query(ctx, req, /*paths_only=*/false, access));
  }
  if (req.method == "paths") {
    const ModelContext ctx = resolve_model(req, access);
    return make_response(req.id,
                         handle_query(ctx, req, /*paths_only=*/true, access));
  }
  if (req.method == "availability") {
    const ModelContext ctx = resolve_model(req, access);
    return make_response(req.id, handle_availability(ctx, req));
  }
  if (req.method == "invalidate_topology") {
    const ModelContext ctx = resolve_model(req, access);
    return make_response(req.id, handle_invalidate_topology(ctx, req));
  }
  if (req.method == "invalidate_properties") {
    const ModelContext ctx = resolve_model(req, access);
    return make_response(req.id, handle_invalidate_properties(ctx, req));
  }
  if (req.method == "scenario_load") {
    return make_response(req.id, handle_scenario_load(req));
  }
  if (req.method == "scenario_step") {
    const ModelContext ctx = resolve_model(req, access);
    return make_response(req.id, handle_scenario_step(ctx, req));
  }
  if (req.method == "invalidate_mapping") {
    const ModelContext ctx = resolve_model(req, access);
    const obs::JsonValue& params = req.params;
    if (!params.has("name") ||
        params.at("name").kind != obs::JsonValue::Kind::String) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "invalidate_mapping needs params 'name'");
    }
    ctx.engine().notify_mapping_changed(params.at("name").string);
    return make_response(req.id, R"({"ok":true})");
  }
  if (req.method == "validate") {
    const ModelContext ctx = resolve_model(req, access);
    return make_response(req.id, handle_validate(ctx, req));
  }
  if (req.method == "report_observations") {
    const ModelContext ctx = resolve_model(req, access);
    return make_response(req.id, handle_report_observations(ctx, req));
  }
  if (req.method == "model_upload") {
    return make_response(req.id, handle_model_upload(req));
  }
  if (req.method == "model_activate") {
    return make_response(req.id, handle_model_activate(req));
  }
  if (req.method == "model_list") {
    return make_response(req.id, handle_model_list());
  }
  if (req.method == "model_delete") {
    return make_response(req.id, handle_model_delete(req));
  }
  if (req.method == "metrics") {
    return make_response(req.id, handle_metrics());
  }
  if (req.method == "trace") {
    return make_response(req.id, handle_trace(req));
  }
  if (req.method == "health") {
    return make_response(req.id, handle_health());
  }
  throw ProtocolError(kStatusBadRequest, "unknown_method",
                      "unknown method '" + req.method + "'");
}

namespace {

/// Shared params of upsim/paths/availability: composite name, mapping and
/// the optional perspective name.
struct QueryParams {
  const service::CompositeService* composite;
  mapping::ServiceMapping mapping;
  std::string name;
};

QueryParams parse_query_params(const Request& req,
                               const service::ServiceCatalog& services,
                               const std::string& default_name) {
  const obs::JsonValue& params = req.params;
  if (!params.has("composite") ||
      params.at("composite").kind != obs::JsonValue::Kind::String) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "params 'composite' (string) is required");
  }
  QueryParams q{&services.get_composite(params.at("composite").string),
                mapping_from_params(params), default_name};
  if (params.has("name")) {
    if (params.at("name").kind != obs::JsonValue::Kind::String) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'name' must be a string");
    }
    q.name = params.at("name").string;
  }
  return q;
}

}  // namespace

std::string Server::handle_query(const ModelContext& ctx, const Request& req,
                                 bool paths_only, AccessRecord& access) {
  QueryParams q =
      parse_query_params(req, ctx.services(), options_.default_perspective);
  if (options_.response_cache_entries == 0) {
    const core::UpsimResult result =
        ctx.engine().query(*q.composite, q.mapping, std::move(q.name));
    return upsim_result_json(result, paths_only);
  }

  // The canonical params serialization doubles as the cache key; the epoch
  // is read *before* the query so a concurrent topology bump can only key
  // fresh data under a stale epoch (a harmless miss later), never stale
  // data under a fresh one.  The model id *and version* prefix the key:
  // tenants can never cross-serve bytes, and a hot-swap implicitly retires
  // the outgoing version's entries ('#' cannot appear in an id, so one
  // model's prefix is never a prefix of another's).
  const std::uint64_t epoch = ctx.engine().epoch();
  const std::string model_prefix =
      ctx.model->id + '#' + std::to_string(ctx.model->version) + ':';
  std::string key = model_prefix + (paths_only ? "paths@" : "upsim@") +
                    std::to_string(epoch) + ':' +
                    query_params_json(q.composite->name(), q.mapping, q.name);
  std::uint64_t version = 0;
  {
    std::shared_lock lock(response_cache_mutex_);
    const auto it = response_cache_.find(key);
    if (it != response_cache_.end()) {
      const std::shared_ptr<const std::string> hit = it->second;
      lock.unlock();
      response_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      access.cache_hit = true;
      count("server.response_cache.hits");
      return *hit;
    }
    version = invalidation_version_;
  }
  response_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  count("server.response_cache.misses");
  engine::QueryInfo info;
  const core::UpsimResult result =
      ctx.engine().query(*q.composite, q.mapping, std::move(q.name), &info);
  auto entry =
      std::make_shared<const std::string>(upsim_result_json(result, paths_only));
  {
    std::unique_lock lock(response_cache_mutex_);
    // A fine-grained eviction between our version snapshot and here may
    // have targeted this key's elements while the engine was computing —
    // the bytes could predate the event.  Serve them (they were valid when
    // computed) but never cache them.
    if (invalidation_version_ == version) {
      if (response_cache_.size() >= options_.response_cache_entries) {
        response_cache_.clear();
        response_index_.clear();
      }
      for (const std::string& element : info.elements) {
        // Index buckets are model-scoped by id (not version): events name
        // elements of the *model*, and eviction must reach entries of any
        // version still in the map.
        response_index_[ctx.model->id + '\x1f' + element].insert(key);
      }
      response_cache_.emplace(std::move(key), entry);
    }
  }
  return *entry;
}

std::string Server::handle_availability(const ModelContext& ctx,
                                        const Request& req) {
  QueryParams q =
      parse_query_params(req, ctx.services(), options_.default_perspective);
  core::AnalysisOptions analysis;
  // Deterministic by default: the Monte-Carlo cross-check only runs when
  // asked, with a fixed (overridable) seed.
  analysis.monte_carlo_samples = 0;
  const obs::JsonValue& params = req.params;
  if (params.has("monte_carlo_samples")) {
    analysis.monte_carlo_samples = static_cast<std::size_t>(
        params.at("monte_carlo_samples").number);
  }
  if (params.has("seed")) {
    analysis.monte_carlo_seed =
        static_cast<std::uint64_t>(params.at("seed").number);
  }
  const core::UpsimResult result =
      ctx.engine().query(*q.composite, q.mapping, std::move(q.name));
  return availability_json(core::analyze_availability(result, analysis),
                           result);
}

namespace {

/// Reads params' optional "elements" (array of element names); empty means
/// the member was absent — the caller falls back to the coarse path.
std::vector<std::string> elements_from_params(const obs::JsonValue& params) {
  std::vector<std::string> elements;
  if (!params.has("elements")) return elements;
  const obs::JsonValue& list = params.at("elements");
  if (!list.is_array() || list.array.empty()) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "params 'elements' must be a non-empty array");
  }
  elements.reserve(list.array.size());
  for (const obs::JsonValue& item : list.array) {
    if (item.kind != obs::JsonValue::Kind::String) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'elements' entries must be strings");
    }
    elements.push_back(item.string);
  }
  return elements;
}

std::string invalidation_result_json(std::uint64_t epoch,
                                     const engine::InvalidationReport& report,
                                     std::uint64_t response_evicted) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("epoch");
  w.value(epoch);
  w.key("affected_keys");
  w.value(report.affected_keys);
  w.key("path_evictions");
  w.value(report.evicted_keys);
  w.key("response_evictions");
  w.value(response_evicted);
  w.key("full_flush");
  w.value(report.full_flush);
  w.end_object();
  return std::move(w).str();
}

}  // namespace

std::uint64_t Server::evict_responses_for(
    const std::string& model_id, const std::vector<std::string>& elements) {
  std::unique_lock lock(response_cache_mutex_);
  ++invalidation_version_;
  std::uint64_t evicted = 0;
  for (const std::string& element : elements) {
    const auto bucket = response_index_.find(model_id + '\x1f' + element);
    if (bucket == response_index_.end()) continue;
    for (const std::string& key : bucket->second) {
      evicted += response_cache_.erase(key);
    }
    // Dead keys may linger in other elements' buckets; erasing a missing
    // key is free, and the full clear when the cache fills resets the
    // index, so the garbage is bounded.
    response_index_.erase(bucket);
  }
  if (evicted != 0) {
    response_evictions_.fetch_add(evicted, std::memory_order_relaxed);
    count("server.response_cache.evictions", evicted);
  }
  return evicted;
}

std::uint64_t Server::flush_responses_for(const std::string& model_id) {
  const std::string key_prefix = model_id + '#';
  const std::string index_prefix = model_id + '\x1f';
  std::unique_lock lock(response_cache_mutex_);
  ++invalidation_version_;
  const std::uint64_t retired =
      std::erase_if(response_cache_, [&key_prefix](const auto& kv) {
        return kv.first.starts_with(key_prefix);
      });
  std::erase_if(response_index_, [&index_prefix](const auto& kv) {
    return kv.first.starts_with(index_prefix);
  });
  return retired;
}

std::string Server::handle_invalidate_topology(const ModelContext& ctx,
                                               const Request& req) {
  const std::vector<std::string> elements = elements_from_params(req.params);
  if (elements.empty()) {
    // Coarse: the epoch bump retires every cached served result of this
    // model (the epoch is part of the key); other models' entries stay.
    ctx.engine().notify_topology_changed();
    const std::uint64_t retired = flush_responses_for(ctx.model->id);
    engine::InvalidationReport report;
    report.evicted_keys = retired;  // everything the epoch made unreachable
    report.full_flush = true;
    return invalidation_result_json(ctx.engine().epoch(), report, retired);
  }
  const engine::InvalidationReport report =
      ctx.engine().notify_topology_changed(elements);
  const std::uint64_t evicted = evict_responses_for(ctx.model->id, elements);
  return invalidation_result_json(ctx.engine().epoch(), report, evicted);
}

std::string Server::handle_invalidate_properties(const ModelContext& ctx,
                                                 const Request& req) {
  const obs::JsonValue& params = req.params;
  engine::InvalidationReport report;
  // Optional "updates": targeted attribute overrides (observed MTBF/MTTR
  // feeding back) applied before the re-projection notice.
  if (params.has("updates")) {
    const obs::JsonValue& updates = params.at("updates");
    if (!updates.is_array()) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'updates' must be an array");
    }
    for (const obs::JsonValue& update : updates.array) {
      if (!update.is_object() || !update.has("element") ||
          update.at("element").kind != obs::JsonValue::Kind::String ||
          !update.has("attribute") ||
          update.at("attribute").kind != obs::JsonValue::Kind::String ||
          !update.has("value") ||
          update.at("value").kind != obs::JsonValue::Kind::Number) {
        throw ProtocolError(kStatusBadRequest, "bad_request",
                            "each update needs 'element', 'attribute' "
                            "(strings) and 'value' (number)");
      }
      const engine::InvalidationReport one = ctx.engine().set_property_override(
          update.at("element").string, update.at("attribute").string,
          update.at("value").number);
      report.affected_keys += one.affected_keys;
    }
  }
  const std::vector<std::string> elements = elements_from_params(params);
  if (elements.empty() && !params.has("updates")) {
    ctx.engine().notify_properties_changed();
    report.full_flush = true;
  } else if (!elements.empty()) {
    const engine::InvalidationReport fine =
        ctx.engine().notify_properties_changed(elements);
    report.affected_keys += fine.affected_keys;
  }
  // Property values never appear in upsim/paths bytes (names only) and
  // availability is uncached, so no served results need evicting.
  return invalidation_result_json(ctx.engine().epoch(), report, 0);
}

engine::InvalidationReport Server::apply_scenario_event(
    const ModelContext& ctx, const scenario::Event& event, bool coarse,
    std::uint64_t& response_evicted) {
  engine::InvalidationReport report;
  if (event.is_state_change()) {
    report =
        ctx.engine().set_element_state({event.element}, !event.is_failure());
    if (coarse) {
      ctx.engine().notify_topology_changed();
      report.full_flush = true;
      response_evicted += flush_responses_for(ctx.model->id);
    } else {
      response_evicted += evict_responses_for(ctx.model->id, {event.element});
    }
  } else if (event.kind == scenario::EventKind::PropertyUpdate) {
    report = ctx.engine().set_property_override(event.element, event.attribute,
                                                event.value);
    if (coarse) {
      ctx.engine().notify_properties_changed();
      report.full_flush = true;
    }
    // upsim/paths bytes carry no property values; nothing cached to evict.
  } else {
    // Mapping events: the mapping is a query *input* here — remote clients
    // send the post-migration mapping with their next query, which is a
    // different cache key, so only the engine's recorded run needs
    // forgetting.
    ctx.engine().notify_mapping_changed(event.perspective);
  }
  return report;
}

std::string Server::handle_scenario_load(const Request& req) {
  const obs::JsonValue& params = req.params;
  if (!params.has("events") || !params.at("events").is_array()) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "scenario_load needs params 'events' (array)");
  }
  std::vector<scenario::Event> events;
  events.reserve(params.at("events").array.size());
  for (const obs::JsonValue& entry : params.at("events").array) {
    try {
      events.push_back(scenario::Event::from_json(entry));
    } catch (const ParseError& e) {
      throw ProtocolError(kStatusBadRequest, "bad_event", e.what());
    }
  }
  std::size_t loaded = 0;
  {
    std::lock_guard lock(scenario_mutex_);
    scenario_trace_ = std::move(events);
    scenario_pos_ = 0;
    loaded = scenario_trace_.size();
  }
  obs::JsonWriter w;
  w.begin_object();
  w.key("loaded");
  w.value(static_cast<std::uint64_t>(loaded));
  w.key("position");
  w.value(static_cast<std::uint64_t>(0));
  w.end_object();
  return std::move(w).str();
}

std::string Server::handle_scenario_step(const ModelContext& ctx,
                                         const Request& req) {
  const obs::JsonValue& params = req.params;
  bool coarse = false;
  if (params.has("mode")) {
    if (params.at("mode").kind != obs::JsonValue::Kind::String ||
        (params.at("mode").string != "fine" &&
         params.at("mode").string != "coarse")) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'mode' must be \"fine\" or \"coarse\"");
    }
    coarse = params.at("mode").string == "coarse";
  }

  engine::InvalidationReport total;
  std::uint64_t response_evicted = 0;
  std::uint64_t applied = 0;
  std::size_t position = 0;
  std::size_t loaded = 0;

  if (params.has("event")) {
    scenario::Event event;
    try {
      event = scenario::Event::from_json(params.at("event"));
    } catch (const ParseError& e) {
      throw ProtocolError(kStatusBadRequest, "bad_event", e.what());
    }
    total = apply_scenario_event(ctx, event, coarse, response_evicted);
    applied = 1;
    std::lock_guard lock(scenario_mutex_);
    position = scenario_pos_;
    loaded = scenario_trace_.size();
  } else {
    std::uint64_t want = 1;
    if (params.has("count")) {
      if (params.at("count").kind != obs::JsonValue::Kind::Number ||
          params.at("count").number < 1) {
        throw ProtocolError(kStatusBadRequest, "bad_request",
                            "params 'count' must be a positive number");
      }
      want = static_cast<std::uint64_t>(params.at("count").number);
    }
    // Serialized: steps apply in trace order even under concurrent
    // requests.  Engine mutators synchronize internally; queries keep
    // flowing between events.
    std::lock_guard lock(scenario_mutex_);
    loaded = scenario_trace_.size();
    while (applied < want && scenario_pos_ < scenario_trace_.size()) {
      const engine::InvalidationReport one = apply_scenario_event(
          ctx, scenario_trace_[scenario_pos_], coarse, response_evicted);
      total.affected_keys += one.affected_keys;
      total.evicted_keys += one.evicted_keys;
      total.full_flush = total.full_flush || one.full_flush;
      ++scenario_pos_;
      ++applied;
    }
    position = scenario_pos_;
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("applied");
  w.value(applied);
  w.key("position");
  w.value(static_cast<std::uint64_t>(position));
  w.key("total");
  w.value(static_cast<std::uint64_t>(loaded));
  w.key("epoch");
  w.value(ctx.engine().epoch());
  w.key("affected_keys");
  w.value(total.affected_keys);
  w.key("path_evictions");
  w.value(total.evicted_keys);
  w.key("response_evictions");
  w.value(response_evicted);
  w.key("full_flush");
  w.value(total.full_flush);
  w.end_object();
  return std::move(w).str();
}

std::string Server::handle_validate(const ModelContext& ctx,
                                    const Request& req) {
  // Lint on demand: the served infrastructure and catalog, plus an optional
  // composite/mapping pair from the params, checked without running a
  // query.  Findings do not fail the request — the report *is* the 200
  // result, and clients branch on its "ok" member.
  lint::Input input;
  input.objects = &ctx.engine().infrastructure();
  input.services = &ctx.services();
  const obs::JsonValue& params = req.params;
  if (params.has("composite")) {
    if (params.at("composite").kind != obs::JsonValue::Kind::String) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'composite' must be a string");
    }
    input.composite =
        &ctx.services().get_composite(params.at("composite").string);
  }
  mapping::ServiceMapping mapping;
  if (params.has("mapping")) {
    mapping = mapping_from_params(params);
    lint::MappingInput entry;
    entry.mapping = &mapping;
    input.mappings.push_back(std::move(entry));
  }
  // "level" selects the analysis depth: "syntax" (the default — response
  // bytes unchanged for old clients) or "semantic", which appends the
  // SemanticAnalyzer's graph-theoretic findings (optionally judged against
  // a numeric "slo" param, UPS103).
  std::string level = "syntax";
  if (params.has("level")) {
    if (params.at("level").kind != obs::JsonValue::Kind::String) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'level' must be a string");
    }
    level = params.at("level").string;
    if (level != "syntax" && level != "semantic") {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'level' must be 'syntax' or 'semantic'");
    }
  }
  lint::Report report = lint::analyze(input);
  if (level == "semantic") {
    lint::SemanticOptions sem_options;
    if (params.has("slo")) {
      if (params.at("slo").kind != obs::JsonValue::Kind::Number) {
        throw ProtocolError(kStatusBadRequest, "bad_request",
                            "params 'slo' must be a number");
      }
      sem_options.availability_slo = params.at("slo").number;
    }
    lint::SemanticInput sem_input;
    sem_input.objects = input.objects;
    sem_input.mappings = input.mappings;
    const lint::Report semantic =
        lint::analyze_semantic(sem_input, sem_options);
    for (const lint::Diagnostic& d : semantic.diagnostics()) {
      report.add(d.rule, d.severity, d.message, d.location);
    }
    report.sort();
  }
  return lint::render_json(report);
}

std::string Server::handle_trace(const Request& req) {
  const obs::JsonValue& params = req.params;
  if (!params.has("trace") ||
      params.at("trace").kind != obs::JsonValue::Kind::String) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "trace needs params 'trace' (16 hex characters)");
  }
  const std::uint64_t trace_id =
      obs::parse_trace_id(params.at("trace").string);
  if (trace_id == 0) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "params 'trace' must be 16 hex characters");
  }
  // Only *finished* spans appear, so a request can query its predecessors
  // but never its own still-open server.request span.  With obs disabled
  // nothing was recorded and the tree is empty.
  obs::JsonWriter w;
  w.begin_object();
  w.key("trace");
  w.value(obs::format_trace_id(trace_id));
  w.key("spans");
  w.raw_value(span_tree_json(obs::Tracer::global().spans_for_trace(trace_id)));
  w.end_object();
  return std::move(w).str();
}

std::string Server::handle_metrics() {
  // The top-level epoch/cache/invalidation sections report the *default*
  // model (zeros when degraded) so pre-registry consumers keep parsing;
  // per-model breakouts follow under "models".
  const std::shared_ptr<registry::ServingModel> def =
      registry_->acquire_default();
  const engine::CacheStats stats =
      def != nullptr ? def->engine->cache_stats() : engine::CacheStats{};
  obs::JsonWriter w;
  w.begin_object();
  w.key("epoch");
  w.value(def != nullptr ? def->engine->epoch() : 0);
  w.key("cache");
  w.begin_object();
  w.key("hits");
  w.value(static_cast<std::uint64_t>(stats.hits));
  w.key("misses");
  w.value(static_cast<std::uint64_t>(stats.misses));
  w.key("evictions");
  w.value(static_cast<std::uint64_t>(stats.evictions));
  w.key("size");
  w.value(static_cast<std::uint64_t>(stats.size));
  w.key("hit_rate");
  w.value(stats.hit_rate());
  w.end_object();
  w.key("response_cache");
  w.begin_object();
  {
    const std::uint64_t hits = response_cache_hits();
    const std::uint64_t misses = response_cache_misses();
    std::size_t entries = 0;
    {
      std::shared_lock lock(response_cache_mutex_);
      entries = response_cache_.size();
    }
    w.key("hits");
    w.value(hits);
    w.key("misses");
    w.value(misses);
    w.key("entries");
    w.value(static_cast<std::uint64_t>(entries));
    w.key("hit_rate");
    w.value(hits + misses == 0
                ? 0.0
                : static_cast<double>(hits) /
                      static_cast<double>(hits + misses));
  }
  w.end_object();
  w.key("invalidation");
  w.begin_object();
  {
    const engine::InvalidationStats inv =
        def != nullptr ? def->engine->invalidation_stats()
                       : engine::InvalidationStats{};
    std::size_t index_entries = 0;
    {
      std::shared_lock lock(response_cache_mutex_);
      index_entries = response_index_.size();
    }
    w.key("events");
    w.value(inv.events);
    w.key("affected_keys");
    w.value(inv.affected_keys);
    w.key("path_evictions");
    w.value(inv.evicted_keys);
    w.key("full_flushes");
    w.value(inv.full_flushes);
    w.key("index_elements");
    w.value(static_cast<std::uint64_t>(inv.index_elements));
    w.key("index_links");
    w.value(static_cast<std::uint64_t>(inv.index_links));
    w.key("down_elements");
    w.value(static_cast<std::uint64_t>(inv.down_elements));
    w.key("property_overrides");
    w.value(static_cast<std::uint64_t>(inv.property_overrides));
    w.key("response_evictions");
    w.value(response_cache_evictions());
    w.key("response_index_elements");
    w.value(static_cast<std::uint64_t>(index_entries));
  }
  w.end_object();
  w.key("registry");
  w.begin_object();
  w.key("models");
  w.value(static_cast<std::uint64_t>(registry_->model_count()));
  w.key("tenants");
  w.value(static_cast<std::uint64_t>(registry_->tenant_count()));
  w.key("draining");
  w.value(static_cast<std::uint64_t>(registry_->draining_count()));
  w.end_object();
  w.key("models");
  w.begin_array();
  for (const registry::ModelInfo& info : registry_->list()) {
    if (info.active_version == 0) continue;
    const std::shared_ptr<registry::ServingModel> model =
        registry_->acquire(info.id);
    if (model == nullptr) continue;
    const engine::CacheStats mstats = model->engine->cache_stats();
    w.begin_object();
    w.key("model");
    w.value(info.id);
    w.key("version");
    w.value(model->version);
    w.key("epoch");
    w.value(model->engine->epoch());
    w.key("cache");
    w.begin_object();
    w.key("hits");
    w.value(static_cast<std::uint64_t>(mstats.hits));
    w.key("misses");
    w.value(static_cast<std::uint64_t>(mstats.misses));
    w.key("size");
    w.value(static_cast<std::uint64_t>(mstats.size));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  w.raw_value(obs::Registry::global().snapshot().to_json());
  w.end_object();
  return std::move(w).str();
}

std::string Server::handle_health() {
  const std::shared_ptr<registry::ServingModel> def =
      registry_->acquire_default();
  obs::JsonWriter w;
  w.begin_object();
  w.key("status");
  // "degraded": booted without (or lost) a default model — model_* methods
  // and explicitly routed requests still serve, default-routed ones 503.
  w.value(def != nullptr ? "ok" : "degraded");
  w.key("serving");
  w.value(def != nullptr);
  w.key("epoch");
  w.value(def != nullptr ? def->engine->epoch() : 0);
  w.key("models");
  w.value(static_cast<std::uint64_t>(registry_->model_count()));
  w.key("active_connections");
  w.value(static_cast<std::uint64_t>(active_connections()));
  w.key("in_flight");
  w.value(static_cast<std::uint64_t>(requests_in_flight()));
  w.key("draining");
  w.value(draining_.load(std::memory_order_acquire));
  w.end_object();
  return std::move(w).str();
}

std::string Server::handle_model_upload(const Request& req) {
  if (req.model.empty()) {
    throw ProtocolError(kStatusBadRequest, "model_required",
                        "model_upload routes by the envelope 'model' member "
                        "(tenant/model)");
  }
  const obs::JsonValue& params = req.params;
  if (!params.has("bundle") ||
      params.at("bundle").kind != obs::JsonValue::Kind::String) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "model_upload needs params 'bundle' (the umlbundle "
                        "XML document as a string)");
  }
  registry::UploadOptions upload_options;
  if (params.has("baseline")) {
    // Wire-side baseline: known semantic findings, by fingerprint.
    const obs::JsonValue& baseline = params.at("baseline");
    if (!baseline.is_array()) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'baseline' must be an array of fingerprint "
                          "strings");
    }
    for (const obs::JsonValue& fp : baseline.array) {
      if (fp.kind != obs::JsonValue::Kind::String) {
        throw ProtocolError(kStatusBadRequest, "bad_request",
                            "params 'baseline' must be an array of "
                            "fingerprint strings");
      }
      upload_options.baseline_fingerprints.push_back(fp.string);
    }
  }
  const registry::UploadResult result = registry_->upload(
      req.model, params.at("bundle").string, upload_options);
  obs::JsonWriter w;
  w.begin_object();
  w.key("model");
  w.value(result.id);
  w.key("version");
  w.value(result.version);
  w.key("lint_warnings");
  w.value(static_cast<std::uint64_t>(result.lint_warnings));
  w.key("semantic_findings");
  w.begin_array();
  for (const lint::Diagnostic& d : result.semantic_findings) {
    w.begin_object();
    w.key("code");
    w.value(d.code());
    w.key("severity");
    w.value(lint::to_string(d.severity));
    w.key("message");
    w.value(d.message);
    w.key("fingerprint");
    w.value(lint::fingerprint(d));
    w.end_object();
  }
  w.end_array();
  w.key("semantic_suppressed");
  w.value(static_cast<std::uint64_t>(result.semantic_suppressed));
  w.end_object();
  return std::move(w).str();
}

std::string Server::handle_model_activate(const Request& req) {
  if (req.model.empty()) {
    throw ProtocolError(kStatusBadRequest, "model_required",
                        "model_activate routes by the envelope 'model' "
                        "member (tenant/model)");
  }
  std::uint64_t version = 0;
  const obs::JsonValue& params = req.params;
  if (params.has("version")) {
    if (params.at("version").kind != obs::JsonValue::Kind::Number ||
        params.at("version").number < 0) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'version' must be a non-negative number");
    }
    version = static_cast<std::uint64_t>(params.at("version").number);
  }
  const registry::ActivateResult result =
      registry_->activate(req.model, version);
  obs::JsonWriter w;
  w.begin_object();
  w.key("model");
  w.value(result.id);
  w.key("version");
  w.value(result.version);
  w.key("previous");
  w.value(result.previous_version);
  w.key("observations_applied");
  w.value(static_cast<std::uint64_t>(result.observations_applied));
  w.end_object();
  return std::move(w).str();
}

std::string Server::handle_model_list() {
  const std::shared_ptr<registry::ServingModel> def =
      registry_->acquire_default();
  obs::JsonWriter w;
  w.begin_object();
  w.key("default");
  w.value(registry_->default_id());
  w.key("serving");
  w.value(def != nullptr);
  w.key("models");
  w.begin_array();
  for (const registry::ModelInfo& info : registry_->list()) {
    w.begin_object();
    w.key("model");
    w.value(info.id);
    w.key("tenant");
    w.value(info.tenant);
    w.key("active_version");
    w.value(info.active_version);
    w.key("staged");
    w.begin_array();
    for (const std::uint64_t v : info.staged_versions) w.value(v);
    w.end_array();
    w.key("draining");
    w.value(static_cast<std::uint64_t>(info.draining));
    w.key("observations");
    w.value(info.observations);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

std::string Server::handle_model_delete(const Request& req) {
  if (req.model.empty()) {
    throw ProtocolError(kStatusBadRequest, "model_required",
                        "model_delete routes by the envelope 'model' member "
                        "(tenant/model)");
  }
  std::uint64_t version = 0;
  const obs::JsonValue& params = req.params;
  if (params.has("version")) {
    if (params.at("version").kind != obs::JsonValue::Kind::Number ||
        params.at("version").number < 1) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "params 'version' must be a positive number");
    }
    version = static_cast<std::uint64_t>(params.at("version").number);
  }
  registry_->erase(req.model, version);
  if (version == 0) {
    // The whole model is gone; a future re-upload restarts version
    // numbering, so its cached bytes must not outlive it.
    (void)flush_responses_for(req.model);
  }
  obs::JsonWriter w;
  w.begin_object();
  w.key("model");
  w.value(req.model);
  w.key("deleted");
  w.value(true);
  w.key("version");
  w.value(version);
  w.end_object();
  return std::move(w).str();
}

std::string Server::handle_report_observations(const ModelContext& ctx,
                                               const Request& req) {
  const obs::JsonValue& params = req.params;
  if (!params.has("observations") || !params.at("observations").is_array() ||
      params.at("observations").array.empty()) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "report_observations needs params 'observations' "
                        "(non-empty array)");
  }
  const std::shared_ptr<registry::ObservationStore> store =
      registry_->observations(ctx.model->id);

  // Fold every observation in, tracking which elements were touched so the
  // override pass (and the result) stays scoped to them.
  std::set<std::string> touched;
  std::uint64_t observed = 0;
  for (const obs::JsonValue& entry : params.at("observations").array) {
    if (!entry.is_object() || !entry.has("element") ||
        entry.at("element").kind != obs::JsonValue::Kind::String ||
        !entry.has("kind") ||
        entry.at("kind").kind != obs::JsonValue::Kind::String ||
        !entry.has("t") ||
        entry.at("t").kind != obs::JsonValue::Kind::Number) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "each observation needs 'element', 'kind' "
                          "(strings) and 't' (hours, number)");
    }
    const std::string& kind = entry.at("kind").string;
    bool failure = false;
    if (kind == "fail" || kind == "failure" || kind == "fail_component" ||
        kind == "fail_link") {
      failure = true;
    } else if (kind != "repair" && kind != "repair_component" &&
               kind != "repair_link") {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "observation 'kind' must be fail/repair (or a "
                          "scenario state-event kind name)");
    }
    (void)store->observe(entry.at("element").string, failure,
                         entry.at("t").number);
    touched.insert(entry.at("element").string);
    ++observed;
  }

  // Element-scoped feedback: running estimates flow in through
  // set_property_override — the epoch holds, path/response caches survive,
  // only availability answers routed through these elements change.
  const std::vector<std::string> only(touched.begin(), touched.end());
  const registry::ApplyReport applied = store->apply_to(ctx.engine(), &only);

  obs::JsonWriter w;
  w.begin_object();
  w.key("observed");
  w.value(observed);
  w.key("elements");
  w.value(static_cast<std::uint64_t>(touched.size()));
  w.key("applied");
  w.value(static_cast<std::uint64_t>(applied.elements_applied));
  w.key("skipped");
  w.value(static_cast<std::uint64_t>(applied.elements_skipped));
  w.key("affected_keys");
  w.value(applied.affected_keys);
  w.key("epoch");
  w.value(ctx.engine().epoch());
  w.key("estimates");
  w.begin_array();
  for (const std::string& element : only) {
    const registry::Estimate est = store->estimate(element);
    w.begin_object();
    w.key("element");
    w.value(element);
    w.key("up_intervals");
    w.value(est.up_intervals);
    w.key("down_intervals");
    w.value(est.down_intervals);
    if (est.up_intervals > 0) {
      w.key("mtbf");
      w.value(est.mtbf_hours);
    }
    if (est.down_intervals > 0) {
      w.key("mttr");
      w.value(est.mttr_hours);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

}  // namespace upsim::server
