#include "server/metrics_http.hpp"

#include <cstddef>
#include <exception>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "util/error.hpp"

namespace upsim::server {

namespace {

/// Header budget: a scrape request line plus a handful of headers.  A
/// client still mid-headers past this is not a scraper.
constexpr std::size_t kMaxRequestBytes = 8192;

[[nodiscard]] std::string http_response(int status, std::string_view reason,
                                        std::string_view content_type,
                                        std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Reads until the blank line that ends the headers (the request has no
/// body we care about).  Returns false on EOF/overflow before that.
[[nodiscard]] bool read_request_head(net::Socket& sock, std::string& head) {
  char buf[1024];
  while (head.size() < kMaxRequestBytes) {
    const std::size_t n = sock.recv_some(buf, sizeof buf);
    if (n == 0) return false;
    head.append(buf, n);
    if (head.find("\r\n\r\n") != std::string::npos) return true;
  }
  return false;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsHttpOptions options)
    : options_(std::move(options)) {
  if (!options_.body) {
    options_.body = [] {
      return obs::render_prometheus(obs::Registry::global().snapshot());
    };
  }
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  if (running()) throw Error("metrics_http: already running");
  listener_.emplace(options_.host, options_.port, /*backlog=*/8);
  port_ = listener_->port();
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void MetricsHttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  listener_->close();
}

void MetricsHttpServer::accept_loop() {
  while (running()) {
    std::optional<net::Socket> accepted;
    try {
      accepted = listener_->accept(/*timeout_ms=*/50);
    } catch (const std::exception&) {
      break;  // listener closed under us: shutting down
    }
    if (!accepted) continue;
    try {
      serve(*std::move(accepted));
    } catch (const std::exception&) {
      // A scraper that vanished mid-response; nothing to clean up.
    }
  }
}

void MetricsHttpServer::serve(net::Socket sock) {
  sock.set_recv_timeout_ms(options_.read_timeout_ms);
  sock.set_send_timeout_ms(options_.write_timeout_ms);

  std::string head;
  std::string response;
  if (!read_request_head(sock, head)) {
    response = http_response(400, "Bad Request", "text/plain",
                             "malformed request\n");
  } else {
    // Request line: METHOD SP target SP version.
    const std::size_t line_end = head.find("\r\n");
    const std::string_view line(head.data(), line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      response = http_response(400, "Bad Request", "text/plain",
                               "malformed request line\n");
    } else {
      const std::string_view method = line.substr(0, sp1);
      const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      if (method != "GET") {
        response = http_response(405, "Method Not Allowed", "text/plain",
                                 "only GET is served here\n");
      } else if (target != "/metrics") {
        response = http_response(404, "Not Found", "text/plain",
                                 "try /metrics\n");
      } else {
        response =
            http_response(200, "OK",
                          "text/plain; version=0.0.4; charset=utf-8",
                          options_.body());
        scrapes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  sock.send_all(response.data(), response.size());
  sock.shutdown_both();
}

}  // namespace upsim::server
