// Structured access and slow-query logging: one JSON line per served
// request, written to a file or caller-supplied stream.
//
// The line schema (fixed key order, one object per line, newline
// terminated — machine-parseable with any JSON-lines reader):
//
//   {"ts_us":<unix µs>,"level":"info","method":"upsim","status":200,
//    "id":7,"trace":"9f86d081884c7d65","bytes_in":312,"bytes_out":5120,
//    "queue_wait_us":12.5,"handle_us":830.2,"cache_hit":false}
//
// "method" is "" when the request never parsed (the 400 says why);
// "trace" is always a real id — the server assigns one when the client
// sent none — so every line correlates with the trace export and the
// `trace` wire method.  bytes_* include the 4-byte frame header (they
// are wire bytes, not payload bytes).
//
// Slow-query promotion: a request whose handler time exceeds `slow_ms`
// logs at "level":"warn" and embeds its span tree (the same shape the
// `trace` method returns) plus the threshold it tripped:
//
//   {... ,"level":"warn", ... ,"slow_ms":5,"spans":[{"name":...}, ...]}
//
// The spans come from the tracer at log time; with obs disabled the tree
// is empty but the warn record still fires — slowness is worth a warning
// even when nobody is tracing.
//
// Thread model: log() is safe from any number of pool workers.  The line
// is formatted outside the lock; only the stream write serializes.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace upsim::server {

/// Everything one access-log line says about a request.  The server fills
/// it in as the request moves through parse → dispatch → response write.
struct AccessRecord {
  std::string method;         ///< "" = the envelope never parsed
  std::uint64_t id = 0;       ///< echoed request id
  std::uint64_t trace_id = 0; ///< never 0 by the time it is logged
  int status = 0;
  std::size_t bytes_in = 0;   ///< request wire bytes (frame header included)
  std::size_t bytes_out = 0;  ///< response wire bytes
  double queue_wait_us = 0.0; ///< frame read → pool worker pickup
  double handle_us = 0.0;     ///< parse + dispatch + serialize
  bool cache_hit = false;     ///< served from the response cache
  std::string model;          ///< resolved tenant/model id; "" = none
};

/// JSON array of one request's spans, sorted by start time — the "spans"
/// member of a `trace` method result and of a slow-query record.  Every
/// element carries name, category, span_id, parent_span_id, thread, depth,
/// start_us and duration_us.
[[nodiscard]] std::string span_tree_json(
    const std::vector<obs::SpanRecord>& spans);

struct AccessLogOptions {
  /// File to append to; "" uses `stream` instead.
  std::string path;
  /// Alternative sink when `path` is empty (tests pass an ostringstream);
  /// not owned, must outlive the log.
  std::ostream* stream = nullptr;
  /// Handler time (ms) beyond which a request logs as a "warn" record with
  /// its span tree embedded; 0 disables promotion.
  double slow_ms = 0.0;
  /// Where slow records fetch their span tree; null = Tracer::global().
  obs::Tracer* tracer = nullptr;
};

/// The sink.  Construction opens the file (throws upsim::Error when it
/// cannot); log() never throws — a failed write flips a dropped-lines
/// counter instead of taking the request down with it.
class AccessLog {
 public:
  explicit AccessLog(AccessLogOptions options);

  /// Formats and writes one line.  Safe from concurrent request handlers.
  void log(const AccessRecord& record) noexcept;

  [[nodiscard]] std::uint64_t lines_written() const noexcept;
  [[nodiscard]] std::uint64_t lines_dropped() const noexcept;
  [[nodiscard]] double slow_ms() const noexcept { return options_.slow_ms; }

 private:
  AccessLogOptions options_;
  std::ofstream file_;
  std::ostream* out_;  ///< &file_ or options_.stream
  mutable std::mutex mutex_;
  std::uint64_t lines_written_ = 0;
  std::uint64_t lines_dropped_ = 0;
};

}  // namespace upsim::server
