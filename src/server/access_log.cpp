#include "server/access_log.hpp"

#include <chrono>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace upsim::server {

namespace {

[[nodiscard]] std::uint64_t unix_micros_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string span_tree_json(const std::vector<obs::SpanRecord>& spans) {
  obs::JsonWriter w;
  w.begin_array();
  for (const obs::SpanRecord& s : spans) {
    w.begin_object();
    w.key("name");
    w.value(s.name);
    w.key("category");
    w.value(s.category);
    w.key("span_id");
    w.value(s.span_id);
    w.key("parent_span_id");
    w.value(s.parent_span_id);
    w.key("thread");
    w.value(static_cast<std::uint64_t>(s.thread_index));
    w.key("depth");
    w.value(static_cast<std::uint64_t>(s.depth));
    w.key("start_us");
    w.value(s.start_us);
    w.key("duration_us");
    w.value(s.duration_us);
    w.end_object();
  }
  w.end_array();
  return std::move(w).str();
}

AccessLog::AccessLog(AccessLogOptions options) : options_(std::move(options)) {
  if (!options_.path.empty()) {
    file_.open(options_.path, std::ios::out | std::ios::app);
    if (!file_) {
      throw Error("access_log: cannot open '" + options_.path + "'");
    }
    out_ = &file_;
  } else if (options_.stream != nullptr) {
    out_ = options_.stream;
  } else {
    throw Error("access_log: need a path or a stream");
  }
}

void AccessLog::log(const AccessRecord& record) noexcept {
  try {
    const bool slow = options_.slow_ms > 0.0 &&
                      record.handle_us > options_.slow_ms * 1000.0;
    obs::JsonWriter w;
    w.begin_object();
    w.key("ts_us");
    w.value(unix_micros_now());
    w.key("level");
    w.value(slow ? "warn" : "info");
    w.key("method");
    w.value(record.method);
    w.key("status");
    w.value(record.status);
    w.key("id");
    w.value(record.id);
    w.key("trace");
    w.value(obs::format_trace_id(record.trace_id));
    w.key("bytes_in");
    w.value(static_cast<std::uint64_t>(record.bytes_in));
    w.key("bytes_out");
    w.value(static_cast<std::uint64_t>(record.bytes_out));
    w.key("queue_wait_us");
    w.value(record.queue_wait_us);
    w.key("handle_us");
    w.value(record.handle_us);
    w.key("cache_hit");
    w.value(record.cache_hit);
    if (!record.model.empty()) {
      w.key("model");
      w.value(record.model);
    }
    if (slow) {
      obs::Tracer& tracer =
          options_.tracer != nullptr ? *options_.tracer : obs::Tracer::global();
      w.key("slow_ms");
      w.value(options_.slow_ms);
      w.key("spans");
      w.raw_value(span_tree_json(tracer.spans_for_trace(record.trace_id)));
    }
    w.end_object();
    std::string line = std::move(w).str();
    line += '\n';

    std::lock_guard lock(mutex_);
    out_->write(line.data(), static_cast<std::streamsize>(line.size()));
    out_->flush();
    if (out_->good()) {
      ++lines_written_;
    } else {
      ++lines_dropped_;
      out_->clear();  // keep trying; a full disk may drain
    }
  } catch (...) {
    std::lock_guard lock(mutex_);
    ++lines_dropped_;
  }
}

std::uint64_t AccessLog::lines_written() const noexcept {
  std::lock_guard lock(mutex_);
  return lines_written_;
}

std::uint64_t AccessLog::lines_dropped() const noexcept {
  std::lock_guard lock(mutex_);
  return lines_dropped_;
}

}  // namespace upsim::server
