// A minimal HTTP/1.1 endpoint that serves the Prometheus text exposition
// of the global metrics registry — the scrape side of the observability
// pipeline (upsimd --prom-port).
//
// Deliberately not a web server: it answers exactly one request per
// connection ("Connection: close"), reads at most a few KB of headers,
// and handles requests serially on its own accept thread.  A Prometheus
// scraper polls every few seconds from one or two sources; concurrency
// here would be machinery without a workload.  The wire protocol proper
// (frames on the main port) stays byte-oriented and untouched — this
// listener exists only so stock HTTP tooling (prometheus, curl) can read
// the registry without speaking frames.
//
// Routes:
//   GET /metrics  → 200, Content-Type: text/plain; version=0.0.4 — the
//                   body comes from the snapshot callback (default: the
//                   global registry through obs::render_prometheus)
//   GET <other>   → 404       anything else → 405
//   unparseable   → 400
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>

#include "net/socket.hpp"

namespace upsim::server {

struct MetricsHttpOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port().
  std::uint16_t port = 0;
  int read_timeout_ms = 2000;
  int write_timeout_ms = 2000;
  /// Produces the exposition body per scrape; null = Prometheus rendering
  /// of obs::Registry::global().snapshot().
  std::function<std::string()> body;
};

class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(MetricsHttpOptions options = {});
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;
  /// stop()s if still running.
  ~MetricsHttpServer();

  /// Binds and starts the accept thread; throws net::NetError (port in
  /// use etc.), after which the server is not running.
  void start();
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t scrapes_served() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve(net::Socket sock);

  MetricsHttpOptions options_;
  std::optional<net::Listener> listener_;
  std::thread acceptor_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> scrapes_{0};
};

}  // namespace upsim::server
