#include "server/protocol.hpp"

#include "obs/trace.hpp"

namespace upsim::server {

namespace {

/// params member access that turns shape errors into 400s with the member
/// path in the message (the engine's own errors handle semantic problems).
const obs::JsonValue& require(const obs::JsonValue& object,
                              std::string_view key,
                              obs::JsonValue::Kind kind,
                              std::string_view what) {
  if (!object.is_object() || !object.has(key)) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "missing " + std::string(what));
  }
  const obs::JsonValue& v = object.at(key);
  if (v.kind != kind) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        std::string(what) + " has the wrong type");
  }
  return v;
}

void write_pairs(obs::JsonWriter& w, const core::UpsimResult& result) {
  w.key("pairs");
  w.begin_array();
  for (std::size_t i = 0; i < result.pairs.size(); ++i) {
    const auto& pair = result.pairs[i];
    w.begin_object();
    w.key("service");
    w.value(pair.atomic_service);
    w.key("requester");
    w.value(pair.requester);
    w.key("provider");
    w.value(pair.provider);
    w.key("truncated");
    w.value(result.path_sets[i].truncated);
    w.key("paths");
    w.begin_array();
    for (const auto& path : result.path_names(i)) {
      w.begin_array();
      for (const auto& name : path) w.value(name);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

}  // namespace

Request parse_request(const obs::JsonValue& document) {
  if (!document.is_object()) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "request must be a JSON object");
  }
  Request req;
  if (document.has("id")) {
    const obs::JsonValue& id = document.at("id");
    if (id.kind != obs::JsonValue::Kind::Number || id.number < 0) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "request 'id' must be a non-negative number");
    }
    req.id = static_cast<std::uint64_t>(id.number);
  }
  req.method =
      require(document, "method", obs::JsonValue::Kind::String, "'method'")
          .string;
  if (document.has("params")) {
    const obs::JsonValue& params = document.at("params");
    if (!params.is_object()) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "request 'params' must be an object");
    }
    req.params = params;
  } else {
    req.params.kind = obs::JsonValue::Kind::Object;
  }
  if (document.has("trace")) {
    const obs::JsonValue& trace = document.at("trace");
    if (trace.kind != obs::JsonValue::Kind::String ||
        (req.trace_id = obs::parse_trace_id(trace.string)) == 0) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "request 'trace' must be 16 hex characters");
    }
  }
  if (document.has("model")) {
    const obs::JsonValue& model = document.at("model");
    if (model.kind != obs::JsonValue::Kind::String || model.string.empty()) {
      throw ProtocolError(kStatusBadRequest, "bad_request",
                          "request 'model' must be a non-empty string");
    }
    req.model = model.string;
  }
  return req;
}

mapping::ServiceMapping mapping_from_params(const obs::JsonValue& params) {
  const obs::JsonValue& rows = require(
      params, "mapping", obs::JsonValue::Kind::Array, "params 'mapping'");
  if (rows.array.empty()) {
    throw ProtocolError(kStatusBadRequest, "bad_request",
                        "params 'mapping' must not be empty");
  }
  mapping::ServiceMapping m;
  for (const obs::JsonValue& row : rows.array) {
    m.map(require(row, "service", obs::JsonValue::Kind::String,
                  "mapping entry 'service'")
              .string,
          require(row, "requester", obs::JsonValue::Kind::String,
                  "mapping entry 'requester'")
              .string,
          require(row, "provider", obs::JsonValue::Kind::String,
                  "mapping entry 'provider'")
              .string);
  }
  return m;
}

std::string query_params_json(std::string_view composite,
                              const mapping::ServiceMapping& mapping,
                              std::string_view name) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("composite");
  w.value(composite);
  w.key("mapping");
  w.begin_array();
  for (const auto& pair : mapping.pairs()) {
    w.begin_object();
    w.key("service");
    w.value(pair.atomic_service);
    w.key("requester");
    w.value(pair.requester);
    w.key("provider");
    w.value(pair.provider);
    w.end_object();
  }
  w.end_array();
  if (!name.empty()) {
    w.key("name");
    w.value(name);
  }
  w.end_object();
  return std::move(w).str();
}

std::string make_response(std::uint64_t id, std::string_view result_json) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id");
  w.value(id);
  w.key("status");
  w.value(kStatusOk);
  w.key("result");
  w.raw_value(result_json);
  w.end_object();
  return std::move(w).str();
}

std::string make_error(std::uint64_t id, int status, std::string_view code,
                       std::string_view message) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id");
  w.value(id);
  w.key("status");
  w.value(status);
  w.key("error");
  w.begin_object();
  w.key("code");
  w.value(code);
  w.key("message");
  w.value(message);
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

bool any_truncated(const core::UpsimResult& result) {
  for (const auto& set : result.path_sets) {
    if (set.truncated) return true;
  }
  return false;
}

std::string upsim_result_json(const core::UpsimResult& result,
                              bool paths_only) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value(result.upsim.name());
  w.key("truncated");
  w.value(any_truncated(result));
  w.key("total_paths");
  w.value(static_cast<std::uint64_t>(result.total_paths()));
  if (!paths_only) {
    w.key("instances");
    w.begin_array();
    for (const auto* inst : result.upsim.instances()) w.value(inst->name());
    w.end_array();
    w.key("links");
    w.begin_array();
    for (const auto& link : result.upsim.links()) w.value(link->name());
    w.end_array();
  }
  write_pairs(w, result);
  w.end_object();
  return std::move(w).str();
}

std::string availability_json(const core::AvailabilityReport& report,
                              const core::UpsimResult& result) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value(result.upsim.name());
  w.key("truncated");
  w.value(any_truncated(result));
  w.key("exact");
  w.value(report.exact);
  w.key("independent_pairs");
  w.value(report.independent_pairs);
  w.key("rbd");
  w.value(report.rbd);
  w.key("exact_linear");
  w.value(report.exact_linear);
  w.key("per_pair_exact");
  w.begin_array();
  for (const double v : report.per_pair_exact) w.value(v);
  w.end_array();
  w.key("monte_carlo");
  w.begin_object();
  w.key("estimate");
  w.value(report.monte_carlo.estimate);
  w.key("std_error");
  w.value(report.monte_carlo.std_error);
  w.key("samples");
  w.value(static_cast<std::uint64_t>(report.monte_carlo.samples));
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace upsim::server
