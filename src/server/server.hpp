// upsimd's serving core: a TCP request router over a registry of
// engine::PerspectiveEngines (one per active model version).
//
// Model routing — every request resolves to one registry::ServingModel
// before its handler runs:
//
//   - envelope "model" absent: the registry's *default* model, acquired
//     through a lock-free atomic shared_ptr load (the pre-registry hot
//     path; response bytes are unchanged from the single-model days).  A
//     daemon with no active default (degraded start, default deleted)
//     answers 503 no_default_model but keeps serving model_* methods and
//     health.
//   - envelope "model" present: a shared-lock registry lookup by
//     tenant/model id (404 unknown_model when absent), plus one
//     per-tenant concurrency ticket (429 past the quota).
//
// The resolved shared_ptr rides in a ModelContext for the handler's whole
// run, so a model_activate mid-request cannot tear the engine down under
// it — the old version drains by refcount.  Served-result cache keys are
// prefixed with the model id *and version*, so a hot-swap implicitly
// retires the old version's entries and two tenants can never cross-serve
// each other's bytes; per-element eviction goes through model-scoped
// index buckets for the same reason.
//
// Thread model — one acceptor thread, one lightweight reader thread per
// connection, and a shared util::ThreadPool that executes every request
// body:
//
//   acceptor ──accept──▶ connection reader ──frame──▶ pool worker
//                         (waits for completion)       (engine query +
//                                                       response write)
//
// The reader/pool split keeps slow clients from pinning engine capacity
// (a reader blocked in recv costs a ~dormant thread, not a pool slot) and
// funnels all CPU-bound work through one pool the operator can size.  The
// pool worker writes the response frame itself before signalling the
// reader: the client's wakeup directly follows the handler and the
// reader's wakeup drops off the request's critical path (worth ~one
// context switch per request on a loaded box).  The reader does not touch
// the socket again until the worker is done, so a connection has at most
// one request in flight and responses never interleave; the pool's
// in-flight count is therefore bounded by the connection limit, and
// `max_backlog` bounds it further — past it the server replies 503
// immediately instead of queueing (fail-fast beats unbounded queueing
// under overload).
//
// Graceful shutdown (stop()): stop accepting, half-close every
// connection's read side so no *new* requests arrive, let in-flight
// requests finish and their responses flush, then join everything.  A
// request that slips in during the drain gets a 503 "draining".
//
// Instrumentation (when obs::enabled()): counters
// server.connections_{accepted,rejected}, server.requests.<method>,
// server.responses.<status>, server.bytes_{in,out},
// server.response_cache.{hits,misses}; gauge server.connections_active;
// histograms server.queue_wait_us (frame read → pool worker pickup) and
// server.handle_us (handler execution); spans server.request.  Model-
// routed requests additionally count server.model.requests and record
// server.model.handle_us under the '#tenant=<t>,model=<m>' label-suffix
// convention (src/obs/prometheus.hpp), so the Prometheus exposition
// breaks traffic out per tenant and model.
//
// Trace context: every request runs under an obs::TraceScope for the
// trace id the client sent in the envelope's "trace" member (or one the
// server generates when absent), so server.request and everything the
// engine records beneath it stitch into one per-request tree — queryable
// live through the `trace` method, exported per request via
// obs::Tracer::to_chrome_json_by_trace(), and stamped on every access-log
// line (ServerOptions::access_log).  Response-cache hit/miss counts are
// additionally kept in always-on atomics (response_cache_hits() etc.) so
// the `metrics` method reports cache effectiveness with obs off.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/perspective_engine.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "registry/model_registry.hpp"
#include "scenario/event.hpp"
#include "server/access_log.hpp"
#include "server/protocol.hpp"
#include "service/service.hpp"
#include "util/thread_pool.hpp"

namespace upsim::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with Server::port().
  std::uint16_t port = 0;
  std::size_t max_connections = 64;
  /// Request frames above this are refused with 413 and the connection is
  /// closed (the payload is unread, so the stream cannot resync).
  std::size_t max_request_bytes = 1u << 20;
  /// In-flight requests beyond which new ones get an immediate 503.
  std::size_t max_backlog = 128;
  /// Per-frame read budget; an idle or stalled connection is closed when it
  /// elapses.  0 = wait forever.
  int read_timeout_ms = 30000;
  int write_timeout_ms = 5000;
  /// Pool that executes request handlers; null = the registry's shared
  /// engine pool.
  util::ThreadPool* pool = nullptr;
  /// Per-tenant quota the legacy (engine, services) constructor configures
  /// its internally owned registry with; ignored when an external registry
  /// is passed (set the quota on that registry instead).
  registry::TenantQuota default_quota;
  /// Perspective name used when a request does not send "name".
  std::string default_perspective = "net_view";
  /// Entries in the served-result cache for upsim/paths (0 disables).
  /// Results are deterministic for a (method, composite, mapping, name)
  /// tuple at a fixed engine epoch, so repeated perspectives are served
  /// from memory — only the response envelope (the echoed id) is built per
  /// request.  Coarse topology invalidation bumps the epoch, which retires
  /// every cached result; fine-grained events (scenario_step,
  /// invalidate_topology with "elements") keep the epoch and instead evict
  /// through a per-element index fed by the engine's QueryInfo, so a
  /// failure on one branch leaves every unrelated perspective's entry hot.
  /// Property and mapping invalidations don't change these results' bytes
  /// (names only, no property values), so entries survive them.
  /// `availability` is never cached: its numbers follow property changes
  /// that leave the epoch alone.
  std::size_t response_cache_entries = 1024;
  /// Structured access/slow-query log; null disables it.  Must outlive the
  /// server (see src/server/access_log.hpp for the line schema).
  AccessLog* access_log = nullptr;
};

class Server {
 public:
  /// Single-model convenience: wraps an internally owned ModelRegistry and
  /// adopts `engine`/`services` as its already-active default model, so
  /// the pre-registry embedding keeps working unchanged.  The engine,
  /// catalog and (optional) pool must outlive the server.
  Server(engine::PerspectiveEngine& engine,
         const service::ServiceCatalog& services, ServerOptions options = {});

  /// Multi-model serving over an external registry (upsimd's shape).  The
  /// registry and (optional) pool must outlive the server.
  Server(registry::ModelRegistry& registry, ServerOptions options = {});
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  /// stop()s if still running.
  ~Server();

  /// Binds, listens and starts accepting.  Throws net::NetError (e.g. port
  /// in use); the server is not running afterwards in that case.
  void start();

  /// Graceful shutdown as described above.  Idempotent; safe to call from
  /// any thread except a handler's own.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::size_t active_connections() const noexcept {
    return active_connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t requests_in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Served-result cache effectiveness, counted whether or not obs is
  /// enabled (the `metrics` method reports these).
  [[nodiscard]] std::uint64_t response_cache_hits() const noexcept {
    return response_cache_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t response_cache_misses() const noexcept {
    return response_cache_misses_.load(std::memory_order_relaxed);
  }
  /// Entries dropped by fine-grained (per-element) invalidation, as opposed
  /// to epoch retirement.
  [[nodiscard]] std::uint64_t response_cache_evictions() const noexcept {
    return response_evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    net::Socket sock;
    std::thread reader;
    std::atomic<bool> finished{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  /// Joins and drops finished connections (called from the acceptor).
  void reap_connections();
  /// Writes one response frame and bumps the response/byte counters.
  /// Callers serialize access to the connection's socket (see the thread
  /// model above); throws on send failure.
  void write_response(Connection* conn, int status, std::string_view response);

  /// Parses and dispatches one request payload; never throws — every
  /// failure becomes an error response.  Returns (status, response payload)
  /// and fills `access` in for the access log (method, id, trace id, cache
  /// hit, handler time).  `access.trace_id` arrives pre-set to a generated
  /// fallback and is replaced by the client's id when the envelope carries
  /// one; the request's spans record under whichever won.
  [[nodiscard]] std::pair<int, std::string> handle_payload(
      std::string_view payload, AccessRecord& access);
  [[nodiscard]] std::string dispatch(const Request& req, AccessRecord& access);

  /// The model one request runs against.  Holding the shared_ptr for the
  /// handler's lifetime is what makes hot-swap drain work: an activate
  /// mid-request swaps the registry's pointer but cannot destroy this
  /// engine until the context releases it.
  struct ModelContext {
    std::shared_ptr<registry::ServingModel> model;
    registry::RequestTicket ticket;

    [[nodiscard]] engine::PerspectiveEngine& engine() const {
      return *model->engine;
    }
    [[nodiscard]] const service::ServiceCatalog& services() const {
      return *model->services;
    }
  };

  /// Resolves the request's model (default or envelope-named), takes the
  /// tenant's concurrency ticket and stamps access/metrics.  Throws
  /// ProtocolError 503 (no default), 404 (unknown id) or QuotaError 429.
  [[nodiscard]] ModelContext resolve_model(const Request& req,
                                           AccessRecord& access);

  // Method handlers (return the result JSON; throw for error responses).
  [[nodiscard]] std::string handle_query(const ModelContext& ctx,
                                         const Request& req, bool paths_only,
                                         AccessRecord& access);
  [[nodiscard]] std::string handle_availability(const ModelContext& ctx,
                                                const Request& req);
  [[nodiscard]] std::string handle_invalidate_topology(const ModelContext& ctx,
                                                       const Request& req);
  [[nodiscard]] std::string handle_invalidate_properties(
      const ModelContext& ctx, const Request& req);
  [[nodiscard]] std::string handle_scenario_load(const Request& req);
  [[nodiscard]] std::string handle_scenario_step(const ModelContext& ctx,
                                                 const Request& req);
  [[nodiscard]] std::string handle_validate(const ModelContext& ctx,
                                            const Request& req);
  [[nodiscard]] std::string handle_trace(const Request& req);
  [[nodiscard]] std::string handle_metrics();
  [[nodiscard]] std::string handle_health();
  [[nodiscard]] std::string handle_model_upload(const Request& req);
  [[nodiscard]] std::string handle_model_activate(const Request& req);
  [[nodiscard]] std::string handle_model_list();
  [[nodiscard]] std::string handle_model_delete(const Request& req);
  [[nodiscard]] std::string handle_report_observations(const ModelContext& ctx,
                                                       const Request& req);

  /// Applies one scenario event through the model's fine-grained engine
  /// surface (or, when `coarse`, the epoch-flush baseline) and evicts the
  /// served results it can influence.  Shared by scenario_step's
  /// loaded-trace and inline-event paths.
  engine::InvalidationReport apply_scenario_event(const ModelContext& ctx,
                                                  const scenario::Event& event,
                                                  bool coarse,
                                                  std::uint64_t& response_evicted);
  /// Drops every cached served result of `model_id` routed through one of
  /// `elements` (per the model-scoped response index) and bumps the
  /// invalidation version so in-flight misses keyed before the event
  /// cannot re-insert stale bytes.
  std::uint64_t evict_responses_for(const std::string& model_id,
                                    const std::vector<std::string>& elements);
  /// Drops every cached served result and index bucket of `model_id`
  /// (coarse flush / model deletion); other models' entries stay hot.
  std::uint64_t flush_responses_for(const std::string& model_id);

  registry::ModelRegistry* registry_;
  std::unique_ptr<registry::ModelRegistry> owned_registry_;
  ServerOptions options_;
  util::ThreadPool* pool_;

  std::optional<net::Listener> listener_;
  std::thread acceptor_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> active_connections_{0};

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  // Served-result cache (see ServerOptions::response_cache_entries).  The
  // whole map is dropped when full — the working set of perspectives is
  // tiny next to the limit, so eviction sophistication buys nothing here.
  // `response_index_` maps element names to the cached keys whose answers
  // depend on them (from engine::QueryInfo), and `invalidation_version_`
  // closes the stale-insert race: a miss snapshots the version before the
  // engine query and only inserts if no fine-grained eviction ran in
  // between.  Both live under response_cache_mutex_.
  std::shared_mutex response_cache_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const std::string>>
      response_cache_;
  std::unordered_map<std::string, std::unordered_set<std::string>>
      response_index_;
  std::uint64_t invalidation_version_ = 0;
  std::atomic<std::uint64_t> response_cache_hits_{0};
  std::atomic<std::uint64_t> response_cache_misses_{0};
  std::atomic<std::uint64_t> response_evictions_{0};

  // scenario_load's trace and the replay cursor scenario_step advances.
  std::mutex scenario_mutex_;
  std::vector<scenario::Event> scenario_trace_;
  std::size_t scenario_pos_ = 0;
};

}  // namespace upsim::server
