// The upsimd wire protocol: JSON request/response documents carried in
// net/frame.hpp frames.
//
// Request:
//   {"id": <u64, optional, echoed>, "method": "<name>", "params": {...},
//    "trace": "<16 hex chars, optional>",
//    "model": "<tenant/model, optional>"}
//
// "model" routes the request at the model registry: absent (every
// pre-registry client) the request resolves to the daemon's default model
// and the response bytes are identical to the single-model days; present,
// it names a `tenant/model` id registered through model_upload/
// model_activate.  An unknown id answers 404 unknown_model; a daemon with
// no active default answers 503 no_default_model.
//
// "trace" is the request's trace id (obs::format_trace_id form).  A server
// runs the request under that trace context so every span it records —
// dispatch, engine query, path discovery — carries the id, queryable back
// through the `trace` method and stitched per request in the daemon's
// --trace-out export.  Old clients simply omit the member; the server then
// assigns an id of its own so access-log lines always correlate.
//
// Response:
//   {"id": <echoed>, "status": 200, "result": {...}}
//   {"id": <echoed>, "status": <code>, "error": {"code": "...",
//                                                "message": "..."}}
//
// Methods (see docs/ARCHITECTURE.md for the full field-by-field spec):
//   upsim                  generate a perspective's UPSIM (instances, links,
//                          per-pair paths, truncation flags)
//   paths                  the discovery part only
//   availability           upsim + the dependability estimators
//   invalidate_topology    change class 1: re-import, bump epoch.  With
//                          params "elements" (array of instance/link
//                          names): fine-grained — the epoch holds, only
//                          cached discoveries and served results routed
//                          through those elements are evicted (sound for
//                          non-additive changes; see PerspectiveEngine)
//   invalidate_properties  change class 2: re-project, keep cache.  With
//                          params "elements": also reports the affected
//                          pair count; with params "updates" ([{"element",
//                          "attribute","value"}, ...]): applies per-element
//                          attribute overrides first (observed MTBF/MTTR
//                          feeding back into the model)
//   invalidate_mapping     change class 4: forget one recorded perspective
//   scenario_load          params "events": array of scenario events (see
//                          src/scenario/event.hpp); replaces the server's
//                          loaded trace, result {"loaded", "position"}
//   scenario_step          applies the next params "count" (default 1)
//                          loaded events — or one inline params "event" —
//                          through the fine-grained invalidation path
//                          (params "mode":"coarse" forces the epoch-flush
//                          baseline); result reports applied/position/
//                          epoch/affected_keys/path_evictions/
//                          response_evictions/full_flush
//   validate               lint the served model (optional params
//                          "composite" and "mapping" extend the check to a
//                          query's inputs); result is the lint JSON report,
//                          findings never fail the request
//   metrics                obs registry snapshot + engine path cache and
//                          served-result cache stats (per active model)
//   trace                  finished spans of one trace id (params "trace"),
//                          the per-request span tree
//   health                 liveness, serving state, epoch, connection counts
//   model_upload           params "bundle" (the umlbundle XML document as a
//                          string): parse, lint-gate, build and stage a new
//                          version of the envelope's "model"; result
//                          {"model","version","lint_warnings"}
//   model_activate         switch the envelope's "model" to params
//                          "version" (absent/0 = newest staged); the old
//                          version drains in-flight queries, then tears
//                          down; result {"model","version","previous",
//                          "observations_applied"}
//   model_list             all registered models: id, tenant, active/staged
//                          versions, draining engines, observation counts
//   model_delete           drop params "version" of the envelope's "model"
//                          (staged only), or the whole model when absent
//   report_observations    params "observations": [{"element","kind"
//                          ("fail"/"repair", scenario kind names accepted),
//                          "t" hours}, ...] — folds failure/repair
//                          intervals into the model's running MTBF/MTTR
//                          estimators and pushes the estimates through
//                          element-scoped property overrides (epoch holds,
//                          unrelated cache state survives); result reports
//                          per-element estimates and affected pairs
//
// Status codes (HTTP-flavoured so they read on sight): 200 ok,
// 400 bad request (malformed document/params), 403 tenant quota exceeded
// (model count / bundle bytes), 404 unknown name/model/version,
// 409 conflict (deleting the active version), 413 frame over the size
// limit, 429 tenant over its concurrent-request quota, 500 handler bug,
// 503 overloaded/draining/no default model.
//
// Result serialization is deliberately deterministic — fixed key order,
// fixed float formatting, no timings or other wall-clock noise — so a
// served response is byte-identical to serializing an in-process
// engine::PerspectiveEngine answer (tests/test_server.cpp holds it to
// that).  Both the server and the differential tests call these writers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/analysis.hpp"
#include "core/upsim_generator.hpp"
#include "mapping/mapping.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace upsim::server {

inline constexpr int kStatusOk = 200;
inline constexpr int kStatusBadRequest = 400;
inline constexpr int kStatusForbidden = 403;
inline constexpr int kStatusNotFound = 404;
inline constexpr int kStatusConflict = 409;
inline constexpr int kStatusPayloadTooLarge = 413;
inline constexpr int kStatusTooManyRequests = 429;
inline constexpr int kStatusInternalError = 500;
inline constexpr int kStatusUnavailable = 503;

/// A request that cannot be served, carrying the protocol status and
/// machine-readable code to respond with.
class ProtocolError : public Error {
 public:
  ProtocolError(int status, std::string code, const std::string& message)
      : Error(message), status_(status), code_(std::move(code)) {}

  [[nodiscard]] int status() const noexcept { return status_; }
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  int status_;
  std::string code_;
};

/// One parsed request envelope.
struct Request {
  std::uint64_t id = 0;
  std::string method;
  obs::JsonValue params;        ///< object; empty object when absent
  std::uint64_t trace_id = 0;   ///< 0 = client sent no "trace" member
  std::string model;            ///< "" = route to the default model
};

/// Validates the envelope shape; throws ProtocolError(400) on a missing or
/// mistyped member.  The params *content* is validated by each method.
[[nodiscard]] Request parse_request(const obs::JsonValue& document);

/// Reads params' "mapping": [{"service","requester","provider"}, ...] into
/// a ServiceMapping; throws ProtocolError(400) on shape errors.
[[nodiscard]] mapping::ServiceMapping mapping_from_params(
    const obs::JsonValue& params);

/// Builds the params object for upsim/paths/availability from an in-memory
/// mapping — the client-side inverse of mapping_from_params.  Empty `name`
/// omits the member (server default applies).
[[nodiscard]] std::string query_params_json(
    std::string_view composite, const mapping::ServiceMapping& mapping,
    std::string_view name = {});

/// Envelope builders.  `result_json` must be a complete JSON value.
[[nodiscard]] std::string make_response(std::uint64_t id,
                                        std::string_view result_json);
[[nodiscard]] std::string make_error(std::uint64_t id, int status,
                                     std::string_view code,
                                     std::string_view message);

/// True when any pair's discovery was cut short by a limit — surfaced as
/// the "truncated" member of upsim/paths/availability results so bounded
/// discovery can never silently pass for the exhaustive kind.
[[nodiscard]] bool any_truncated(const core::UpsimResult& result);

/// Result payload for `upsim` (paths_only=false) and `paths` (=true).
[[nodiscard]] std::string upsim_result_json(const core::UpsimResult& result,
                                            bool paths_only);

/// Result payload for `availability`.
[[nodiscard]] std::string availability_json(
    const core::AvailabilityReport& report, const core::UpsimResult& result);

}  // namespace upsim::server
