// The University of Lugano (USI) case study of Sec. VI: the campus network
// of Figs. 5/9, the availability and network profiles of Figs. 6/7, the
// component classes with their dependability values of Fig. 8, the printing
// service of Fig. 10, and the Table I service mapping.
//
// Topology reconstruction notes (the source scan of Figs. 5/9 is partially
// garbled) are in DESIGN.md §3; the reconstruction reproduces the exact
// path listing of Sec. VI-G and the UPSIM node sets of Figs. 11/12.
//
// Substitution (documented in DESIGN.md): the paper's Connector stereotype
// values are unreadable in the scan; links use MTBF=500000 h, MTTR=0.5 h.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mapping/mapping.hpp"
#include "service/service.hpp"
#include "uml/object_model.hpp"
#include "uml/profile.hpp"

namespace upsim::casestudy {

/// Fig. 6: «Component» (abstract; MTBF, MTTR, redundantComponents) with
/// «Device» extending Class and «Connector» extending Association.
[[nodiscard]] std::unique_ptr<uml::Profile> make_availability_profile();

/// Fig. 7: «Network Device» (abstract; manufacturer, model) specialised by
/// Router/Switch/Printer/Computer, «Computer» (abstract; processor)
/// specialised by Client/Server, and «Communication» (channel, throughput)
/// extending Association.
[[nodiscard]] std::unique_ptr<uml::Profile> make_network_profile();

/// Everything the case study needs, owned in dependency order.
struct UsiCaseStudy {
  std::unique_ptr<uml::Profile> availability_profile;
  std::unique_ptr<uml::Profile> network_profile;
  std::unique_ptr<uml::ClassModel> classes;        ///< Fig. 8
  std::unique_ptr<uml::ObjectModel> infrastructure;  ///< Figs. 5/9
  std::unique_ptr<service::ServiceCatalog> services;  ///< Fig. 10 (+ backup)

  /// Table I: the printing service requested from client t1, printed on
  /// printer p2, through server printS.
  [[nodiscard]] mapping::ServiceMapping mapping_t1_p2() const;
  /// The second perspective of Sec. VI-H: client t15, printer p3.
  [[nodiscard]] mapping::ServiceMapping mapping_t15_p3() const;
  /// A printing-service mapping for an arbitrary client/printer pair (used
  /// by the mobility example); both must be instances of the infrastructure.
  [[nodiscard]] mapping::ServiceMapping printing_mapping(
      const std::string& client, const std::string& printer) const;
  /// Mapping for the secondary "backup" composite (requester client,
  /// provider chain backup/db servers) — exercises multi-service analysis.
  [[nodiscard]] mapping::ServiceMapping backup_mapping(
      const std::string& client) const;
};

/// Builds the full case study.
[[nodiscard]] UsiCaseStudy make_usi_case_study();

/// Ground truth from the paper, used by tests and EXPERIMENTS.md:
/// the first two discovered paths of Sec. VI-G ...
[[nodiscard]] const std::vector<std::vector<std::string>>&
expected_first_paths_t1_printS();
/// ... the Fig. 11 UPSIM node set (t1 -> p2 via printS) ...
[[nodiscard]] const std::vector<std::string>& expected_upsim_t1_p2();
/// ... and the Fig. 12 UPSIM node set (t15 -> p3 via printS).
[[nodiscard]] const std::vector<std::string>& expected_upsim_t15_p3();

/// Name of the printing composite service ("printing") and its five atomic
/// services in execution order (Fig. 10 / Table I).
[[nodiscard]] const std::string& printing_service_name();
[[nodiscard]] const std::vector<std::string>& printing_atomic_services();

}  // namespace upsim::casestudy
