#include "casestudy/usi.hpp"

#include "util/error.hpp"

namespace upsim::casestudy {

std::unique_ptr<uml::Profile> make_availability_profile() {
  auto profile = std::make_unique<uml::Profile>("availability");
  uml::Stereotype& component = profile->define(
      "Component", uml::Metaclass::Class, nullptr, /*is_abstract=*/true);
  component.declare_attribute("MTBF", uml::ValueType::Real);
  component.declare_attribute("MTTR", uml::ValueType::Real);
  component.declare_attribute("redundantComponents", uml::ValueType::Integer,
                              uml::Value(0));
  profile->define("Device", uml::Metaclass::Class, &component);
  // «Connector» extends Association; UML profiles cannot share one
  // stereotype across metaclasses, so Connector redeclares the Component
  // attribute set (the paper draws the inheritance; the subset semantics
  // are identical).
  uml::Stereotype& connector =
      profile->define("Connector", uml::Metaclass::Association);
  connector.declare_attribute("MTBF", uml::ValueType::Real);
  connector.declare_attribute("MTTR", uml::ValueType::Real);
  connector.declare_attribute("redundantComponents", uml::ValueType::Integer,
                              uml::Value(0));
  return profile;
}

std::unique_ptr<uml::Profile> make_network_profile() {
  auto profile = std::make_unique<uml::Profile>("network");
  uml::Stereotype& network_device = profile->define(
      "NetworkDevice", uml::Metaclass::Class, nullptr, /*is_abstract=*/true);
  network_device.declare_attribute("manufacturer", uml::ValueType::String);
  network_device.declare_attribute("model", uml::ValueType::String);
  profile->define("Router", uml::Metaclass::Class, &network_device);
  profile->define("Switch", uml::Metaclass::Class, &network_device);
  profile->define("Printer", uml::Metaclass::Class, &network_device);
  uml::Stereotype& computer =
      profile->define("Computer", uml::Metaclass::Class, &network_device,
                      /*is_abstract=*/true);
  computer.declare_attribute("processor", uml::ValueType::String);
  profile->define("Client", uml::Metaclass::Class, &computer);
  profile->define("Server", uml::Metaclass::Class, &computer);
  uml::Stereotype& communication =
      profile->define("Communication", uml::Metaclass::Association);
  communication.declare_attribute("channel", uml::ValueType::String);
  communication.declare_attribute("throughput", uml::ValueType::Real);
  return profile;
}

namespace {

/// Fig. 8 dependability values, hours.
struct DeviceSpec {
  const char* class_name;
  const char* network_stereotype;
  double mtbf;
  double mttr;
  const char* manufacturer;
  const char* model;
};

constexpr DeviceSpec kDeviceSpecs[] = {
    {"Server", "Server", 60000.0, 0.1, "Generic", "Rack server"},
    {"C6500", "Switch", 183498.0, 0.5, "Cisco", "Catalyst 6500"},
    {"C2960", "Switch", 61320.0, 0.5, "Cisco", "Catalyst 2960"},
    {"HP2650", "Switch", 199000.0, 0.5, "HP", "ProCurve 2650"},
    {"C3750", "Switch", 188575.0, 0.5, "Cisco", "Catalyst 3750"},
    {"Comp", "Client", 3000.0, 24.0, "Generic", "Desktop PC"},
    {"Printer", "Printer", 2880.0, 1.0, "HP", "LaserJet"},
};

/// Substituted link values (see file header).
constexpr double kLinkMtbf = 500000.0;
constexpr double kLinkMttr = 0.5;

}  // namespace

UsiCaseStudy make_usi_case_study() {
  UsiCaseStudy cs;
  cs.availability_profile = make_availability_profile();
  cs.network_profile = make_network_profile();
  const uml::Profile& avail = *cs.availability_profile;
  const uml::Profile& net = *cs.network_profile;

  // -- Step 1 (Sec. VI-A): component classes, Fig. 8 -----------------------
  cs.classes = std::make_unique<uml::ClassModel>("usi_classes");
  uml::ClassModel& classes = *cs.classes;
  for (const DeviceSpec& spec : kDeviceSpecs) {
    uml::Class& cls = classes.define_class(spec.class_name);
    auto& component = cls.apply(avail.get("Device"));
    component.set("MTBF", spec.mtbf);
    component.set("MTTR", spec.mttr);
    component.set("redundantComponents", 0);
    auto& network = cls.apply(net.get(spec.network_stereotype));
    network.set("manufacturer", spec.manufacturer);
    network.set("model", spec.model);
    if (std::string_view(spec.network_stereotype) == "Client" ||
        std::string_view(spec.network_stereotype) == "Server") {
      network.set("processor", "x86_64");
    }
  }

  // Associations: one per admissible link kind, stereotyped «Connector» and
  // «Communication» (Sec. VI-A).
  struct LinkSpec {
    const char* name;
    const char* a;
    const char* b;
    double throughput_mbps;
  };
  constexpr LinkSpec kLinkSpecs[] = {
      {"trunk_6500_6500", "C6500", "C6500", 10000.0},
      {"uplink_3750_6500", "C3750", "C6500", 10000.0},
      {"uplink_2960_6500", "C2960", "C6500", 1000.0},
      {"uplink_2650_3750", "HP2650", "C3750", 1000.0},
      {"access_comp_2650", "Comp", "HP2650", 1000.0},
      {"access_printer_2650", "Printer", "HP2650", 100.0},
      {"access_server_2960", "Server", "C2960", 1000.0},
  };
  for (const LinkSpec& spec : kLinkSpecs) {
    uml::Association& assoc = classes.define_association(
        spec.name, classes.get_class(spec.a), classes.get_class(spec.b));
    auto& connector = assoc.apply(avail.get("Connector"));
    connector.set("MTBF", kLinkMtbf);
    connector.set("MTTR", kLinkMttr);
    connector.set("redundantComponents", 0);
    auto& comm = assoc.apply(net.get("Communication"));
    comm.set("channel", "ethernet");
    comm.set("throughput", spec.throughput_mbps);
  }

  // -- Step 2 (Sec. VI-B): infrastructure object diagram, Figs. 5/9 --------
  cs.infrastructure =
      std::make_unique<uml::ObjectModel>("usi_network", classes);
  uml::ObjectModel& infra = *cs.infrastructure;
  auto add = [&](const char* name, const char* cls) {
    infra.instantiate(name, cls);
  };
  add("c1", "C6500");
  add("c2", "C6500");
  add("d1", "C3750");
  add("d2", "C3750");
  add("d3", "C2960");
  add("d4", "C2960");
  add("e1", "HP2650");
  add("e2", "HP2650");
  add("e3", "HP2650");
  add("e4", "HP2650");
  for (const char* t : {"t1", "t2", "t3", "t6", "t7", "t8", "t9", "t10", "t11",
                        "t12", "t13", "t14", "t15"}) {
    add(t, "Comp");
  }
  add("p1", "Printer");
  add("p2", "Printer");
  add("p3", "Printer");
  for (const char* s : {"db", "backup", "email", "file1", "file2", "printS"}) {
    add(s, "Server");
  }

  // Link insertion order is load-bearing: depth-first discovery explores
  // incident links in this order, which reproduces the Sec. VI-G listing.
  auto link = [&](const char* a, const char* b, const char* assoc) {
    infra.link(a, b, assoc);
  };
  // Core and distribution (redundant core, dual-homed d1/d2/d4, single d3).
  link("d1", "c1", "uplink_3750_6500");
  link("d1", "c2", "uplink_3750_6500");
  link("d4", "c1", "uplink_2960_6500");
  link("d4", "c2", "uplink_2960_6500");
  link("c1", "c2", "trunk_6500_6500");
  link("d2", "c1", "uplink_3750_6500");
  link("d2", "c2", "uplink_3750_6500");
  link("d3", "c1", "uplink_2960_6500");
  // Edge-switch uplinks.
  link("e1", "d1", "uplink_2650_3750");
  link("e2", "d1", "uplink_2650_3750");
  link("e3", "d2", "uplink_2650_3750");
  link("e4", "d2", "uplink_2650_3750");
  // Clients.
  for (const auto& [t, e] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"t1", "e1"}, {"t2", "e1"}, {"t3", "e1"},
           {"t6", "e2"}, {"t7", "e2"}, {"t8", "e2"},
           {"t9", "e3"}, {"t10", "e3"}, {"t11", "e3"}, {"t12", "e3"},
           {"t13", "e4"}, {"t14", "e4"}, {"t15", "e4"}}) {
    link(t, e, "access_comp_2650");
  }
  // Printers.
  link("p1", "e2", "access_printer_2650");
  link("p2", "e3", "access_printer_2650");
  link("p3", "e4", "access_printer_2650");
  // Servers.
  link("db", "d3", "access_server_2960");
  link("backup", "d3", "access_server_2960");
  link("email", "d3", "access_server_2960");
  link("file1", "d4", "access_server_2960");
  link("file2", "d4", "access_server_2960");
  link("printS", "d4", "access_server_2960");

  // -- Step 3 (Sec. VI-C): services, Fig. 10 -------------------------------
  cs.services = std::make_unique<service::ServiceCatalog>();
  service::ServiceCatalog& services = *cs.services;
  services.define_atomic("request_printing",
                         "client login to print server and send documents");
  services.define_atomic("login_to_printer",
                         "user login at the printer; credentials forwarded "
                         "to the print server");
  services.define_atomic("send_document_list",
                         "print server sends the user's queued documents");
  services.define_atomic("select_documents",
                         "user selects documents; printer requests them");
  services.define_atomic("send_documents",
                         "print server sends the selected documents");
  services.define_sequence(printing_service_name(),
                           printing_atomic_services());

  // A secondary composite (not in the paper's figures but in its service
  // examples, Sec. VI: "atomic services (e.g.: authenticate, print
  // document, request backup) ... composite services (e.g. printing,
  // backup)") used by the multi-service examples and tests.
  services.define_atomic("authenticate", "credential check against db");
  services.define_atomic("request_backup", "client asks the backup server");
  services.define_atomic("transfer_data", "data stream to the backup server");
  services.define_sequence("backup",
                           {"authenticate", "request_backup", "transfer_data"});

  // A fork/join composite (the Fig. 2 shape): after authentication the
  // notification and the data transfer proceed in parallel.
  services.define_atomic("notify_owner", "email the mailbox owner");
  uml::Activity mirrored("mirrored_backup_flow");
  const auto init = mirrored.add_initial();
  const auto auth = mirrored.add_action("authenticate");
  const auto request = mirrored.add_action("request_backup");
  const auto fork = mirrored.add_fork();
  const auto transfer = mirrored.add_action("transfer_data");
  const auto notify = mirrored.add_action("notify_owner");
  const auto join = mirrored.add_join();
  const auto fin = mirrored.add_final();
  mirrored.flow(init, auth);
  mirrored.flow(auth, request);
  mirrored.flow(request, fork);
  mirrored.flow(fork, transfer);
  mirrored.flow(fork, notify);
  mirrored.flow(transfer, join);
  mirrored.flow(notify, join);
  mirrored.flow(join, fin);
  services.define_composite("mirrored_backup", std::move(mirrored));
  return cs;
}

mapping::ServiceMapping UsiCaseStudy::printing_mapping(
    const std::string& client, const std::string& printer) const {
  if (infrastructure->find_instance(client) == nullptr ||
      infrastructure->find_instance(printer) == nullptr) {
    throw NotFoundError("printing_mapping: unknown component '" + client +
                        "' or '" + printer + "'");
  }
  mapping::ServiceMapping m;
  m.map("request_printing", client, "printS");
  m.map("login_to_printer", printer, "printS");
  m.map("send_document_list", "printS", printer);
  m.map("select_documents", printer, "printS");
  m.map("send_documents", "printS", printer);
  return m;
}

mapping::ServiceMapping UsiCaseStudy::mapping_t1_p2() const {
  return printing_mapping("t1", "p2");
}

mapping::ServiceMapping UsiCaseStudy::mapping_t15_p3() const {
  return printing_mapping("t15", "p3");
}

mapping::ServiceMapping UsiCaseStudy::backup_mapping(
    const std::string& client) const {
  if (infrastructure->find_instance(client) == nullptr) {
    throw NotFoundError("backup_mapping: unknown component '" + client + "'");
  }
  mapping::ServiceMapping m;
  m.map("authenticate", client, "db");
  m.map("request_backup", client, "backup");
  m.map("transfer_data", client, "backup");
  // Pairs for the fork/join composite; unused entries are ignored by the
  // sequential "backup" composite (Sec. VI-D).
  m.map("notify_owner", "backup", "email");
  return m;
}

const std::vector<std::vector<std::string>>& expected_first_paths_t1_printS() {
  static const std::vector<std::vector<std::string>> kPaths = {
      {"t1", "e1", "d1", "c1", "d4", "printS"},
      {"t1", "e1", "d1", "c1", "c2", "d4", "printS"},
  };
  return kPaths;
}

const std::vector<std::string>& expected_upsim_t1_p2() {
  static const std::vector<std::string> kNodes = {
      "t1", "e1", "d1", "d2", "c1", "c2", "d4", "printS", "e3", "p2"};
  return kNodes;
}

const std::vector<std::string>& expected_upsim_t15_p3() {
  static const std::vector<std::string> kNodes = {
      "t15", "e4", "d1", "d2", "c1", "c2", "d4", "printS", "p3"};
  return kNodes;
}

const std::string& printing_service_name() {
  static const std::string kName = "printing";
  return kName;
}

const std::vector<std::string>& printing_atomic_services() {
  static const std::vector<std::string> kAtomics = {
      "request_printing", "login_to_printer", "send_document_list",
      "select_documents", "send_documents"};
  return kAtomics;
}

}  // namespace upsim::casestudy
