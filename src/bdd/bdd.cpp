#include "bdd/bdd.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace upsim::bdd {

namespace {

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

Manager::Manager(std::size_t variable_count)
    : variable_count_(variable_count) {
  // Terminals: ids 0 (false) and 1 (true); their var sorts below every
  // real variable.
  const auto terminal_var = static_cast<std::uint32_t>(variable_count_);
  nodes_.push_back(Node{terminal_var, kFalse, kFalse});
  nodes_.push_back(Node{terminal_var, kTrue, kTrue});
  unique_by_var_.resize(variable_count_);
}

Manager::Ref Manager::make_node(std::uint32_t var, Ref low, Ref high) {
  if (low == high) return low;  // reduction rule
  auto& table = unique_by_var_[var];
  const auto [it, inserted] = table.try_emplace(pair_key(low, high), 0);
  if (!inserted) return it->second;
  const Ref id = static_cast<Ref>(nodes_.size());
  nodes_.push_back(Node{var, low, high});
  it->second = id;
  return id;
}

Manager::Ref Manager::variable(std::size_t index) {
  if (index >= variable_count_) {
    throw NotFoundError("bdd: variable index out of range");
  }
  return make_node(static_cast<std::uint32_t>(index), kFalse, kTrue);
}

Manager::Ref Manager::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  auto& by_h = computed_[pair_key(f, g)];
  if (const auto it = by_h.find(h); it != by_h.end()) return it->second;

  const std::uint32_t top =
      std::min({nodes_[f].var, nodes_[g].var, nodes_[h].var});
  auto cofactor = [&](Ref r, bool positive) {
    const Node& node = nodes_[r];
    if (node.var != top) return r;
    return positive ? node.high : node.low;
  };
  const Ref high = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const Ref low =
      ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const Ref result = make_node(top, low, high);
  computed_[pair_key(f, g)].emplace(h, result);
  return result;
}

double Manager::probability(Ref f, const std::vector<double>& probability) {
  if (probability.size() != variable_count_) {
    throw ModelError("bdd: probability vector size mismatch");
  }
  for (const double p : probability) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw ModelError("bdd: probability outside [0,1]");
    }
  }
  probability_memo_.clear();
  probability_memo_.emplace(kFalse, 0.0);
  probability_memo_.emplace(kTrue, 1.0);
  // Iterative post-order to avoid deep recursion on tall diagrams.
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref r = stack.back();
    if (probability_memo_.contains(r)) {
      stack.pop_back();
      continue;
    }
    const Node& node = nodes_[r];
    const auto low_it = probability_memo_.find(node.low);
    const auto high_it = probability_memo_.find(node.high);
    if (low_it != probability_memo_.end() &&
        high_it != probability_memo_.end()) {
      const double p = probability[node.var];
      probability_memo_.emplace(
          r, p * high_it->second + (1.0 - p) * low_it->second);
      stack.pop_back();
    } else {
      if (low_it == probability_memo_.end()) stack.push_back(node.low);
      if (high_it == probability_memo_.end()) stack.push_back(node.high);
    }
  }
  return probability_memo_.at(f);
}

std::size_t Manager::size(Ref f) const {
  std::vector<Ref> stack{f};
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t count = 0;
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (r <= kTrue || seen[r]) continue;
    seen[r] = true;
    ++count;
    stack.push_back(nodes_[r].low);
    stack.push_back(nodes_[r].high);
  }
  return count;
}

bool Manager::evaluate(Ref f, const std::vector<bool>& assignment) const {
  if (assignment.size() != variable_count_) {
    throw ModelError("bdd: assignment size mismatch");
  }
  Ref cur = f;
  while (cur > kTrue) {
    const Node& node = nodes_[cur];
    cur = assignment[node.var] ? node.high : node.low;
  }
  return cur == kTrue;
}

}  // namespace upsim::bdd
