// Reduced ordered binary decision diagrams (ROBDDs), from scratch.
//
// The structure function of "requester can reach provider" is a monotone
// boolean function of the component states; representing it as an ROBDD
// gives an exact availability evaluation in time linear in the diagram
// size, independent of the number of minimal paths — the classical
// alternative to both factoring and inclusion–exclusion (which dies at
// ~25 paths).  depend/bdd_availability.hpp builds the connectivity
// function; this header is the generic BDD kernel:
//
//   * unique table (hash-consing) so equal subfunctions share one node,
//   * ite(f, g, h) with a computed table (memoisation),
//   * probability evaluation P(f = 1) for independent variables.
//
// Variables are dense indices [0, variable_count) with the fixed ordering
// var 0 at the top.  References are plain node ids; terminals are kFalse
// and kTrue.  No complement edges and no garbage collection — managers are
// built per analysis and discarded, which keeps the kernel small and the
// behaviour predictable.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace upsim::bdd {

class Manager {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  /// Creates a manager for `variable_count` variables (may be 0).
  explicit Manager(std::size_t variable_count);

  [[nodiscard]] std::size_t variable_count() const noexcept {
    return variable_count_;
  }

  /// The function "variable i is true".  Throws NotFoundError for an
  /// out-of-range index.
  [[nodiscard]] Ref variable(std::size_t index);

  /// If-then-else: f ? g : h, the universal connective.
  [[nodiscard]] Ref ite(Ref f, Ref g, Ref h);

  [[nodiscard]] Ref bdd_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  [[nodiscard]] Ref bdd_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  [[nodiscard]] Ref bdd_not(Ref f) { return ite(f, kFalse, kTrue); }

  /// P(f = 1) when variable i is true with probability `probability[i]`,
  /// independently.  Throws ModelError on size mismatch or out-of-range
  /// probabilities.
  [[nodiscard]] double probability(Ref f,
                                   const std::vector<double>& probability);

  /// Nodes reachable from f (excluding terminals) — the diagram size.
  [[nodiscard]] std::size_t size(Ref f) const;

  /// Total live nodes in the manager (including terminals).
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Evaluates f under a complete assignment (for tests).
  [[nodiscard]] bool evaluate(Ref f, const std::vector<bool>& assignment) const;

 private:
  struct Node {
    std::uint32_t var;  ///< variable_count_ for terminals
    Ref low;
    Ref high;
  };

  [[nodiscard]] Ref make_node(std::uint32_t var, Ref low, Ref high);

  std::size_t variable_count_;
  std::vector<Node> nodes_;
  // Unique tables, one per variable, keyed by (low, high) packed exactly
  // into 64 bits — hash-consing without collision risk.
  std::vector<std::unordered_map<std::uint64_t, Ref>> unique_by_var_;
  // Computed table for ite: (f, g) -> h -> result, exact keys.
  std::unordered_map<std::uint64_t, std::unordered_map<Ref, Ref>> computed_;
  // Probability memo (cleared per probability() call).
  std::unordered_map<Ref, double> probability_memo_;
};

}  // namespace upsim::bdd
