// Umbrella header for the observability layer: include this from
// instrumentation sites and harnesses.
//
//   obs::set_enabled(true);                       // turn instrumentation on
//   { obs::ScopedSpan s("step", "pipeline"); ... }
//   obs::Registry::global().counter("x").add(1);
//   obs::Tracer::global().write_chrome_json("trace.json");
//   obs::Registry::global().snapshot().write_json("metrics.json");
//
// See docs/ARCHITECTURE.md ("Observability") for the layer's design rules.
#pragma once

#include "obs/json.hpp"        // IWYU pragma: export
#include "obs/metrics.hpp"     // IWYU pragma: export
#include "obs/prometheus.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"       // IWYU pragma: export
