// Prometheus text exposition (format version 0.0.4) of a MetricsSnapshot.
//
// Rendering rules, chosen so the output is byte-stable for golden tests and
// parses with the standard Prometheus scraper:
//   - Metric names are prefixed "upsim_" and sanitized: every character
//     outside [a-zA-Z0-9_:] becomes '_' (so "server.requests.upsim" scrapes
//     as upsim_server_requests_upsim).
//   - Counters render as "<name>_total" with a "# TYPE ... counter" header,
//     gauges as-is with "# TYPE ... gauge".
//   - Histograms render the cumulative-bucket form the Prometheus histogram
//     type requires: one "<name>_bucket{le="<edge>"}" sample per *occupied*
//     sub-bucket (edges from Histogram::Snapshot::bucket_upper_edge, counts
//     cumulative and therefore monotone), a final le="+Inf" bucket equal to
//     the total count, then "<name>_sum" and "<name>_count".  Skipping empty
//     sub-buckets is valid — Prometheus only requires the published buckets
//     to be cumulative — and keeps a 1024-bucket histogram scrapeable.
//   - Metrics appear in snapshot order (sorted by name within each kind):
//     counters, then gauges, then histograms.
//   - Labels ride in the metric *name* with a '#' suffix:
//     "server.model.requests#tenant=acme,model=usi" renders as
//     upsim_server_model_requests_total{tenant="acme",model="usi"}.  The
//     registry has no label concept; this convention keeps the hot-path
//     metric types label-free while the exposition still breaks traffic
//     out per tenant/model.  Snapshot name order makes every label set of
//     a family adjacent ('#' sorts below identifier characters), so one
//     "# TYPE" header covers the family.  Histogram label sets merge the
//     'le' label after the name labels.  Label values escape \, " and
//     newline; a malformed suffix (a pair without '=') falls back to
//     treating the whole name as unlabeled.  Names without '#' render
//     byte-identically to the pre-label format.
//
// The renderer is deliberately free of any HTTP/server dependency; the
// scrape endpoint that serves it lives in src/server/metrics_http.hpp.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace upsim::obs {

/// "upsim_" + `name` with every character outside [a-zA-Z0-9_:] replaced
/// by '_'.
[[nodiscard]] std::string prometheus_metric_name(std::string_view name);

/// The full exposition document for `snapshot` (ends with a newline).
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot);

}  // namespace upsim::obs
