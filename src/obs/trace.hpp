// RAII spans, request-scoped trace context, and the tracer that collects
// finished spans.
//
// A ScopedSpan stamps its construction/destruction on the monotonic clock
// and hands the finished record to a Tracer.  Every span carries identity:
// a process-unique span id, the span id of its enclosing span (parent), and
// the trace id of the request it ran under — so one user request can be
// stitched back together across threads and exported as its own timeline.
//
// Trace context propagates through a thread-local slot, not through
// function signatures: a request handler installs a TraceScope around the
// work, and every ScopedSpan constructed below it (engine query, path
// discovery, serialization) inherits the trace id and parents itself under
// the innermost open span.  The slot is per thread, which matches the
// serving stack's execution model — a request body runs start-to-finish on
// one pool worker (src/server/server.hpp).
//
// Export targets:
//   - Chrome trace_event JSON (chrome://tracing or Perfetto): complete
//     events ("ph":"X") with microsecond timestamps relative to the
//     tracer's epoch.  to_chrome_json() keeps one timeline row per thread;
//     to_chrome_json_by_trace() groups rows per *request* instead, so a
//     request's spans line up even when they ran on different threads.
//   - a human-readable table with per-thread nesting indentation.
//
// Hot-path cost: span begin is a clock read plus thread-local updates; span
// end appends the finished record to a *per-thread* buffer guarded by a
// per-thread mutex that only the exporter ever contends on, so concurrent
// request handlers never serialize on a shared tracer lock
// (bench/bench_obs.cpp holds begin+end to ~100ns).  Buffers are drained
// under the tracer lock only on export/clear.
//
// When obs::enabled() is false a span is inert: no clock read, no lock,
// nothing recorded.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace upsim::obs {

/// Identity of the request a piece of work runs under.  trace_id 0 means
/// "untraced"; span_id is the innermost open span (0 = no parent yet).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// Process-unique, never-zero trace id: a counter seeded from the clock at
/// first use, mixed through splitmix64 so ids from concurrent processes
/// don't collide in practice.
[[nodiscard]] std::uint64_t generate_trace_id() noexcept;

/// The 16-lowercase-hex wire form of a trace id ("4a3f..."; exactly 16
/// chars, zero-padded).
[[nodiscard]] std::string format_trace_id(std::uint64_t trace_id);

/// Parses the wire form back; returns 0 (= invalid/untraced) unless `hex`
/// is exactly 16 hex digits encoding a nonzero id.
[[nodiscard]] std::uint64_t parse_trace_id(std::string_view hex) noexcept;

/// The calling thread's current trace context (all-zero outside any
/// TraceScope).
[[nodiscard]] TraceContext current_trace_context() noexcept;

/// Installs `context` as the calling thread's trace context for the scope's
/// lifetime and restores the previous one on destruction.  Spans created
/// inside inherit the trace id regardless of obs::enabled() state changes.
class TraceScope {
 public:
  explicit TraceScope(TraceContext context) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext previous_;
};

/// One finished span.  Times are microseconds since the tracer's epoch.
struct SpanRecord {
  std::string name;
  std::string category;
  std::uint32_t thread_index = 0;  ///< dense per-tracer thread id
  std::uint32_t depth = 0;         ///< nesting level within its thread
  std::uint64_t trace_id = 0;      ///< 0 = recorded outside any TraceScope
  std::uint64_t span_id = 0;       ///< process-unique, never 0
  std::uint64_t parent_span_id = 0;  ///< 0 = root span of its thread/trace
  double start_us = 0.0;
  double duration_us = 0.0;

  [[nodiscard]] double end_us() const noexcept {
    return start_us + duration_us;
  }
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// The process-wide tracer used by all built-in instrumentation.
  /// Intentionally leaked so worker threads may record during shutdown.
  static Tracer& global();

  /// Finished spans sorted for rendering: by thread, then start time, then
  /// outermost-first (longer duration breaks start ties).
  [[nodiscard]] std::vector<SpanRecord> finished_spans() const;

  /// The finished spans of one request, sorted by start time (then
  /// outermost-first) — the per-request span tree, in parent-before-child
  /// order for same-thread spans.
  [[nodiscard]] std::vector<SpanRecord> spans_for_trace(
      std::uint64_t trace_id) const;

  [[nodiscard]] std::size_t span_count() const;

  /// Drops every recorded span and restarts the epoch.  Test isolation;
  /// spans still open across clear() record raw times that convert against
  /// the new epoch and simply land in the new window (harmless for
  /// reporting).  Thread indices persist for the tracer's life.
  void clear();

  /// Chrome trace_event JSON, one timeline row per thread:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Chrome trace_event JSON stitched per request: every distinct trace id
  /// becomes its own process row (named after the trace id), with the
  /// request's spans grouped under it across the threads they ran on.
  /// Untraced spans land in a shared "untraced" process row 0.
  [[nodiscard]] std::string to_chrome_json_by_trace() const;

  /// Writes to_chrome_json() (or the by-trace variant) to `path`; throws
  /// upsim::Error on I/O failure.
  void write_chrome_json(const std::string& path,
                         bool group_by_trace = false) const;

  /// Aligned per-thread table, one span per line, indented by nesting.
  [[nodiscard]] std::string to_text() const;

 private:
  friend class ScopedSpan;

  /// A finished span as the recording thread stores it: raw clock points,
  /// converted to epoch-relative microseconds only when drained.
  struct PendingSpan {
    std::string name;
    std::string category;
    std::uint32_t depth = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point end;
  };

  /// One thread's append-only span buffer.  Its mutex is uncontended on the
  /// hot path (only the owning thread appends); the exporter takes it
  /// briefly while draining.
  struct ThreadLog {
    std::mutex mutex;
    std::uint32_t thread_index = 0;
    std::vector<PendingSpan> spans;
  };

  /// Finds (via a thread-local cache) or registers the calling thread's
  /// log; registration assigns the next dense thread index.
  [[nodiscard]] ThreadLog& thread_log();

  void record(PendingSpan&& span);

  /// Drains every per-thread buffer into epoch-relative SpanRecords.
  [[nodiscard]] std::vector<SpanRecord> drain_copy() const;

  const std::uint64_t tracer_id_;  ///< keys the thread-local log cache
  mutable std::mutex mutex_;       ///< guards logs_ and epoch_
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Times the enclosing scope and reports it to a tracer on destruction.
/// Construct with obs disabled and the span is a no-op from start to end.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      std::string_view category = "upsim",
                      Tracer& tracer = Tracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's process-unique id (0 when constructed inert).
  [[nodiscard]] std::uint64_t span_id() const noexcept { return span_id_; }

 private:
  Tracer* tracer_ = nullptr;  ///< null when created with obs disabled
  std::string name_;
  std::string category_;
  std::uint32_t depth_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace upsim::obs
