// RAII spans and the tracer that collects them.
//
// A ScopedSpan stamps its construction/destruction on the monotonic clock
// and hands the finished record to a Tracer, which assigns a stable small
// index to each recording thread.  Export targets:
//   - Chrome trace_event JSON (load in chrome://tracing or Perfetto):
//     complete events ("ph":"X") with microsecond timestamps relative to
//     the tracer's epoch, one timeline row per thread, and
//   - a human-readable table with per-thread nesting indentation.
//
// Span begin is lock-free (a clock read plus a thread-local depth bump);
// span end takes one short tracer lock to append the record.  upsim emits
// coarse spans (pipeline steps, per-pair discovery, file parses), so this
// lock is uncontended in practice and keeps the design race-free —
// test_obs proves it under TSan.
//
// When obs::enabled() is false a span is inert: no clock read, no lock,
// nothing recorded.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace upsim::obs {

/// One finished span.  Times are microseconds since the tracer's epoch.
struct SpanRecord {
  std::string name;
  std::string category;
  std::uint32_t thread_index = 0;  ///< dense per-tracer thread id
  std::uint32_t depth = 0;         ///< nesting level within its thread
  double start_us = 0.0;
  double duration_us = 0.0;

  [[nodiscard]] double end_us() const noexcept {
    return start_us + duration_us;
  }
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer used by all built-in instrumentation.
  /// Intentionally leaked so worker threads may record during shutdown.
  static Tracer& global();

  /// Finished spans sorted for rendering: by thread, then start time, then
  /// outermost-first (longer duration breaks start ties).
  [[nodiscard]] std::vector<SpanRecord> finished_spans() const;

  [[nodiscard]] std::size_t span_count() const;

  /// Drops every recorded span and restarts the epoch.  Test isolation;
  /// spans still open across clear() record with the old epoch and simply
  /// land in the new window (harmless for reporting).
  void clear();

  /// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  [[nodiscard]] std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; throws upsim::Error on I/O failure.
  void write_chrome_json(const std::string& path) const;

  /// Aligned per-thread table, one span per line, indented by nesting.
  [[nodiscard]] std::string to_text() const;

 private:
  friend class ScopedSpan;

  /// Stamps thread index and epoch-relative times (under the lock, so a
  /// concurrent clear() cannot race the epoch read) and stores the span.
  void record(SpanRecord&& span, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::map<std::thread::id, std::uint32_t> thread_indices_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Times the enclosing scope and reports it to a tracer on destruction.
/// Construct with obs disabled and the span is a no-op from start to end.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      std::string_view category = "upsim",
                      Tracer& tracer = Tracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;  ///< null when created with obs disabled
  std::string name_;
  std::string category_;
  std::uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace upsim::obs
