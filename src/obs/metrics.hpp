// Process-wide metrics: named counters, gauges and histograms behind a
// lock-striped registry, safe to hammer from every util::ThreadPool worker.
//
// Design rules (kept deliberately small):
//   - Metric objects are created on first lookup and live as long as the
//     registry; references handed out by the registry never dangle, so call
//     sites may cache them across Registry::reset().
//   - All mutation is atomic (counters, gauges, histogram buckets); the only
//     locks are the per-shard registry maps during lookup.  That makes the
//     whole layer race-free under TSan without serialising the hot path.
//   - `enabled()` is the master switch for the library's *self*-
//     instrumentation (pipeline spans, pathdisc counters, thread-pool
//     latency).  It defaults to off so untraced runs pay nothing; direct
//     use of Registry/Counter by harness code always works regardless.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace upsim::obs {

/// Master switch for built-in instrumentation sites (spans + pipeline
/// metrics).  Off by default; the CLI/bench harnesses turn it on.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, timings, bench results).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept;  // atomic read-modify-write (CAS loop)
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// HDR-style histogram of non-negative samples: every power-of-two octave
/// [2^e, 2^(e+1)) is split into kSubBuckets linear sub-buckets (and [0, 1)
/// into kSubBuckets linear slices), so quantile estimates carry a bounded
/// ~1/kSubBuckets relative error across 19 decades — good enough to quote
/// p50/p95/p99/p999 latencies straight from the serving path.  All state is
/// atomic; record() never blocks.
class Histogram {
 public:
  /// Linear sub-buckets per octave; 16 bounds quantile error at ~6%.
  static constexpr std::size_t kSubBuckets = 16;
  /// Octaves 2^0..2^63 plus the [0,1) range, kSubBuckets slices each.
  static constexpr std::size_t kBuckets = kSubBuckets * 64;

  void record(double v) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Quantile estimate by linear interpolation inside the sub-bucket that
    /// holds the q-th sample; exact at the recorded min/max ends.  The
    /// estimate is within one sub-bucket of the true sample, i.e. off by at
    /// most a factor of (1 + 1/kSubBuckets).
    [[nodiscard]] double quantile(double q) const noexcept;
    /// Exclusive upper edge of sub-bucket i: (i+1)/kSubBuckets below 1.0,
    /// then 2^e * (1 + (s+1)/kSubBuckets) for octave e, slice s.
    [[nodiscard]] static double bucket_upper_edge(std::size_t i) noexcept;
  };

  [[nodiscard]] Snapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

/// One exported view of every metric in a registry, sorted by name.
/// Snapshots are plain data: diffable, serialisable, comparable in tests.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    Histogram::Snapshot data;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Returns this snapshot minus `earlier`: counters and histogram
  /// count/sum/buckets subtract (clamped at 0 for robustness); gauges keep
  /// the newer instantaneous value, as do histogram min/max (extrema are
  /// not invertible).  Metrics absent from `earlier` pass through whole.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& earlier) const;

  /// Lookup helpers for tests/tools; throw upsim::NotFoundError if absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] const Histogram::Snapshot& histogram(
      std::string_view name) const;
  [[nodiscard]] bool has_counter(std::string_view name) const noexcept;

  /// Machine-readable export: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,mean,p50,p90,p99,buckets}}}.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable aligned table, one metric per line.
  [[nodiscard]] std::string to_text() const;
  /// Writes to_json() to `path`; throws upsim::Error on I/O failure.
  void write_json(const std::string& path) const;
};

/// Named-metric registry.  Lookup is lock-striped over kShards maps so
/// concurrent first-touch registration from many workers does not convoy;
/// after lookup, mutation is lock-free on the metric itself.
class Registry {
 public:
  static constexpr std::size_t kShards = 16;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry used by all built-in instrumentation.
  /// Intentionally leaked so worker threads may touch it during shutdown.
  static Registry& global();

  /// Finds or creates; the reference stays valid for the registry's life.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Consistent-enough view for reporting: each shard is locked in turn,
  /// so metrics updated mid-snapshot may straddle, which reporting
  /// tolerates (counters are monotone).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric in place (references stay valid).  Test isolation.
  void reset();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  };

  [[nodiscard]] Shard& shard_for(std::string_view name) noexcept;

  std::array<Shard, kShards> shards_;
};

}  // namespace upsim::obs
