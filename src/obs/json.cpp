#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace upsim::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = true;
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_ = false;
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  need_comma_ = false;
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  need_comma_ = false;
}

void JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; null is the convention
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

void JsonWriter::raw_value(std::string_view json) {
  comma();
  out_ += json;
}

// ---------------------------------------------------------------------------
// Reader

const JsonValue& JsonValue::at(std::string_view key) const {
  const auto it = object.find(std::string(key));
  if (it == object.end()) {
    throw NotFoundError("JsonValue: no member named '" + std::string(key) +
                        "'");
  }
  return it->second;
}

bool JsonValue::has(std::string_view key) const noexcept {
  return object.find(std::string(key)) != object.end();
}

namespace {

class JsonParser {
 public:
  JsonParser(std::string_view input, const JsonLimits& limits)
      : input_(input), limits_(limits) {}

  JsonValue parse_document() {
    if (limits_.max_bytes != 0 && input_.size() > limits_.max_bytes) {
      fail("document size " + std::to_string(input_.size()) +
           " exceeds limit of " + std::to_string(limits_.max_bytes) +
           " bytes");
    }
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != input_.size()) fail("trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError("json: " + what, line, col);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= input_.size(); }
  [[nodiscard]] char peek() const noexcept { return input_[pos_]; }

  char take() {
    if (eof()) fail("unexpected end of input");
    return input_[pos_++];
  }

  void expect(char c) {
    if (eof() || input_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  bool consume_word(std::string_view word) {
    if (input_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_word("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  /// Guards one level of array/object nesting; parse_object/parse_array
  /// construct it so a hostile "[[[[..." fails with a clear error long
  /// before the parser's own recursion could overflow the stack.
  struct DepthGuard {
    explicit DepthGuard(JsonParser& p) : parser(p) {
      ++parser.depth_;
      if (parser.limits_.max_depth != 0 &&
          parser.depth_ > parser.limits_.max_depth) {
        parser.fail("nesting depth exceeds limit of " +
                    std::to_string(parser.limits_.max_depth));
      }
    }
    ~DepthGuard() { --parser.depth_; }
    JsonParser& parser;
  };

  JsonValue parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return out;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (take() != '\\' || take() != 'u') {
              fail("unpaired surrogate");
            }
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') fail("bad number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("bad fraction");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("bad exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::strtod(std::string(input_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view input_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view input, const JsonLimits& limits) {
  return JsonParser(input, limits).parse_document();
}

}  // namespace upsim::obs
