#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace upsim::obs {

namespace {

/// Per-thread nesting level.  Depth is a property of the call stack, so a
/// single counter per thread is correct for the (overwhelmingly common)
/// single-tracer case and merely cosmetic when tests run private tracers.
thread_local std::uint32_t t_depth = 0;

/// The calling thread's trace context (see TraceScope).
thread_local TraceContext t_context;

/// splitmix64 finalizer: full-avalanche mix of a weak sequence into ids.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache of (tracer id -> this thread's log).  Entries for
/// dead tracers linger harmlessly (the shared_ptr keeps the buffer alive,
/// nothing drains it); a thread touches at most a handful of tracers.
struct CachedLog {
  std::uint64_t tracer_id;
  std::shared_ptr<void> log;  // actually Tracer::ThreadLog
};
thread_local std::vector<CachedLog> t_logs;

}  // namespace

std::uint64_t generate_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{[] {
    const auto wall = std::chrono::system_clock::now().time_since_epoch();
    const auto mono = std::chrono::steady_clock::now().time_since_epoch();
    return mix64(static_cast<std::uint64_t>(wall.count()) ^
                 mix64(static_cast<std::uint64_t>(mono.count())));
  }()};
  const std::uint64_t id =
      mix64(counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

std::string format_trace_id(std::uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf, 16);
}

std::uint64_t parse_trace_id(std::string_view hex) noexcept {
  if (hex.size() != 16) return 0;
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
  }
  return value;
}

TraceContext current_trace_context() noexcept { return t_context; }

TraceScope::TraceScope(TraceContext context) noexcept
    : previous_(t_context) {
  t_context = context;
}

TraceScope::~TraceScope() { t_context = previous_; }

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer()
    : tracer_id_([] {
        static std::atomic<std::uint64_t> ids{1};
        return ids.fetch_add(1, std::memory_order_relaxed);
      }()),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static auto* tracer = new Tracer;  // leaked: see header
  return *tracer;
}

Tracer::ThreadLog& Tracer::thread_log() {
  for (const CachedLog& cached : t_logs) {
    if (cached.tracer_id == tracer_id_) {
      return *static_cast<ThreadLog*>(cached.log.get());
    }
  }
  auto log = std::make_shared<ThreadLog>();
  {
    const std::lock_guard lock(mutex_);
    log->thread_index = static_cast<std::uint32_t>(logs_.size());
    logs_.push_back(log);
  }
  t_logs.push_back({tracer_id_, log});
  return *log;
}

void Tracer::record(PendingSpan&& span) {
  ThreadLog& log = thread_log();
  // Uncontended in steady state: only this thread appends; the exporter
  // takes the lock briefly while draining.
  const std::lock_guard lock(log.mutex);
  log.spans.push_back(std::move(span));
}

std::vector<SpanRecord> Tracer::drain_copy() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  std::chrono::steady_clock::time_point epoch;
  {
    const std::lock_guard lock(mutex_);
    logs = logs_;
    epoch = epoch_;
  }
  std::vector<SpanRecord> out;
  for (const auto& log : logs) {
    const std::lock_guard lock(log->mutex);
    out.reserve(out.size() + log->spans.size());
    for (const PendingSpan& p : log->spans) {
      SpanRecord r;
      r.name = p.name;
      r.category = p.category;
      r.thread_index = log->thread_index;
      r.depth = p.depth;
      r.trace_id = p.trace_id;
      r.span_id = p.span_id;
      r.parent_span_id = p.parent_span_id;
      r.start_us =
          std::chrono::duration<double, std::micro>(p.start - epoch).count();
      r.duration_us =
          std::chrono::duration<double, std::micro>(p.end - p.start).count();
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<SpanRecord> Tracer::finished_spans() const {
  std::vector<SpanRecord> out = drain_copy();
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.thread_index != b.thread_index) {
                return a.thread_index < b.thread_index;
              }
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.duration_us > b.duration_us;  // outermost first
            });
  return out;
}

std::vector<SpanRecord> Tracer::spans_for_trace(std::uint64_t trace_id) const {
  std::vector<SpanRecord> out = drain_copy();
  out.erase(std::remove_if(
                out.begin(), out.end(),
                [&](const SpanRecord& s) { return s.trace_id != trace_id; }),
            out.end());
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.duration_us > b.duration_us;  // outermost first
            });
  return out;
}

std::size_t Tracer::span_count() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    const std::lock_guard lock(mutex_);
    logs = logs_;
  }
  std::size_t n = 0;
  for (const auto& log : logs) {
    const std::lock_guard lock(log->mutex);
    n += log->spans.size();
  }
  return n;
}

void Tracer::clear() {
  const std::lock_guard lock(mutex_);
  for (const auto& log : logs_) {
    const std::lock_guard log_lock(log->mutex);
    log->spans.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
}

namespace {

/// Shared per-event body of both Chrome exports.
void write_chrome_event(JsonWriter& w, const SpanRecord& s, int pid) {
  w.begin_object();
  w.key("name");
  w.value(s.name);
  w.key("cat");
  w.value(s.category);
  w.key("ph");
  w.value("X");  // complete event: begin + duration in one record
  w.key("ts");
  w.value(s.start_us);
  w.key("dur");
  w.value(s.duration_us);
  w.key("pid");
  w.value(pid);
  w.key("tid");
  w.value(static_cast<std::uint64_t>(s.thread_index));
  w.key("args");
  w.begin_object();
  w.key("depth");
  w.value(static_cast<std::uint64_t>(s.depth));
  w.key("span_id");
  w.value(s.span_id);
  w.key("parent_span_id");
  w.value(s.parent_span_id);
  if (s.trace_id != 0) {
    w.key("trace");
    w.value(format_trace_id(s.trace_id));
  }
  w.end_object();
  w.end_object();
}

void write_process_name(JsonWriter& w, int pid, std::string_view name) {
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(pid);
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value(name);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  const std::vector<SpanRecord> spans = finished_spans();
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // Metadata: name the process so the tracing UI shows "upsim" not "1".
  write_process_name(w, 1, "upsim");
  for (const SpanRecord& s : spans) write_chrome_event(w, s, 1);
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return std::move(w).str();
}

std::string Tracer::to_chrome_json_by_trace() const {
  std::vector<SpanRecord> spans = drain_copy();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.duration_us > b.duration_us;
            });
  // One process row per distinct trace, numbered by first span start so the
  // viewer lists requests in arrival order; untraced spans share row 0.
  std::map<std::uint64_t, int> pids;
  for (const SpanRecord& s : spans) {
    if (s.trace_id != 0 && pids.find(s.trace_id) == pids.end()) {
      pids.emplace(s.trace_id, static_cast<int>(pids.size()) + 1);
    }
  }
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  bool any_untraced = false;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == 0) any_untraced = true;
  }
  if (any_untraced) write_process_name(w, 0, "untraced");
  for (const auto& [trace_id, pid] : pids) {
    write_process_name(w, pid, "trace " + format_trace_id(trace_id));
  }
  for (const SpanRecord& s : spans) {
    const int pid = s.trace_id == 0 ? 0 : pids.at(s.trace_id);
    write_chrome_event(w, s, pid);
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return std::move(w).str();
}

void Tracer::write_chrome_json(const std::string& path,
                               bool group_by_trace) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error("Tracer: cannot open '" + path + "' for writing");
  }
  out << (group_by_trace ? to_chrome_json_by_trace() : to_chrome_json())
      << "\n";
  if (!out.flush()) {
    throw Error("Tracer: write to '" + path + "' failed");
  }
}

std::string Tracer::to_text() const {
  const std::vector<SpanRecord> spans = finished_spans();
  std::size_t width = 0;
  for (const SpanRecord& s : spans) {
    width = std::max(width, s.name.size() + 2 * s.depth);
  }
  std::string out;
  std::uint32_t current_thread = 0;
  bool first = true;
  char buf[160];
  for (const SpanRecord& s : spans) {
    if (first || s.thread_index != current_thread) {
      out += "thread " + std::to_string(s.thread_index) + "\n";
      current_thread = s.thread_index;
      first = false;
    }
    const std::string label = std::string(2 * s.depth, ' ') + s.name;
    std::snprintf(buf, sizeof buf, "  %-*s %12.3f ms  @ %.3f ms  [%s]%s%s\n",
                  static_cast<int>(width), label.c_str(), s.duration_us / 1e3,
                  s.start_us / 1e3, s.category.c_str(),
                  s.trace_id != 0 ? " trace=" : "",
                  s.trace_id != 0 ? format_trace_id(s.trace_id).c_str() : "");
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// ScopedSpan

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category,
                       Tracer& tracer) {
  if (!enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  category_ = category;
  depth_ = t_depth++;
  trace_id_ = t_context.trace_id;
  parent_span_id_ = t_context.span_id;
  span_id_ = next_span_id();
  t_context.span_id = span_id_;  // children parent under this span
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  --t_depth;
  t_context.span_id = parent_span_id_;
  Tracer::PendingSpan span;
  span.name = std::move(name_);
  span.category = std::move(category_);
  span.depth = depth_;
  span.trace_id = trace_id_;
  span.span_id = span_id_;
  span.parent_span_id = parent_span_id_;
  span.start = start_;
  span.end = end;
  tracer_->record(std::move(span));
}

}  // namespace upsim::obs
