#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace upsim::obs {

namespace {

/// Per-thread nesting level.  Depth is a property of the call stack, so a
/// single counter per thread is correct for the (overwhelmingly common)
/// single-tracer case and merely cosmetic when tests run private tracers.
thread_local std::uint32_t t_depth = 0;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static auto* tracer = new Tracer;  // leaked: see header
  return *tracer;
}

void Tracer::record(SpanRecord&& span,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  const std::lock_guard lock(mutex_);
  const auto [it, inserted] = thread_indices_.emplace(
      std::this_thread::get_id(),
      static_cast<std::uint32_t>(thread_indices_.size()));
  span.thread_index = it->second;
  span.start_us =
      std::chrono::duration<double, std::micro>(start - epoch_).count();
  span.duration_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> Tracer::finished_spans() const {
  std::vector<SpanRecord> out;
  {
    const std::lock_guard lock(mutex_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.thread_index != b.thread_index) {
                return a.thread_index < b.thread_index;
              }
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.duration_us > b.duration_us;  // outermost first
            });
  return out;
}

std::size_t Tracer::span_count() const {
  const std::lock_guard lock(mutex_);
  return spans_.size();
}

void Tracer::clear() {
  const std::lock_guard lock(mutex_);
  spans_.clear();
  thread_indices_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::string Tracer::to_chrome_json() const {
  const std::vector<SpanRecord> spans = finished_spans();
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // Metadata: name the process so the tracing UI shows "upsim" not "1".
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(1);
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value("upsim");
  w.end_object();
  w.end_object();
  for (const SpanRecord& s : spans) {
    w.begin_object();
    w.key("name");
    w.value(s.name);
    w.key("cat");
    w.value(s.category);
    w.key("ph");
    w.value("X");  // complete event: begin + duration in one record
    w.key("ts");
    w.value(s.start_us);
    w.key("dur");
    w.value(s.duration_us);
    w.key("pid");
    w.value(1);
    w.key("tid");
    w.value(static_cast<std::uint64_t>(s.thread_index));
    w.key("args");
    w.begin_object();
    w.key("depth");
    w.value(static_cast<std::uint64_t>(s.depth));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return std::move(w).str();
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error("Tracer: cannot open '" + path + "' for writing");
  }
  out << to_chrome_json() << "\n";
  if (!out.flush()) {
    throw Error("Tracer: write to '" + path + "' failed");
  }
}

std::string Tracer::to_text() const {
  const std::vector<SpanRecord> spans = finished_spans();
  std::size_t width = 0;
  for (const SpanRecord& s : spans) {
    width = std::max(width, s.name.size() + 2 * s.depth);
  }
  std::string out;
  std::uint32_t current_thread = 0;
  bool first = true;
  char buf[128];
  for (const SpanRecord& s : spans) {
    if (first || s.thread_index != current_thread) {
      out += "thread " + std::to_string(s.thread_index) + "\n";
      current_thread = s.thread_index;
      first = false;
    }
    const std::string label = std::string(2 * s.depth, ' ') + s.name;
    std::snprintf(buf, sizeof buf, "  %-*s %12.3f ms  @ %.3f ms  [%s]\n",
                  static_cast<int>(width), label.c_str(),
                  s.duration_us / 1e3, s.start_us / 1e3, s.category.c_str());
    out += buf;
  }
  return out;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category,
                       Tracer& tracer) {
  if (!enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  category_ = category;
  depth_ = t_depth++;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  --t_depth;
  SpanRecord span;
  span.name = std::move(name_);
  span.category = std::move(category_);
  span.depth = depth_;
  tracer_->record(std::move(span), start_, std::chrono::steady_clock::now());
}

}  // namespace upsim::obs
