// Minimal JSON support for the observability exporters: a streaming writer
// (used by the Chrome-trace and metrics exporters) and a strict
// recursive-descent reader (used by tests to prove the exported documents
// are well-formed, and by tools that consume BENCH_*.json).
//
// The reader accepts exactly RFC 8259 JSON — objects, arrays, strings with
// the standard escapes (\uXXXX included, surrogate pairs validated), finite
// numbers, true/false/null — and rejects everything else with a ParseError
// carrying line/column, mirroring src/xml's error discipline.
//
// Because the reader also parses *untrusted network input* (the upsimd wire
// protocol in src/server), every parse is bounded: a nesting-depth limit
// keeps a hostile "[[[[..." from exhausting the parser's recursion stack,
// and a document-size limit rejects oversized payloads before any work.
// Both default on; callers that trust their input can raise or lift them
// through JsonLimits.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace upsim::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Append-only JSON document builder.  The caller is responsible for
/// well-formed nesting; commas and colons are inserted automatically.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();
  /// Splices `json` — which must already be a well-formed JSON value — into
  /// the document verbatim (comma handling as for any other value).  Lets
  /// composed documents embed pre-serialized parts without re-parsing.
  void raw_value(std::string_view json);

  [[nodiscard]] std::string str() && { return std::move(out_); }
  [[nodiscard]] const std::string& str() const& { return out_; }

 private:
  void comma();

  std::string out_;
  bool need_comma_ = false;
};

/// Parsed JSON value (document object model for tests/tools).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Sorted by key; JSON objects are unordered per RFC 8259.
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }
  /// Member access; throws upsim::NotFoundError when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const noexcept;
};

/// Hard bounds enforced while parsing; 0 means unlimited.  The defaults are
/// generous for every trusted document upsim itself writes (traces, metrics,
/// BENCH_*.json) while keeping a malicious network payload from
/// stack-overflowing or ballooning the process.
struct JsonLimits {
  /// Maximum nesting depth of arrays/objects (the document root is depth 1).
  std::size_t max_depth = 128;
  /// Maximum document size in bytes, checked before parsing starts.
  std::size_t max_bytes = 32u << 20;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).  Throws upsim::ParseError with position on error or
/// when a limit is exceeded.
[[nodiscard]] JsonValue json_parse(std::string_view input,
                                   const JsonLimits& limits = {});

}  // namespace upsim::obs
