#include "obs/prometheus.hpp"

#include <cmath>
#include <cstdio>

namespace upsim::obs {

namespace {

/// Shortest exact decimal for the dyadic bucket edges, full precision for
/// arbitrary sums/gauges ("%.17g" keeps round-trippability; "%g"-style
/// trailing-zero stripping keeps edges like 0.0625 tidy and byte-stable).
std::string num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string(buf);
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string sanitize_label_key(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_';
    out += valid ? c : '_';
  }
  return out;
}

/// Splits "base#k=v,k=v" into the family base and a rendered
/// `k="v",k="v"` label body.  A name without '#', or with a malformed
/// suffix (a pair missing '='), is one unlabeled metric — base is the
/// whole name and the body stays empty.
struct LabeledName {
  std::string_view base;
  std::string labels;  ///< rendered pairs, no braces; "" = unlabeled
};

LabeledName split_labeled_name(std::string_view raw) {
  const auto hash = raw.find('#');
  if (hash == std::string_view::npos || hash + 1 == raw.size()) {
    return {raw, {}};
  }
  std::string body;
  std::string_view rest = raw.substr(hash + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) return {raw, {}};
    if (!body.empty()) body += ',';
    body += sanitize_label_key(pair.substr(0, eq)) + "=\"" +
            escape_label_value(pair.substr(eq + 1)) + "\"";
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  return {raw.substr(0, hash), std::move(body)};
}

void append_histogram(std::string& out, const std::string& name,
                      const std::string& labels, bool emit_type,
                      const Histogram::Snapshot& data) {
  if (emit_type) out += "# TYPE " + name + " histogram\n";
  const std::string le_prefix =
      labels.empty() ? "_bucket{le=\"" : "_bucket{" + labels + ",le=\"";
  const std::string block = labels.empty() ? "" : "{" + labels + "}";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (data.buckets[i] == 0) continue;  // published buckets stay cumulative
    cumulative += data.buckets[i];
    out += name + le_prefix + num(Histogram::Snapshot::bucket_upper_edge(i)) +
           "\"} " + std::to_string(cumulative) + "\n";
  }
  out += name + le_prefix + "+Inf\"} " + std::to_string(data.count) + "\n";
  out += name + "_sum" + block + " " + num(data.sum) + "\n";
  out += name + "_count" + block + " " + std::to_string(data.count) + "\n";
}

}  // namespace

std::string prometheus_metric_name(std::string_view name) {
  std::string out = "upsim_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  // Snapshots are sorted by raw name and '#' sorts below [0-9A-Za-z_.], so
  // every label set of one family is adjacent to its base: one TYPE line
  // per family, then its samples.
  std::string out;
  std::string_view family;
  for (const auto& c : snapshot.counters) {
    const LabeledName split = split_labeled_name(c.name);
    const std::string name = prometheus_metric_name(split.base) + "_total";
    if (split.base != family) out += "# TYPE " + name + " counter\n";
    family = split.base;
    const std::string block =
        split.labels.empty() ? "" : "{" + split.labels + "}";
    out += name + block + " " + std::to_string(c.value) + "\n";
  }
  family = {};
  for (const auto& g : snapshot.gauges) {
    const LabeledName split = split_labeled_name(g.name);
    const std::string name = prometheus_metric_name(split.base);
    if (split.base != family) out += "# TYPE " + name + " gauge\n";
    family = split.base;
    const std::string block =
        split.labels.empty() ? "" : "{" + split.labels + "}";
    out += name + block + " " + num(g.value) + "\n";
  }
  family = {};
  for (const auto& h : snapshot.histograms) {
    const LabeledName split = split_labeled_name(h.name);
    append_histogram(out, prometheus_metric_name(split.base), split.labels,
                     split.base != family, h.data);
    family = split.base;
  }
  return out;
}

}  // namespace upsim::obs
