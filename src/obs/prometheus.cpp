#include "obs/prometheus.hpp"

#include <cmath>
#include <cstdio>

namespace upsim::obs {

namespace {

/// Shortest exact decimal for the dyadic bucket edges, full precision for
/// arbitrary sums/gauges ("%.17g" keeps round-trippability; "%g"-style
/// trailing-zero stripping keeps edges like 0.0625 tidy and byte-stable).
std::string num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string(buf);
}

void append_histogram(std::string& out, const std::string& name,
                      const Histogram::Snapshot& data) {
  out += "# TYPE " + name + " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (data.buckets[i] == 0) continue;  // published buckets stay cumulative
    cumulative += data.buckets[i];
    out += name + "_bucket{le=\"" +
           num(Histogram::Snapshot::bucket_upper_edge(i)) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  out += name + "_bucket{le=\"+Inf\"} " + std::to_string(data.count) + "\n";
  out += name + "_sum " + num(data.sum) + "\n";
  out += name + "_count " + std::to_string(data.count) + "\n";
}

}  // namespace

std::string prometheus_metric_name(std::string_view name) {
  std::string out = "upsim_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = prometheus_metric_name(c.name) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheus_metric_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + num(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    append_histogram(out, prometheus_metric_name(h.name), h.data);
  }
  return out;
}

}  // namespace upsim::obs
