#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace upsim::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Atomic CAS-maximum / minimum over doubles (no fetch_max for floats).
void atomic_min(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::size_t bucket_of(double v) noexcept {
  constexpr std::size_t kSub = Histogram::kSubBuckets;
  if (!(v >= 1.0)) {  // also catches NaN (record() filters it first)
    if (!(v > 0.0)) return 0;
    return std::min(static_cast<std::size_t>(v * static_cast<double>(kSub)),
                    kSub - 1);
  }
  const int e = std::ilogb(v);
  if (e >= 63) return Histogram::kBuckets - 1;  // 2^63 and beyond clamp
  // v / 2^e is in [1, 2); the fraction above 1 picks the linear slice.
  const double scaled = std::ldexp(v, -e);
  const std::size_t sub = std::min(
      static_cast<std::size_t>((scaled - 1.0) * static_cast<double>(kSub)),
      kSub - 1);
  return kSub * (static_cast<std::size_t>(e) + 1) + sub;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void Gauge::add(double d) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::record(double v) noexcept {
  if (std::isnan(v)) return;
  if (v < 0.0) v = 0.0;
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  atomic_min(min_, v);  // min_ starts at +inf, so the first sample wins
  atomic_max(max_, v);
}

double Histogram::Snapshot::bucket_upper_edge(std::size_t i) noexcept {
  constexpr std::size_t kSub = Histogram::kSubBuckets;
  if (i < kSub) {  // linear slices of [0, 1)
    return static_cast<double>(i + 1) / static_cast<double>(kSub);
  }
  const int e = static_cast<int>(i / kSub) - 1;
  const std::size_t sub = i % kSub;
  return std::ldexp(
      1.0 + static_cast<double>(sub + 1) / static_cast<double>(kSub), e);
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const auto in_bucket = static_cast<double>(buckets[i]);
    if (rank < static_cast<double>(seen) + in_bucket) {
      const double lo =
          std::max(min, i == 0 ? 0.0 : bucket_upper_edge(i - 1));
      const double hi = std::min(max, bucket_upper_edge(i));
      const double frac = (rank - static_cast<double>(seen)) / in_bucket;
      return lo + frac * (std::max(hi, lo) - lo);
    }
    seen += buckets[i];
  }
  return max;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
  auto counter_before = [&](std::string_view name) -> std::uint64_t {
    for (const auto& c : earlier.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  auto histogram_before =
      [&](std::string_view name) -> const Histogram::Snapshot* {
    for (const auto& h : earlier.histograms) {
      if (h.name == name) return &h.data;
    }
    return nullptr;
  };

  MetricsSnapshot out;
  out.counters.reserve(counters.size());
  for (const auto& c : counters) {
    const std::uint64_t before = counter_before(c.name);
    out.counters.push_back({c.name, c.value >= before ? c.value - before : 0});
  }
  out.gauges = gauges;  // instantaneous: the newer value is the answer
  out.histograms.reserve(histograms.size());
  for (const auto& h : histograms) {
    HistogramValue d{h.name, h.data};
    if (const auto* before = histogram_before(h.name)) {
      d.data.count =
          h.data.count >= before->count ? h.data.count - before->count : 0;
      d.data.sum = h.data.sum - before->sum;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        d.data.buckets[i] = h.data.buckets[i] >= before->buckets[i]
                                ? h.data.buckets[i] - before->buckets[i]
                                : 0;
      }
      // min/max are not invertible across windows; keep the newer extrema.
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  throw NotFoundError("MetricsSnapshot: no counter named '" +
                      std::string(name) + "'");
}

bool MetricsSnapshot::has_counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return true;
  }
  return false;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  throw NotFoundError("MetricsSnapshot: no gauge named '" + std::string(name) +
                      "'");
}

const Histogram::Snapshot& MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return h.data;
  }
  throw NotFoundError("MetricsSnapshot: no histogram named '" +
                      std::string(name) + "'");
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& c : counters) {
    w.key(c.name);
    w.value(c.value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& g : gauges) {
    w.key(g.name);
    w.value(g.value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("count");
    w.value(h.data.count);
    w.key("sum");
    w.value(h.data.sum);
    w.key("min");
    w.value(h.data.min);
    w.key("max");
    w.value(h.data.max);
    w.key("mean");
    w.value(h.data.mean());
    w.key("p50");
    w.value(h.data.quantile(0.50));
    w.key("p90");
    w.value(h.data.quantile(0.90));
    w.key("p95");
    w.value(h.data.quantile(0.95));
    w.key("p99");
    w.value(h.data.quantile(0.99));
    w.key("p999");
    w.value(h.data.quantile(0.999));
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.data.buckets[i] == 0) continue;  // sparse: zeros carry no info
      w.begin_object();
      w.key("le");
      w.value(Histogram::Snapshot::bucket_upper_edge(i));
      w.key("count");
      w.value(h.data.buckets[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

std::string MetricsSnapshot::to_text() const {
  std::size_t width = 0;
  for (const auto& c : counters) width = std::max(width, c.name.size());
  for (const auto& g : gauges) width = std::max(width, g.name.size());
  for (const auto& h : histograms) width = std::max(width, h.name.size());

  auto pad = [&](const std::string& name) {
    return name + std::string(width - name.size() + 2, ' ');
  };
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };

  std::string out;
  for (const auto& c : counters) {
    out += pad(c.name) + std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    out += pad(g.name) + num(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    out += pad(h.name) + "count=" + std::to_string(h.data.count) +
           " mean=" + num(h.data.mean()) + " p50=" + num(h.data.quantile(.5)) +
           " p95=" + num(h.data.quantile(.95)) +
           " p99=" + num(h.data.quantile(.99)) +
           " p999=" + num(h.data.quantile(.999)) + " max=" + num(h.data.max) +
           "\n";
  }
  return out;
}

void MetricsSnapshot::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error("MetricsSnapshot: cannot open '" + path + "' for writing");
  }
  out << to_json() << "\n";
  if (!out.flush()) {
    throw Error("MetricsSnapshot: write to '" + path + "' failed");
  }
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  static auto* registry = new Registry;  // leaked: see header
  return *registry;
}

Registry::Shard& Registry::shard_for(std::string_view name) noexcept {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

Counter& Registry::counter(std::string_view name) {
  Shard& shard = shard_for(name);
  const std::lock_guard lock(shard.mutex);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    it = shard.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Shard& shard = shard_for(name);
  const std::lock_guard lock(shard.mutex);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    it = shard.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Shard& shard = shard_for(name);
  const std::lock_guard lock(shard.mutex);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    for (const auto& [name, c] : shard.counters) {
      out.counters.push_back({name, c->value()});
    }
    for (const auto& [name, g] : shard.gauges) {
      out.gauges.push_back({name, g->value()});
    }
    for (const auto& [name, h] : shard.histograms) {
      out.histograms.push_back({name, h->snapshot()});
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void Registry::reset() {
  for (Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    for (auto& [name, c] : shard.counters) c->reset();
    for (auto& [name, g] : shard.gauges) g->reset();
    for (auto& [name, h] : shard.histograms) h->reset();
  }
}

}  // namespace upsim::obs
