// Service model (Sec. II and V-A2 of the paper).
//
// An *atomic service* is an indivisible abstraction of infrastructure,
// application or business functionality (Definition 1, after Milanovic et
// al.).  A *composite service* combines two or more atomic services behind a
// single interface; its control flow is a UML activity diagram whose Action
// nodes name the atomic services.  Decision nodes are excluded by
// construction — alternative branches are separate services — so every
// atomic service in the flow executes on every invocation (in series or in
// parallel), which is exactly the property the availability analysis in
// src/depend relies on.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "uml/activity.hpp"

namespace upsim::service {

/// An indivisible unit of functionality, e.g. "authenticate" or
/// "send_documents".  Granularity is chosen by re-usability within the
/// business process (Sec. II).
class AtomicService {
 public:
  explicit AtomicService(std::string name, std::string description = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }

 private:
  std::string name_;
  std::string description_;
};

/// A composite service: a named activity over registered atomic services.
class CompositeService {
 public:
  /// Takes ownership of the activity describing the flow.  The activity
  /// must validate cleanly and contain at least two actions; every action
  /// must name an atomic service known to the catalog that creates this
  /// composite (checked by ServiceCatalog::define_composite).
  CompositeService(std::string name, uml::Activity activity);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const uml::Activity& activity() const noexcept {
    return activity_;
  }

  /// Atomic services in topological execution order.
  [[nodiscard]] const std::vector<std::string>& atomic_services() const
      noexcept {
    return atomics_;
  }

  [[nodiscard]] bool uses(std::string_view atomic_service) const noexcept;

 private:
  std::string name_;
  uml::Activity activity_;
  std::vector<std::string> atomics_;
};

/// Registry of atomic and composite services for one business process model.
/// Guarantees referential integrity: composites may only use registered
/// atomic services, and names are unique across each kind.
class ServiceCatalog {
 public:
  ServiceCatalog() = default;
  ServiceCatalog(const ServiceCatalog&) = delete;
  ServiceCatalog& operator=(const ServiceCatalog&) = delete;
  ServiceCatalog(ServiceCatalog&&) = default;
  ServiceCatalog& operator=(ServiceCatalog&&) = default;

  const AtomicService& define_atomic(std::string name,
                                     std::string description = {});

  /// Validates the activity, checks that every action names a registered
  /// atomic service, and registers the composite.  Throws ModelError with
  /// the full problem list otherwise.
  const CompositeService& define_composite(std::string name,
                                           uml::Activity activity);

  /// Convenience for the common purely sequential flow (like the paper's
  /// printing service, Fig. 10): initial -> a1 -> a2 -> ... -> final.
  const CompositeService& define_sequence(
      std::string name, const std::vector<std::string>& atomic_names);

  [[nodiscard]] const AtomicService* find_atomic(std::string_view name) const
      noexcept;
  [[nodiscard]] const AtomicService& get_atomic(std::string_view name) const;
  [[nodiscard]] const CompositeService* find_composite(
      std::string_view name) const noexcept;
  [[nodiscard]] const CompositeService& get_composite(
      std::string_view name) const;

  [[nodiscard]] std::size_t atomic_count() const noexcept {
    return atomics_.size();
  }
  [[nodiscard]] std::size_t composite_count() const noexcept {
    return composites_.size();
  }
  [[nodiscard]] std::vector<const AtomicService*> atomics() const;
  [[nodiscard]] std::vector<const CompositeService*> composites() const;

  /// Composite services that use the given atomic service (an atomic
  /// service can be part of any number of composites, Sec. II).
  [[nodiscard]] std::vector<const CompositeService*> composites_using(
      std::string_view atomic_service) const;

 private:
  std::map<std::string, AtomicService, std::less<>> atomics_;
  std::map<std::string, std::unique_ptr<CompositeService>, std::less<>>
      composites_;
};

}  // namespace upsim::service
