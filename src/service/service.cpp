#include "service/service.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::service {

AtomicService::AtomicService(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description)) {
  if (!util::is_identifier(name_)) {
    throw ModelError("invalid atomic-service name: '" + name_ + "'");
  }
}

CompositeService::CompositeService(std::string name, uml::Activity activity)
    : name_(std::move(name)), activity_(std::move(activity)) {
  if (!util::is_identifier(name_)) {
    throw ModelError("invalid composite-service name: '" + name_ + "'");
  }
  const auto problems = activity_.validate();
  if (!problems.empty()) {
    throw ModelError("composite service '" + name_ + "': " +
                     util::join(problems, "; "));
  }
  atomics_ = activity_.atomic_services();
  if (atomics_.size() < 2) {
    throw ModelError(
        "composite service '" + name_ +
        "' must compose at least two atomic services (Definition 1)");
  }
}

bool CompositeService::uses(std::string_view atomic_service) const noexcept {
  return std::find(atomics_.begin(), atomics_.end(), atomic_service) !=
         atomics_.end();
}

const AtomicService& ServiceCatalog::define_atomic(std::string name,
                                                   std::string description) {
  if (atomics_.contains(name)) {
    throw ModelError("duplicate atomic service '" + name + "'");
  }
  AtomicService svc(name, std::move(description));
  const auto [it, inserted] = atomics_.emplace(std::move(name), std::move(svc));
  UPSIM_ASSERT(inserted);
  return it->second;
}

const CompositeService& ServiceCatalog::define_composite(
    std::string name, uml::Activity activity) {
  if (composites_.contains(name)) {
    throw ModelError("duplicate composite service '" + name + "'");
  }
  auto composite =
      std::make_unique<CompositeService>(name, std::move(activity));
  for (const std::string& atomic : composite->atomic_services()) {
    if (!atomics_.contains(atomic)) {
      throw ModelError("composite service '" + name +
                       "' uses unregistered atomic service '" + atomic + "'");
    }
  }
  const auto [it, inserted] =
      composites_.emplace(std::move(name), std::move(composite));
  UPSIM_ASSERT(inserted);
  return *it->second;
}

const CompositeService& ServiceCatalog::define_sequence(
    std::string name, const std::vector<std::string>& atomic_names) {
  uml::Activity activity(name + "_flow");
  const auto initial = activity.add_initial();
  uml::ActivityNodeId prev = initial;
  for (const std::string& atomic : atomic_names) {
    const auto action = activity.add_action(atomic);
    activity.flow(prev, action);
    prev = action;
  }
  const auto final_node = activity.add_final();
  activity.flow(prev, final_node);
  return define_composite(std::move(name), std::move(activity));
}

const AtomicService* ServiceCatalog::find_atomic(std::string_view name) const
    noexcept {
  const auto it = atomics_.find(name);
  return it == atomics_.end() ? nullptr : &it->second;
}

const AtomicService& ServiceCatalog::get_atomic(std::string_view name) const {
  const AtomicService* svc = find_atomic(name);
  if (svc == nullptr) {
    throw NotFoundError("unknown atomic service: '" + std::string(name) + "'");
  }
  return *svc;
}

const CompositeService* ServiceCatalog::find_composite(
    std::string_view name) const noexcept {
  const auto it = composites_.find(name);
  return it == composites_.end() ? nullptr : it->second.get();
}

const CompositeService& ServiceCatalog::get_composite(
    std::string_view name) const {
  const CompositeService* svc = find_composite(name);
  if (svc == nullptr) {
    throw NotFoundError("unknown composite service: '" + std::string(name) +
                        "'");
  }
  return *svc;
}

std::vector<const AtomicService*> ServiceCatalog::atomics() const {
  std::vector<const AtomicService*> out;
  out.reserve(atomics_.size());
  for (const auto& [_, svc] : atomics_) out.push_back(&svc);
  return out;
}

std::vector<const CompositeService*> ServiceCatalog::composites() const {
  std::vector<const CompositeService*> out;
  out.reserve(composites_.size());
  for (const auto& [_, svc] : composites_) out.push_back(svc.get());
  return out;
}

std::vector<const CompositeService*> ServiceCatalog::composites_using(
    std::string_view atomic_service) const {
  std::vector<const CompositeService*> out;
  for (const auto& [_, svc] : composites_) {
    if (svc->uses(atomic_service)) out.push_back(svc.get());
  }
  return out;
}

}  // namespace upsim::service
