// UML activity diagram subset for service descriptions (Sec. V-A2, Figs. 2
// and 10 of the paper).
//
// A composite service is a flow of Actions (atomic services) between one
// initial and one or more final nodes, with fork/join for parallel
// execution.  The paper deliberately excludes decision nodes — alternative
// branches are modelled as separate services — so this subset has none.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace upsim::uml {

enum class ActivityNodeKind : std::uint8_t { Initial, Final, Action, Fork, Join };

[[nodiscard]] constexpr const char* to_string(ActivityNodeKind k) noexcept {
  switch (k) {
    case ActivityNodeKind::Initial: return "initial";
    case ActivityNodeKind::Final: return "final";
    case ActivityNodeKind::Action: return "action";
    case ActivityNodeKind::Fork: return "fork";
    case ActivityNodeKind::Join: return "join";
  }
  return "?";
}

enum class ActivityNodeId : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t index(ActivityNodeId n) noexcept {
  return static_cast<std::uint32_t>(n);
}

struct ActivityNode {
  ActivityNodeKind kind;
  std::string name;  ///< for Actions this is the atomic-service name
};

/// An activity diagram.  Build with the add_* methods and flow(); check
/// well-formedness with validate() before analysis.
class Activity {
 public:
  explicit Activity(std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  ActivityNodeId add_initial(std::string name = "initial");
  ActivityNodeId add_final(std::string name = "final");
  /// Adds an Action node naming an atomic service.  Action names must be
  /// unique within the activity (they key the service mapping).
  ActivityNodeId add_action(std::string atomic_service);
  ActivityNodeId add_fork(std::string name = {});
  ActivityNodeId add_join(std::string name = {});

  /// Adds a control-flow edge from `from` to `to`.
  void flow(ActivityNodeId from, ActivityNodeId to);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const ActivityNode& node(ActivityNodeId id) const;
  [[nodiscard]] const std::vector<ActivityNodeId>& successors(
      ActivityNodeId id) const;
  [[nodiscard]] const std::vector<ActivityNodeId>& predecessors(
      ActivityNodeId id) const;

  /// Action node for an atomic-service name, if present.
  [[nodiscard]] std::optional<ActivityNodeId> find_action(
      std::string_view atomic_service) const noexcept;

  /// Atomic-service names in a topological execution order (parallel
  /// branches interleaved deterministically by node id).  Requires a valid
  /// acyclic diagram; throws ModelError on cycles.
  [[nodiscard]] std::vector<std::string> atomic_services() const;

  /// Structural well-formedness report; empty means valid:
  ///   exactly one initial (no incoming), >=1 final (no outgoing),
  ///   actions have exactly one incoming and one outgoing flow,
  ///   forks have one incoming and >=2 outgoing, joins the mirror image,
  ///   every node lies on a path initial -> final, and the flow is acyclic.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  ActivityNodeId add_node(ActivityNodeKind kind, std::string name);
  /// Topological order of all node ids; nullopt when the flow has a cycle.
  [[nodiscard]] std::optional<std::vector<ActivityNodeId>> topo_order() const;

  std::string name_;
  std::vector<ActivityNode> nodes_;
  std::vector<std::vector<ActivityNodeId>> out_;
  std::vector<std::vector<ActivityNodeId>> in_;
  std::map<std::string, ActivityNodeId, std::less<>> actions_by_name_;
};

}  // namespace upsim::uml
