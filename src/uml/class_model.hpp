// UML class diagram subset: classes with static attributes, binary
// associations, generalisation, and stereotype applications (Sec. V-A1 and
// Fig. 8 of the paper).
//
// The paper restricts classes to static attributes so that every instance
// of a class has exactly the properties of its class; this module enforces
// that by storing attribute *values* on the class and none on instances.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "uml/profile.hpp"
#include "uml/value.hpp"

namespace upsim::uml {

/// One applied stereotype with its attribute values.  Values for declared
/// attributes without an explicit value fall back to the declaration
/// default; a missing value without a default is a validation error.
class StereotypeApplication {
 public:
  explicit StereotypeApplication(const Stereotype& stereotype)
      : stereotype_(&stereotype) {}

  [[nodiscard]] const Stereotype& stereotype() const noexcept {
    return *stereotype_;
  }

  /// Sets the value of a declared (own or inherited) attribute.  Throws
  /// ModelError for undeclared names or non-conforming types.
  void set(std::string_view name, Value value);

  /// Explicit value, or declaration default, or nullopt.
  [[nodiscard]] std::optional<Value> value(std::string_view name) const;

  /// Like value() but throws NotFoundError when no value is derivable.
  [[nodiscard]] Value required_value(std::string_view name) const;

  /// Names (own + inherited) that still lack both a value and a default.
  [[nodiscard]] std::vector<std::string> missing_values() const;

 private:
  const Stereotype* stereotype_;
  std::map<std::string, Value, std::less<>> values_;
};

/// Base for stereotypable named elements (Class and Association).
class StereotypedElement {
 public:
  explicit StereotypedElement(std::string name);
  virtual ~StereotypedElement() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The metaclass this element is an instance of; stereotype applications
  /// are checked against it.
  [[nodiscard]] virtual Metaclass metaclass() const noexcept = 0;

  /// Applies `stereotype` and returns the application for value assignment.
  /// Throws ModelError if the stereotype is abstract, extends a different
  /// metaclass, or is already applied.
  StereotypeApplication& apply(const Stereotype& stereotype);

  [[nodiscard]] const std::vector<StereotypeApplication>& applications() const
      noexcept {
    return applications_;
  }
  [[nodiscard]] std::vector<StereotypeApplication>& applications() noexcept {
    return applications_;
  }

  /// The application of `stereotype` (exact match), or nullptr.
  [[nodiscard]] const StereotypeApplication* application_of(
      const Stereotype& stereotype) const noexcept;

  /// The first application whose stereotype is-a `stereotype`, or nullptr.
  /// Used to read e.g. Component.MTBF off a class stereotyped Device.
  [[nodiscard]] const StereotypeApplication* application_kind_of(
      const Stereotype& stereotype) const noexcept;

  /// True if some applied stereotype is-a `stereotype`.
  [[nodiscard]] bool has_stereotype(const Stereotype& stereotype) const
      noexcept {
    return application_kind_of(stereotype) != nullptr;
  }

  /// Searches every application (and its inherited declarations) for the
  /// attribute and returns its effective value; nullopt if no application
  /// declares it.
  [[nodiscard]] std::optional<Value> stereotype_value(
      std::string_view attribute) const;

 private:
  std::string name_;
  std::vector<StereotypeApplication> applications_;
};

class ClassModel;

/// A UML class.  May be abstract, may specialise one parent class, and
/// carries static attribute values shared by all its instances.
class Class final : public StereotypedElement {
 public:
  Class(std::string name, const ClassModel* owner, const Class* parent,
        bool is_abstract);

  [[nodiscard]] Metaclass metaclass() const noexcept override {
    return Metaclass::Class;
  }
  [[nodiscard]] const Class* parent() const noexcept { return parent_; }
  [[nodiscard]] bool is_abstract() const noexcept { return is_abstract_; }

  /// Sets a static attribute value (plain class attribute, not a
  /// stereotype attribute).
  void set_static(std::string name, Value value);

  /// Own or inherited static attribute value.
  [[nodiscard]] std::optional<Value> static_value(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, Value, std::less<>>&
  own_statics() const noexcept {
    return statics_;
  }

  /// True if this class is `other` or specialises it transitively.
  [[nodiscard]] bool is_kind_of(const Class& other) const noexcept;

 private:
  const ClassModel* owner_;
  const Class* parent_;
  bool is_abstract_;
  std::map<std::string, Value, std::less<>> statics_;
};

/// A binary association between two classes.  Instances of it are Links in
/// the object diagram; the paper stereotypes associations as
/// Connector/Communication.
class Association final : public StereotypedElement {
 public:
  Association(std::string name, const Class& end_a, const Class& end_b);

  [[nodiscard]] Metaclass metaclass() const noexcept override {
    return Metaclass::Association;
  }
  [[nodiscard]] const Class& end_a() const noexcept { return *end_a_; }
  [[nodiscard]] const Class& end_b() const noexcept { return *end_b_; }

  /// True if instances of (a, b) — in either order — can be linked by this
  /// association (each instance class must conform to one distinct end).
  [[nodiscard]] bool admits(const Class& a, const Class& b) const noexcept;

 private:
  const Class* end_a_;
  const Class* end_b_;
};

/// The class diagram: owns classes and associations.  Element addresses are
/// stable for the lifetime of the model (node-based storage), so object
/// diagrams may hold plain pointers into it.
class ClassModel {
 public:
  explicit ClassModel(std::string name);

  ClassModel(const ClassModel&) = delete;
  ClassModel& operator=(const ClassModel&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Defines a class; `parent` must belong to this model when given.
  Class& define_class(std::string name, const Class* parent = nullptr,
                      bool is_abstract = false);

  /// Defines an association between two classes of this model.
  Association& define_association(std::string name, const Class& end_a,
                                  const Class& end_b);

  [[nodiscard]] const Class* find_class(std::string_view name) const noexcept;
  [[nodiscard]] const Class& get_class(std::string_view name) const;
  [[nodiscard]] const Association* find_association(std::string_view name) const
      noexcept;
  [[nodiscard]] const Association& get_association(std::string_view name) const;

  [[nodiscard]] std::vector<const Class*> classes() const;
  [[nodiscard]] std::vector<const Association*> associations() const;

  /// Checks well-formedness: every stereotype application is complete (no
  /// missing mandatory values).  Returns a list of human-readable problems;
  /// empty means valid.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Class>, std::less<>> classes_;
  std::map<std::string, std::unique_ptr<Association>, std::less<>>
      associations_;
};

}  // namespace upsim::uml
