// UML profiles and stereotypes (Sec. II and Figs. 6/7 of the paper).
//
// A Profile owns a set of Stereotypes.  Each stereotype extends exactly one
// UML metaclass (Class or Association in the subset the methodology uses),
// may specialise a parent stereotype within the same profile (inheriting its
// attribute declarations, e.g. Device/Connector inherit Component's MTBF,
// MTTR and redundantComponents), may be abstract (Computer, Network Device),
// and declares typed attributes with optional defaults.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "uml/value.hpp"

namespace upsim::uml {

/// The UML metaclasses a stereotype can extend in this subset.
enum class Metaclass { Class, Association };

[[nodiscard]] constexpr const char* to_string(Metaclass m) noexcept {
  return m == Metaclass::Class ? "Class" : "Association";
}

/// A typed attribute declared by a stereotype.
struct AttributeDecl {
  std::string name;
  ValueType type = ValueType::Real;
  std::optional<Value> default_value;  ///< used when an application omits it
};

class Profile;

class Stereotype {
 public:
  Stereotype(std::string name, Metaclass extends, const Profile* owner,
             const Stereotype* parent, bool is_abstract);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Metaclass extends() const noexcept { return extends_; }
  [[nodiscard]] const Stereotype* parent() const noexcept { return parent_; }
  [[nodiscard]] bool is_abstract() const noexcept { return is_abstract_; }
  [[nodiscard]] const Profile& profile() const noexcept { return *owner_; }

  /// Declares an attribute on this stereotype.  Throws ModelError if the
  /// name collides with an own or inherited declaration, or if the default
  /// does not conform to the declared type.
  void declare_attribute(std::string name, ValueType type,
                         std::optional<Value> default_value = std::nullopt);

  /// Own declarations only (excludes inherited ones), in declaration order.
  [[nodiscard]] const std::vector<AttributeDecl>& own_attributes() const
      noexcept {
    return attributes_;
  }

  /// Own plus inherited declarations, base-most first.  This is the full
  /// attribute set an application of this stereotype must provide values
  /// for (modulo defaults).
  [[nodiscard]] std::vector<AttributeDecl> effective_attributes() const;

  /// Finds an (own or inherited) declaration by name.
  [[nodiscard]] const AttributeDecl* find_attribute(std::string_view name) const
      noexcept;

  /// True if this stereotype is `other` or specialises it transitively.
  [[nodiscard]] bool is_kind_of(const Stereotype& other) const noexcept;

 private:
  std::string name_;
  Metaclass extends_;
  const Profile* owner_;
  const Stereotype* parent_;
  bool is_abstract_;
  std::vector<AttributeDecl> attributes_;
};

/// A named collection of stereotypes, mirroring a UML profile package.
/// Stereotypes are owned by the profile and referenced by stable pointer;
/// a Profile must therefore outlive any model that applies it.
class Profile {
 public:
  explicit Profile(std::string name);

  Profile(const Profile&) = delete;
  Profile& operator=(const Profile&) = delete;
  Profile(Profile&&) = delete;
  Profile& operator=(Profile&&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Defines a stereotype.  `parent`, when given, must already belong to
  /// this profile and extend the same metaclass.  Throws ModelError on
  /// duplicates or cross-metaclass specialisation.
  Stereotype& define(std::string name, Metaclass extends,
                     const Stereotype* parent = nullptr,
                     bool is_abstract = false);

  [[nodiscard]] const Stereotype* find(std::string_view name) const noexcept;
  [[nodiscard]] const Stereotype& get(std::string_view name) const;
  [[nodiscard]] std::vector<const Stereotype*> stereotypes() const;

 private:
  std::string name_;
  // std::map keeps iteration deterministic; node-based so Stereotype
  // addresses stay stable across inserts.
  std::map<std::string, Stereotype, std::less<>> stereotypes_;
};

}  // namespace upsim::uml
