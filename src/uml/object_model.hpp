// UML object diagram subset: instanceSpecifications and links (Sec. V-A1).
//
// An ObjectModel instantiates exactly one ClassModel: every instance names a
// concrete class, and every link instantiates an association whose ends
// admit the linked instances' classes.  Because classes carry only static
// attributes, instances hold no values of their own — "two different
// instances of the same class have also the same properties" (paper,
// Sec. V-A1).  The complete network topology (Fig. 9) and every generated
// UPSIM (Figs. 11/12) are ObjectModels.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "uml/class_model.hpp"

namespace upsim::uml {

class ObjectModel;

/// An object: a named instance of a concrete class.
class InstanceSpecification {
 public:
  InstanceSpecification(std::string name, const Class& classifier);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Class& classifier() const noexcept { return *classifier_; }

  /// Static attribute value inherited from the classifier (and its parents).
  [[nodiscard]] std::optional<Value> static_value(std::string_view attr) const {
    return classifier_->static_value(attr);
  }

  /// Stereotype attribute value inherited from the classifier, e.g.
  /// "MTBF" when the classifier is stereotyped «Component».
  [[nodiscard]] std::optional<Value> stereotype_value(
      std::string_view attr) const {
    return classifier_->stereotype_value(attr);
  }

  /// "name:Class" rendering used in the paper's object diagrams.
  [[nodiscard]] std::string signature() const {
    return name_ + ":" + classifier_->name();
  }

 private:
  std::string name_;
  const Class* classifier_;
};

/// A link: a named instance of an association between two instances.
class Link {
 public:
  Link(std::string name, const Association& association,
       const InstanceSpecification& end_a, const InstanceSpecification& end_b);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Association& association() const noexcept {
    return *association_;
  }
  [[nodiscard]] const InstanceSpecification& end_a() const noexcept {
    return *end_a_;
  }
  [[nodiscard]] const InstanceSpecification& end_b() const noexcept {
    return *end_b_;
  }

 private:
  std::string name_;
  const Association* association_;
  const InstanceSpecification* end_a_;
  const InstanceSpecification* end_b_;
};

/// The object diagram.  Owns instances and links; the referenced ClassModel
/// must outlive it.
class ObjectModel {
 public:
  ObjectModel(std::string name, const ClassModel& classes);

  ObjectModel(const ObjectModel&) = delete;
  ObjectModel& operator=(const ObjectModel&) = delete;
  ObjectModel(ObjectModel&&) = default;
  ObjectModel& operator=(ObjectModel&&) = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const ClassModel& class_model() const noexcept {
    return *classes_;
  }

  /// Instantiates `classifier` (must be concrete and belong to the bound
  /// class model) under a unique instance name.
  InstanceSpecification& instantiate(std::string name, const Class& classifier);
  /// Convenience: classifier looked up by name.
  InstanceSpecification& instantiate(std::string name,
                                     std::string_view class_name);

  /// Links two instances via `association`; the association's ends must
  /// admit the instances' classes (in either order).  `link_name` empty
  /// derives "a--b".
  Link& link(const InstanceSpecification& a, const InstanceSpecification& b,
             const Association& association, std::string link_name = {});
  /// Convenience: everything looked up by name.
  Link& link(std::string_view instance_a, std::string_view instance_b,
             std::string_view association_name, std::string link_name = {});

  [[nodiscard]] const InstanceSpecification* find_instance(
      std::string_view name) const noexcept;
  [[nodiscard]] const InstanceSpecification& get_instance(
      std::string_view name) const;

  [[nodiscard]] std::size_t instance_count() const noexcept {
    return instances_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }
  [[nodiscard]] std::vector<const InstanceSpecification*> instances() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const
      noexcept {
    return links_;
  }

  /// Instances whose classifier is-a `cls`.
  [[nodiscard]] std::vector<const InstanceSpecification*> instances_of(
      const Class& cls) const;

  /// Count of instances per concrete classifier name (report helper).
  [[nodiscard]] std::map<std::string, std::size_t> census() const;

  /// Well-formedness report; empty means valid.  Includes the underlying
  /// class-model problems.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  std::string name_;
  const ClassModel* classes_;
  std::map<std::string, std::unique_ptr<InstanceSpecification>, std::less<>>
      instances_;
  std::vector<std::unique_ptr<Link>> links_;
  std::map<std::string, const Link*, std::less<>> links_by_name_;
};

}  // namespace upsim::uml
