#include "uml/activity.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::uml {

Activity::Activity(std::string name) : name_(std::move(name)) {
  if (!util::is_identifier(name_)) {
    throw ModelError("invalid activity name: '" + name_ + "'");
  }
}

ActivityNodeId Activity::add_node(ActivityNodeKind kind, std::string name) {
  const auto id = ActivityNodeId{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(ActivityNode{kind, std::move(name)});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

ActivityNodeId Activity::add_initial(std::string name) {
  return add_node(ActivityNodeKind::Initial, std::move(name));
}

ActivityNodeId Activity::add_final(std::string name) {
  return add_node(ActivityNodeKind::Final, std::move(name));
}

ActivityNodeId Activity::add_action(std::string atomic_service) {
  if (!util::is_identifier(atomic_service)) {
    throw ModelError("activity '" + name_ + "': invalid atomic-service name '" +
                     atomic_service + "'");
  }
  if (actions_by_name_.contains(atomic_service)) {
    throw ModelError("activity '" + name_ + "': duplicate action '" +
                     atomic_service + "'");
  }
  const ActivityNodeId id = add_node(ActivityNodeKind::Action, atomic_service);
  actions_by_name_.emplace(std::move(atomic_service), id);
  return id;
}

ActivityNodeId Activity::add_fork(std::string name) {
  if (name.empty()) name = "fork" + std::to_string(nodes_.size());
  return add_node(ActivityNodeKind::Fork, std::move(name));
}

ActivityNodeId Activity::add_join(std::string name) {
  if (name.empty()) name = "join" + std::to_string(nodes_.size());
  return add_node(ActivityNodeKind::Join, std::move(name));
}

void Activity::flow(ActivityNodeId from, ActivityNodeId to) {
  if (index(from) >= nodes_.size() || index(to) >= nodes_.size()) {
    throw ModelError("activity '" + name_ + "': flow endpoint out of range");
  }
  if (from == to) {
    throw ModelError("activity '" + name_ + "': self-flow on node '" +
                     nodes_[index(from)].name + "'");
  }
  out_[index(from)].push_back(to);
  in_[index(to)].push_back(from);
}

const ActivityNode& Activity::node(ActivityNodeId id) const {
  if (index(id) >= nodes_.size()) {
    throw NotFoundError("activity node id out of range");
  }
  return nodes_[index(id)];
}

const std::vector<ActivityNodeId>& Activity::successors(
    ActivityNodeId id) const {
  if (index(id) >= nodes_.size()) {
    throw NotFoundError("activity node id out of range");
  }
  return out_[index(id)];
}

const std::vector<ActivityNodeId>& Activity::predecessors(
    ActivityNodeId id) const {
  if (index(id) >= nodes_.size()) {
    throw NotFoundError("activity node id out of range");
  }
  return in_[index(id)];
}

std::optional<ActivityNodeId> Activity::find_action(
    std::string_view atomic_service) const noexcept {
  const auto it = actions_by_name_.find(atomic_service);
  if (it == actions_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::vector<ActivityNodeId>> Activity::topo_order() const {
  std::vector<std::size_t> indegree(nodes_.size());
  for (std::size_t v = 0; v < nodes_.size(); ++v) indegree[v] = in_[v].size();
  // Deterministic Kahn: always pop the smallest ready id.
  std::vector<ActivityNodeId> ready;
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (indegree[v] == 0) {
      ready.push_back(ActivityNodeId{static_cast<std::uint32_t>(v)});
    }
  }
  std::vector<ActivityNodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const auto it = std::min_element(
        ready.begin(), ready.end(),
        [](ActivityNodeId a, ActivityNodeId b) { return index(a) < index(b); });
    const ActivityNodeId v = *it;
    ready.erase(it);
    order.push_back(v);
    for (const ActivityNodeId w : out_[index(v)]) {
      if (--indegree[index(w)] == 0) ready.push_back(w);
    }
  }
  if (order.size() != nodes_.size()) return std::nullopt;  // cycle
  return order;
}

std::vector<std::string> Activity::atomic_services() const {
  const auto order = topo_order();
  if (!order) {
    throw ModelError("activity '" + name_ + "': control flow has a cycle");
  }
  std::vector<std::string> out;
  for (const ActivityNodeId id : *order) {
    const ActivityNode& n = nodes_[index(id)];
    if (n.kind == ActivityNodeKind::Action) out.push_back(n.name);
  }
  return out;
}

std::vector<std::string> Activity::validate() const {
  std::vector<std::string> problems;
  const std::string prefix = "activity '" + name_ + "': ";

  std::size_t initials = 0;
  std::size_t finals = 0;
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    const ActivityNode& n = nodes_[v];
    const std::size_t din = in_[v].size();
    const std::size_t dout = out_[v].size();
    switch (n.kind) {
      case ActivityNodeKind::Initial:
        ++initials;
        if (din != 0) {
          problems.push_back(prefix + "initial node has incoming flow");
        }
        if (dout != 1) {
          problems.push_back(prefix + "initial node must have exactly one "
                                      "outgoing flow");
        }
        break;
      case ActivityNodeKind::Final:
        ++finals;
        if (dout != 0) {
          problems.push_back(prefix + "final node '" + n.name +
                             "' has outgoing flow");
        }
        if (din == 0) {
          problems.push_back(prefix + "final node '" + n.name +
                             "' is unreachable (no incoming flow)");
        }
        break;
      case ActivityNodeKind::Action:
        if (din != 1 || dout != 1) {
          problems.push_back(prefix + "action '" + n.name +
                             "' must have exactly one incoming and one "
                             "outgoing flow");
        }
        break;
      case ActivityNodeKind::Fork:
        if (din != 1 || dout < 2) {
          problems.push_back(prefix + "fork '" + n.name +
                             "' must have one incoming and at least two "
                             "outgoing flows");
        }
        break;
      case ActivityNodeKind::Join:
        if (din < 2 || dout != 1) {
          problems.push_back(prefix + "join '" + n.name +
                             "' must have at least two incoming and one "
                             "outgoing flow");
        }
        break;
    }
  }
  if (initials != 1) {
    problems.push_back(prefix + "must have exactly one initial node (has " +
                       std::to_string(initials) + ")");
  }
  if (finals == 0) {
    problems.push_back(prefix + "must have at least one final node");
  }

  if (!topo_order()) {
    problems.push_back(prefix + "control flow has a cycle");
    return problems;  // reachability below assumes acyclic
  }

  // Every node must lie on some initial -> final path: reachable from the
  // initial node and co-reachable from some final node.
  if (initials == 1 && !nodes_.empty()) {
    std::size_t initial = 0;
    for (std::size_t v = 0; v < nodes_.size(); ++v) {
      if (nodes_[v].kind == ActivityNodeKind::Initial) initial = v;
    }
    std::vector<bool> fwd(nodes_.size(), false);
    std::deque<std::size_t> queue{initial};
    fwd[initial] = true;
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop_front();
      for (const ActivityNodeId w : out_[v]) {
        if (!fwd[index(w)]) {
          fwd[index(w)] = true;
          queue.push_back(index(w));
        }
      }
    }
    std::vector<bool> bwd(nodes_.size(), false);
    for (std::size_t v = 0; v < nodes_.size(); ++v) {
      if (nodes_[v].kind == ActivityNodeKind::Final) {
        bwd[v] = true;
        queue.push_back(v);
      }
    }
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop_front();
      for (const ActivityNodeId w : in_[v]) {
        if (!bwd[index(w)]) {
          bwd[index(w)] = true;
          queue.push_back(index(w));
        }
      }
    }
    for (std::size_t v = 0; v < nodes_.size(); ++v) {
      if (!fwd[v] || !bwd[v]) {
        problems.push_back(prefix + "node '" + nodes_[v].name +
                           "' is not on any initial->final path");
      }
    }
  }
  return problems;
}

}  // namespace upsim::uml
