#include "uml/class_model.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::uml {

// ---------------------------------------------------------------------------
// StereotypeApplication

void StereotypeApplication::set(std::string_view name, Value value) {
  const AttributeDecl* decl = stereotype_->find_attribute(name);
  if (decl == nullptr) {
    throw ModelError("stereotype '" + stereotype_->name() +
                     "' declares no attribute '" + std::string(name) + "'");
  }
  if (!value.conforms_to(decl->type)) {
    throw ModelError("value for '" + stereotype_->name() + "." + decl->name +
                     "' does not conform to " +
                     std::string(to_string(decl->type)));
  }
  values_.insert_or_assign(std::string(name), std::move(value));
}

std::optional<Value> StereotypeApplication::value(std::string_view name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  const AttributeDecl* decl = stereotype_->find_attribute(name);
  if (decl != nullptr && decl->default_value) return decl->default_value;
  return std::nullopt;
}

Value StereotypeApplication::required_value(std::string_view name) const {
  auto v = value(name);
  if (!v) {
    throw NotFoundError("no value for attribute '" + std::string(name) +
                        "' of stereotype '" + stereotype_->name() + "'");
  }
  return *v;
}

std::vector<std::string> StereotypeApplication::missing_values() const {
  std::vector<std::string> missing;
  for (const AttributeDecl& decl : stereotype_->effective_attributes()) {
    if (!values_.contains(decl.name) && !decl.default_value) {
      missing.push_back(decl.name);
    }
  }
  return missing;
}

// ---------------------------------------------------------------------------
// StereotypedElement

StereotypedElement::StereotypedElement(std::string name)
    : name_(std::move(name)) {
  if (!util::is_identifier(name_)) {
    throw ModelError("invalid element name: '" + name_ + "'");
  }
}

StereotypeApplication& StereotypedElement::apply(const Stereotype& stereotype) {
  if (stereotype.is_abstract()) {
    throw ModelError("cannot apply abstract stereotype '" + stereotype.name() +
                     "' to '" + name_ + "'");
  }
  if (stereotype.extends() != metaclass()) {
    throw ModelError("stereotype '" + stereotype.name() + "' extends " +
                     to_string(stereotype.extends()) +
                     " and cannot be applied to " + to_string(metaclass()) +
                     " '" + name_ + "'");
  }
  if (application_of(stereotype) != nullptr) {
    throw ModelError("stereotype '" + stereotype.name() +
                     "' already applied to '" + name_ + "'");
  }
  applications_.emplace_back(stereotype);
  return applications_.back();
}

const StereotypeApplication* StereotypedElement::application_of(
    const Stereotype& stereotype) const noexcept {
  for (const StereotypeApplication& app : applications_) {
    if (&app.stereotype() == &stereotype) return &app;
  }
  return nullptr;
}

const StereotypeApplication* StereotypedElement::application_kind_of(
    const Stereotype& stereotype) const noexcept {
  for (const StereotypeApplication& app : applications_) {
    if (app.stereotype().is_kind_of(stereotype)) return &app;
  }
  return nullptr;
}

std::optional<Value> StereotypedElement::stereotype_value(
    std::string_view attribute) const {
  for (const StereotypeApplication& app : applications_) {
    if (app.stereotype().find_attribute(attribute) != nullptr) {
      if (auto v = app.value(attribute)) return v;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Class

Class::Class(std::string name, const ClassModel* owner, const Class* parent,
             bool is_abstract)
    : StereotypedElement(std::move(name)),
      owner_(owner),
      parent_(parent),
      is_abstract_(is_abstract) {}

void Class::set_static(std::string name, Value value) {
  if (!util::is_identifier(name)) {
    throw ModelError("class '" + this->name() + "': invalid attribute name '" +
                     name + "'");
  }
  statics_.insert_or_assign(std::move(name), std::move(value));
}

std::optional<Value> Class::static_value(std::string_view name) const {
  const auto it = statics_.find(name);
  if (it != statics_.end()) return it->second;
  return parent_ != nullptr ? parent_->static_value(name) : std::nullopt;
}

bool Class::is_kind_of(const Class& other) const noexcept {
  for (const Class* c = this; c != nullptr; c = c->parent_) {
    if (c == &other) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Association

Association::Association(std::string name, const Class& end_a,
                         const Class& end_b)
    : StereotypedElement(std::move(name)), end_a_(&end_a), end_b_(&end_b) {}

bool Association::admits(const Class& a, const Class& b) const noexcept {
  return (a.is_kind_of(*end_a_) && b.is_kind_of(*end_b_)) ||
         (a.is_kind_of(*end_b_) && b.is_kind_of(*end_a_));
}

// ---------------------------------------------------------------------------
// ClassModel

ClassModel::ClassModel(std::string name) : name_(std::move(name)) {
  if (!util::is_identifier(name_)) {
    throw ModelError("invalid class-model name: '" + name_ + "'");
  }
}

Class& ClassModel::define_class(std::string name, const Class* parent,
                                bool is_abstract) {
  if (classes_.contains(name)) {
    throw ModelError("class model '" + name_ + "': duplicate class '" + name +
                     "'");
  }
  if (parent != nullptr && find_class(parent->name()) != parent) {
    throw ModelError("class model '" + name_ + "': parent class '" +
                     parent->name() + "' belongs to a different model");
  }
  auto cls = std::make_unique<Class>(name, this, parent, is_abstract);
  Class& ref = *cls;
  classes_.emplace(std::move(name), std::move(cls));
  return ref;
}

Association& ClassModel::define_association(std::string name,
                                            const Class& end_a,
                                            const Class& end_b) {
  if (associations_.contains(name)) {
    throw ModelError("class model '" + name_ + "': duplicate association '" +
                     name + "'");
  }
  if (find_class(end_a.name()) != &end_a || find_class(end_b.name()) != &end_b) {
    throw ModelError("class model '" + name_ + "': association '" + name +
                     "' references classes from a different model");
  }
  auto assoc = std::make_unique<Association>(name, end_a, end_b);
  Association& ref = *assoc;
  associations_.emplace(std::move(name), std::move(assoc));
  return ref;
}

const Class* ClassModel::find_class(std::string_view name) const noexcept {
  const auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : it->second.get();
}

const Class& ClassModel::get_class(std::string_view name) const {
  const Class* c = find_class(name);
  if (c == nullptr) {
    throw NotFoundError("class model '" + name_ + "' has no class '" +
                        std::string(name) + "'");
  }
  return *c;
}

const Association* ClassModel::find_association(std::string_view name) const
    noexcept {
  const auto it = associations_.find(name);
  return it == associations_.end() ? nullptr : it->second.get();
}

const Association& ClassModel::get_association(std::string_view name) const {
  const Association* a = find_association(name);
  if (a == nullptr) {
    throw NotFoundError("class model '" + name_ + "' has no association '" +
                        std::string(name) + "'");
  }
  return *a;
}

std::vector<const Class*> ClassModel::classes() const {
  std::vector<const Class*> out;
  out.reserve(classes_.size());
  for (const auto& [_, c] : classes_) out.push_back(c.get());
  return out;
}

std::vector<const Association*> ClassModel::associations() const {
  std::vector<const Association*> out;
  out.reserve(associations_.size());
  for (const auto& [_, a] : associations_) out.push_back(a.get());
  return out;
}

std::vector<std::string> ClassModel::validate() const {
  std::vector<std::string> problems;
  auto check_element = [&problems](const StereotypedElement& element,
                                   std::string_view kind) {
    for (const StereotypeApplication& app : element.applications()) {
      for (const std::string& missing : app.missing_values()) {
        problems.push_back(std::string(kind) + " '" + element.name() +
                           "': stereotype '" + app.stereotype().name() +
                           "' attribute '" + missing +
                           "' has no value and no default");
      }
    }
  };
  for (const auto& [_, c] : classes_) check_element(*c, "class");
  for (const auto& [_, a] : associations_) check_element(*a, "association");
  return problems;
}

}  // namespace upsim::uml
