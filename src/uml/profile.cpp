#include "uml/profile.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::uml {

Stereotype::Stereotype(std::string name, Metaclass extends,
                       const Profile* owner, const Stereotype* parent,
                       bool is_abstract)
    : name_(std::move(name)),
      extends_(extends),
      owner_(owner),
      parent_(parent),
      is_abstract_(is_abstract) {}

void Stereotype::declare_attribute(std::string name, ValueType type,
                                   std::optional<Value> default_value) {
  if (!util::is_identifier(name)) {
    throw ModelError("stereotype '" + name_ + "': invalid attribute name '" +
                     name + "'");
  }
  if (find_attribute(name) != nullptr) {
    throw ModelError("stereotype '" + name_ + "': attribute '" + name +
                     "' already declared (possibly inherited)");
  }
  if (default_value && !default_value->conforms_to(type)) {
    throw ModelError("stereotype '" + name_ + "': default for '" + name +
                     "' does not conform to " + std::string(to_string(type)));
  }
  attributes_.push_back(AttributeDecl{std::move(name), type,
                                      std::move(default_value)});
}

std::vector<AttributeDecl> Stereotype::effective_attributes() const {
  std::vector<AttributeDecl> out;
  if (parent_ != nullptr) out = parent_->effective_attributes();
  out.insert(out.end(), attributes_.begin(), attributes_.end());
  return out;
}

const AttributeDecl* Stereotype::find_attribute(std::string_view name) const
    noexcept {
  for (const AttributeDecl& a : attributes_) {
    if (a.name == name) return &a;
  }
  return parent_ != nullptr ? parent_->find_attribute(name) : nullptr;
}

bool Stereotype::is_kind_of(const Stereotype& other) const noexcept {
  for (const Stereotype* s = this; s != nullptr; s = s->parent_) {
    if (s == &other) return true;
  }
  return false;
}

Profile::Profile(std::string name) : name_(std::move(name)) {
  if (!util::is_identifier(name_)) {
    throw ModelError("invalid profile name: '" + name_ + "'");
  }
}

Stereotype& Profile::define(std::string name, Metaclass extends,
                            const Stereotype* parent, bool is_abstract) {
  if (!util::is_identifier(name)) {
    throw ModelError("profile '" + name_ + "': invalid stereotype name '" +
                     name + "'");
  }
  if (stereotypes_.contains(name)) {
    throw ModelError("profile '" + name_ + "': duplicate stereotype '" + name +
                     "'");
  }
  if (parent != nullptr) {
    if (&parent->profile() != this) {
      throw ModelError("profile '" + name_ + "': parent stereotype '" +
                       parent->name() + "' belongs to a different profile");
    }
    if (parent->extends() != extends) {
      throw ModelError("profile '" + name_ + "': stereotype '" + name +
                       "' extends " + to_string(extends) + " but parent '" +
                       parent->name() + "' extends " +
                       to_string(parent->extends()));
    }
  }
  auto [it, inserted] = stereotypes_.emplace(
      name, Stereotype(name, extends, this, parent, is_abstract));
  UPSIM_ASSERT(inserted);
  return it->second;
}

const Stereotype* Profile::find(std::string_view name) const noexcept {
  const auto it = stereotypes_.find(name);
  return it == stereotypes_.end() ? nullptr : &it->second;
}

const Stereotype& Profile::get(std::string_view name) const {
  const Stereotype* s = find(name);
  if (s == nullptr) {
    throw NotFoundError("profile '" + name_ + "' has no stereotype '" +
                        std::string(name) + "'");
  }
  return *s;
}

std::vector<const Stereotype*> Profile::stereotypes() const {
  std::vector<const Stereotype*> out;
  out.reserve(stereotypes_.size());
  for (const auto& [_, s] : stereotypes_) out.push_back(&s);
  return out;
}

}  // namespace upsim::uml
