// Typed attribute values for UML stereotype and class attributes.
//
// The paper's profiles use Real (MTBF, MTTR, throughput), Integer
// (redundantComponents), String (manufacturer, model, channel) and Boolean
// attributes; this variant covers exactly those.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/error.hpp"

namespace upsim::uml {

enum class ValueType { Real, Integer, String, Boolean };

[[nodiscard]] constexpr const char* to_string(ValueType t) noexcept {
  switch (t) {
    case ValueType::Real: return "Real";
    case ValueType::Integer: return "Integer";
    case ValueType::String: return "String";
    case ValueType::Boolean: return "Boolean";
  }
  return "?";
}

/// A UML attribute value.  Construction is implicit from the natural C++
/// types; typed access throws ModelError on mismatch so profile violations
/// surface with context instead of silently coercing.
class Value {
 public:
  Value() : data_(0.0) {}
  Value(double v) : data_(v) {}                       // NOLINT(google-explicit-constructor)
  Value(std::int64_t v) : data_(v) {}                 // NOLINT(google-explicit-constructor)
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}  // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}       // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}     // NOLINT(google-explicit-constructor)
  Value(bool v) : data_(v) {}                         // NOLINT(google-explicit-constructor)

  [[nodiscard]] ValueType type() const noexcept {
    switch (data_.index()) {
      case 0: return ValueType::Real;
      case 1: return ValueType::Integer;
      case 2: return ValueType::String;
      default: return ValueType::Boolean;
    }
  }

  [[nodiscard]] double as_real() const {
    if (const auto* d = std::get_if<double>(&data_)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(&data_)) {
      return static_cast<double>(*i);  // Integer widens to Real
    }
    throw ModelError("attribute value is not numeric");
  }

  [[nodiscard]] std::int64_t as_integer() const {
    if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
    throw ModelError("attribute value is not an Integer");
  }

  [[nodiscard]] const std::string& as_string() const {
    if (const auto* s = std::get_if<std::string>(&data_)) return *s;
    throw ModelError("attribute value is not a String");
  }

  [[nodiscard]] bool as_boolean() const {
    if (const auto* b = std::get_if<bool>(&data_)) return *b;
    throw ModelError("attribute value is not a Boolean");
  }

  /// True if this value can be assigned to an attribute declared with type
  /// `declared` (Integer is assignable to Real).
  [[nodiscard]] bool conforms_to(ValueType declared) const noexcept {
    const ValueType t = type();
    if (t == declared) return true;
    return declared == ValueType::Real && t == ValueType::Integer;
  }

  /// Human-readable rendering for reports and error messages.
  [[nodiscard]] std::string to_text() const;

  [[nodiscard]] bool operator==(const Value& other) const noexcept {
    return data_ == other.data_;
  }

 private:
  std::variant<double, std::int64_t, std::string, bool> data_;
};

}  // namespace upsim::uml
