#include "uml/object_model.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::uml {

InstanceSpecification::InstanceSpecification(std::string name,
                                             const Class& classifier)
    : name_(std::move(name)), classifier_(&classifier) {
  if (!util::is_identifier(name_)) {
    throw ModelError("invalid instance name: '" + name_ + "'");
  }
}

Link::Link(std::string name, const Association& association,
           const InstanceSpecification& end_a,
           const InstanceSpecification& end_b)
    : name_(std::move(name)),
      association_(&association),
      end_a_(&end_a),
      end_b_(&end_b) {}

ObjectModel::ObjectModel(std::string name, const ClassModel& classes)
    : name_(std::move(name)), classes_(&classes) {
  if (!util::is_identifier(name_)) {
    throw ModelError("invalid object-model name: '" + name_ + "'");
  }
}

InstanceSpecification& ObjectModel::instantiate(std::string name,
                                                const Class& classifier) {
  if (classes_->find_class(classifier.name()) != &classifier) {
    throw ModelError("object model '" + name_ + "': class '" +
                     classifier.name() + "' belongs to a different model");
  }
  if (classifier.is_abstract()) {
    throw ModelError("object model '" + name_ +
                     "': cannot instantiate abstract class '" +
                     classifier.name() + "'");
  }
  if (instances_.contains(name)) {
    throw ModelError("object model '" + name_ + "': duplicate instance '" +
                     name + "'");
  }
  auto inst = std::make_unique<InstanceSpecification>(name, classifier);
  InstanceSpecification& ref = *inst;
  instances_.emplace(std::move(name), std::move(inst));
  return ref;
}

InstanceSpecification& ObjectModel::instantiate(std::string name,
                                                std::string_view class_name) {
  return instantiate(std::move(name), classes_->get_class(class_name));
}

Link& ObjectModel::link(const InstanceSpecification& a,
                        const InstanceSpecification& b,
                        const Association& association,
                        std::string link_name) {
  if (find_instance(a.name()) != &a || find_instance(b.name()) != &b) {
    throw ModelError("object model '" + name_ +
                     "': link endpoint from a different model");
  }
  if (&a == &b) {
    throw ModelError("object model '" + name_ + "': self-link on instance '" +
                     a.name() + "'");
  }
  if (classes_->find_association(association.name()) != &association) {
    throw ModelError("object model '" + name_ + "': association '" +
                     association.name() + "' belongs to a different model");
  }
  if (!association.admits(a.classifier(), b.classifier())) {
    throw ModelError("object model '" + name_ + "': association '" +
                     association.name() + "' (" + association.end_a().name() +
                     "--" + association.end_b().name() +
                     ") does not admit link " + a.signature() + " -- " +
                     b.signature());
  }
  if (link_name.empty()) link_name = a.name() + "--" + b.name();
  if (links_by_name_.contains(link_name)) {
    throw ModelError("object model '" + name_ + "': duplicate link '" +
                     link_name + "'");
  }
  links_.push_back(std::make_unique<Link>(link_name, association, a, b));
  links_by_name_.emplace(std::move(link_name), links_.back().get());
  return *links_.back();
}

Link& ObjectModel::link(std::string_view instance_a, std::string_view instance_b,
                        std::string_view association_name,
                        std::string link_name) {
  return link(get_instance(instance_a), get_instance(instance_b),
              classes_->get_association(association_name),
              std::move(link_name));
}

const InstanceSpecification* ObjectModel::find_instance(
    std::string_view name) const noexcept {
  const auto it = instances_.find(name);
  return it == instances_.end() ? nullptr : it->second.get();
}

const InstanceSpecification& ObjectModel::get_instance(
    std::string_view name) const {
  const InstanceSpecification* inst = find_instance(name);
  if (inst == nullptr) {
    throw NotFoundError("object model '" + name_ + "' has no instance '" +
                        std::string(name) + "'");
  }
  return *inst;
}

std::vector<const InstanceSpecification*> ObjectModel::instances() const {
  std::vector<const InstanceSpecification*> out;
  out.reserve(instances_.size());
  for (const auto& [_, inst] : instances_) out.push_back(inst.get());
  return out;
}

std::vector<const InstanceSpecification*> ObjectModel::instances_of(
    const Class& cls) const {
  std::vector<const InstanceSpecification*> out;
  for (const auto& [_, inst] : instances_) {
    if (inst->classifier().is_kind_of(cls)) out.push_back(inst.get());
  }
  return out;
}

std::map<std::string, std::size_t> ObjectModel::census() const {
  std::map<std::string, std::size_t> out;
  for (const auto& [_, inst] : instances_) {
    ++out[inst->classifier().name()];
  }
  return out;
}

std::vector<std::string> ObjectModel::validate() const {
  std::vector<std::string> problems = classes_->validate();
  // Links are validated at construction; re-check here so models mutated
  // through future APIs still get a full report.
  for (const auto& l : links_) {
    if (!l->association().admits(l->end_a().classifier(),
                                 l->end_b().classifier())) {
      problems.push_back("link '" + l->name() + "' violates association '" +
                         l->association().name() + "'");
    }
  }
  return problems;
}

}  // namespace upsim::uml
