#include "uml/value.hpp"

#include "util/strings.hpp"

namespace upsim::uml {

std::string Value::to_text() const {
  switch (type()) {
    case ValueType::Real: return util::format_sig(as_real(), 10);
    case ValueType::Integer: return std::to_string(as_integer());
    case ValueType::String: return as_string();
    case ValueType::Boolean: return as_boolean() ? "true" : "false";
  }
  return "?";
}

}  // namespace upsim::uml
