#include "vpm/model_space.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::vpm {

ModelSpace::ModelSpace() {
  entities_.push_back(Entity{});  // the root: empty name, its own parent
  live_entities_ = 1;
}

const ModelSpace::Entity& ModelSpace::entity_ref(EntityId e) const {
  if (index(e) >= entities_.size() || !entities_[index(e)].alive) {
    throw NotFoundError("model space: dead or unknown entity id " +
                        std::to_string(index(e)));
  }
  return entities_[index(e)];
}

ModelSpace::Entity& ModelSpace::entity_ref(EntityId e) {
  return const_cast<Entity&>(
      static_cast<const ModelSpace*>(this)->entity_ref(e));
}

const ModelSpace::Relation& ModelSpace::relation_ref(RelationId r) const {
  if (index(r) >= relations_.size() || !relations_[index(r)].alive) {
    throw NotFoundError("model space: dead or unknown relation id " +
                        std::to_string(index(r)));
  }
  return relations_[index(r)];
}

EntityId ModelSpace::create_entity(EntityId parent, std::string name) {
  Entity& p = entity_ref(parent);
  if (!util::is_identifier(name)) {
    throw ModelError("model space: invalid entity name '" + name + "'");
  }
  if (p.children.contains(name)) {
    throw ModelError("model space: '" + fqn(parent) +
                     "' already has a child named '" + name + "'");
  }
  const auto id = EntityId{static_cast<std::uint32_t>(entities_.size())};
  Entity e;
  e.name = name;
  e.parent = parent;
  entities_.push_back(std::move(e));
  entities_[index(parent)].children.emplace(std::move(name), id);
  ++live_entities_;
  return id;
}

EntityId ModelSpace::ensure_entity(EntityId parent, std::string name) {
  const Entity& p = entity_ref(parent);
  const auto it = p.children.find(name);
  if (it != p.children.end()) return it->second;
  return create_entity(parent, std::move(name));
}

EntityId ModelSpace::ensure_path(std::string_view dotted_fqn) {
  EntityId cur = kRoot;
  for (const std::string& segment : util::split(dotted_fqn, '.')) {
    cur = ensure_entity(cur, segment);
  }
  return cur;
}

void ModelSpace::delete_entity(EntityId e) {
  if (e == kRoot) throw ModelError("model space: cannot delete the root");
  Entity& victim = entity_ref(e);
  // Collect the subtree.
  std::vector<EntityId> subtree;
  std::deque<EntityId> queue{e};
  while (!queue.empty()) {
    const EntityId v = queue.front();
    queue.pop_front();
    subtree.push_back(v);
    for (const auto& [_, c] : entities_[index(v)].children) queue.push_back(c);
  }
  // Kill incident relations first.
  for (const EntityId v : subtree) {
    Entity& ent = entities_[index(v)];
    for (const RelationId r : ent.out) {
      if (relations_[index(r)].alive) delete_relation(r);
    }
    for (const RelationId r : ent.in) {
      if (relations_[index(r)].alive) delete_relation(r);
    }
  }
  // Unhook from the parent, then mark the subtree dead.
  entities_[index(victim.parent)].children.erase(victim.name);
  for (const EntityId v : subtree) {
    entities_[index(v)].alive = false;
    --live_entities_;
  }
}

bool ModelSpace::is_alive(EntityId e) const noexcept {
  return index(e) < entities_.size() && entities_[index(e)].alive;
}

const std::string& ModelSpace::name(EntityId e) const {
  return entity_ref(e).name;
}

std::string ModelSpace::fqn(EntityId e) const {
  const Entity& ent = entity_ref(e);
  if (e == kRoot) return "";
  if (ent.parent == kRoot) return ent.name;
  return fqn(ent.parent) + "." + ent.name;
}

EntityId ModelSpace::parent(EntityId e) const { return entity_ref(e).parent; }

std::vector<EntityId> ModelSpace::children(EntityId e) const {
  const Entity& ent = entity_ref(e);
  std::vector<EntityId> out;
  out.reserve(ent.children.size());
  for (const auto& [_, c] : ent.children) out.push_back(c);
  return out;
}

std::optional<EntityId> ModelSpace::child(EntityId e,
                                          std::string_view name) const {
  const Entity& ent = entity_ref(e);
  const auto it = ent.children.find(name);
  if (it == ent.children.end()) return std::nullopt;
  return it->second;
}

std::optional<EntityId> ModelSpace::find(std::string_view dotted_fqn) const {
  EntityId cur = kRoot;
  if (dotted_fqn.empty()) return cur;
  for (const std::string& segment : util::split(dotted_fqn, '.')) {
    const auto next = child(cur, segment);
    if (!next) return std::nullopt;
    cur = *next;
  }
  return cur;
}

EntityId ModelSpace::get(std::string_view dotted_fqn) const {
  const auto e = find(dotted_fqn);
  if (!e) {
    throw NotFoundError("model space: no entity at '" +
                        std::string(dotted_fqn) + "'");
  }
  return *e;
}

void ModelSpace::set_value(EntityId e, std::string value) {
  entity_ref(e).value = std::move(value);
}

const std::string& ModelSpace::value(EntityId e) const {
  return entity_ref(e).value;
}

void ModelSpace::set_instance_of(EntityId instance, EntityId type) {
  Entity& inst = entity_ref(instance);
  (void)entity_ref(type);  // liveness check
  if (std::find(inst.types.begin(), inst.types.end(), type) ==
      inst.types.end()) {
    inst.types.push_back(type);
  }
}

const std::vector<EntityId>& ModelSpace::types_of(EntityId e) const {
  return entity_ref(e).types;
}

bool ModelSpace::is_instance_of(EntityId e, EntityId type) const {
  const auto& types = entity_ref(e).types;
  return std::find(types.begin(), types.end(), type) != types.end();
}

std::vector<EntityId> ModelSpace::instances_of(EntityId type) const {
  (void)entity_ref(type);
  std::vector<EntityId> out;
  for (std::size_t i = 0; i < entities_.size(); ++i) {
    const Entity& ent = entities_[i];
    if (!ent.alive) continue;
    if (std::find(ent.types.begin(), ent.types.end(), type) !=
        ent.types.end()) {
      out.push_back(EntityId{static_cast<std::uint32_t>(i)});
    }
  }
  return out;
}

RelationId ModelSpace::create_relation(std::string name, EntityId src,
                                       EntityId trg) {
  (void)entity_ref(src);
  (void)entity_ref(trg);
  if (!util::is_identifier(name)) {
    throw ModelError("model space: invalid relation name '" + name + "'");
  }
  const auto id = RelationId{static_cast<std::uint32_t>(relations_.size())};
  relations_.push_back(Relation{std::move(name), src, trg, true});
  entities_[index(src)].out.push_back(id);
  entities_[index(trg)].in.push_back(id);
  ++live_relations_;
  return id;
}

bool ModelSpace::relation_alive(RelationId r) const noexcept {
  return index(r) < relations_.size() && relations_[index(r)].alive;
}

const std::string& ModelSpace::relation_name(RelationId r) const {
  return relation_ref(r).name;
}

EntityId ModelSpace::source(RelationId r) const { return relation_ref(r).src; }

EntityId ModelSpace::target(RelationId r) const { return relation_ref(r).trg; }

std::vector<RelationId> ModelSpace::relations_from(
    EntityId e, std::string_view name) const {
  const Entity& ent = entity_ref(e);
  std::vector<RelationId> out;
  for (const RelationId r : ent.out) {
    const Relation& rel = relations_[index(r)];
    if (rel.alive && (name.empty() || rel.name == name)) out.push_back(r);
  }
  return out;
}

std::vector<RelationId> ModelSpace::relations_to(EntityId e,
                                                 std::string_view name) const {
  const Entity& ent = entity_ref(e);
  std::vector<RelationId> out;
  for (const RelationId r : ent.in) {
    const Relation& rel = relations_[index(r)];
    if (rel.alive && (name.empty() || rel.name == name)) out.push_back(r);
  }
  return out;
}

void ModelSpace::delete_relation(RelationId r) {
  Relation& rel = const_cast<Relation&>(relation_ref(r));
  rel.alive = false;
  --live_relations_;
}

std::size_t ModelSpace::entity_count() const noexcept { return live_entities_; }

std::size_t ModelSpace::relation_count() const noexcept {
  return live_relations_;
}

void ModelSpace::dump_rec(EntityId e, std::size_t depth,
                          std::string& out) const {
  const Entity& ent = entities_[index(e)];
  out += std::string(depth * 2, ' ');
  out += e == kRoot ? "<root>" : ent.name;
  if (!ent.value.empty()) out += " = \"" + ent.value + "\"";
  if (!ent.types.empty()) {
    out += " :";
    for (const EntityId t : ent.types) out += " " + fqn(t);
  }
  out += "\n";
  for (const auto& [_, c] : ent.children) dump_rec(c, depth + 1, out);
}

std::string ModelSpace::dump(EntityId e) const {
  (void)entity_ref(e);
  std::string out;
  dump_rec(e, 0, out);
  return out;
}

}  // namespace upsim::vpm
