#include "vpm/rules.hpp"

#include "util/error.hpp"

namespace upsim::vpm {

std::size_t for_each_match(ModelSpace& space, const Pattern& pattern,
                           const RuleAction& action) {
  if (action == nullptr) throw ModelError("for_each_match: null action");
  // Materialise all bindings before mutating.
  const std::vector<Binding> matches = pattern.match(space);
  std::size_t changed = 0;
  for (const Binding& binding : matches) {
    bool alive = true;
    for (const auto& [_, entity] : binding) {
      if (!space.is_alive(entity)) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    if (action(space, binding)) ++changed;
  }
  return changed;
}

FixpointResult run_to_fixpoint(ModelSpace& space,
                               const std::vector<Rule>& rules,
                               std::size_t max_rounds) {
  FixpointResult result;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++result.rounds;
    std::size_t changed_this_round = 0;
    for (const Rule& rule : rules) {
      changed_this_round += for_each_match(space, rule.pattern, rule.action);
    }
    result.applications += changed_this_round;
    if (changed_this_round == 0) {
      result.converged = true;
      return result;
    }
  }
  return result;  // converged == false: guard tripped
}

}  // namespace upsim::vpm
