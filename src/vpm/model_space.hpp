// A Visual-and-Precise-Metamodeling (VPM) style model space, after the
// VIATRA2 framework the paper builds on (Sec. V-C).
//
// The model space is a containment tree of *entities* plus a set of typed,
// directed *relations* between entities.  Both entities and relations can be
// declared instances of other entities/relations ("instanceOf"), which is
// how metamodels and models coexist in one space: metamodel elements are
// ordinary entities that model elements point at.  Every entity has a fully
// qualified name (FQN) formed by joining the names on its containment path
// with '.', e.g. "uml.infrastructure.t1".
//
// The importers in src/transform populate a space from UML models and
// mapping files; the path-discovery step reads and writes it; the UPSIM
// emitter reads the merged paths back out.  Entities also carry an optional
// string value (VPM's "value" slot) used for attribute storage.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace upsim::vpm {

enum class EntityId : std::uint32_t {};
enum class RelationId : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t index(EntityId e) noexcept {
  return static_cast<std::uint32_t>(e);
}
[[nodiscard]] constexpr std::uint32_t index(RelationId r) noexcept {
  return static_cast<std::uint32_t>(r);
}

/// The root entity is always id 0 with the empty name.
inline constexpr EntityId kRoot{0};

class ModelSpace {
 public:
  ModelSpace();

  ModelSpace(const ModelSpace&) = delete;
  ModelSpace& operator=(const ModelSpace&) = delete;
  ModelSpace(ModelSpace&&) = default;
  ModelSpace& operator=(ModelSpace&&) = default;

  // -- entities -------------------------------------------------------------
  /// Creates a child entity of `parent`.  Sibling names must be unique.
  EntityId create_entity(EntityId parent, std::string name);
  /// Like create_entity but returns the existing child when one with this
  /// name is already present (idempotent namespace building).
  EntityId ensure_entity(EntityId parent, std::string name);
  /// Resolves a dotted path under the root, creating missing segments.
  EntityId ensure_path(std::string_view dotted_fqn);

  /// Deletes `e` and its entire subtree, along with every relation incident
  /// to a deleted entity.  The root cannot be deleted.
  void delete_entity(EntityId e);

  [[nodiscard]] bool is_alive(EntityId e) const noexcept;
  [[nodiscard]] const std::string& name(EntityId e) const;
  [[nodiscard]] std::string fqn(EntityId e) const;
  [[nodiscard]] EntityId parent(EntityId e) const;
  [[nodiscard]] std::vector<EntityId> children(EntityId e) const;
  [[nodiscard]] std::optional<EntityId> child(EntityId e,
                                              std::string_view name) const;
  /// Entity at a dotted path under the root, or nullopt.
  [[nodiscard]] std::optional<EntityId> find(std::string_view dotted_fqn) const;
  /// Entity at a dotted path, or throws NotFoundError.
  [[nodiscard]] EntityId get(std::string_view dotted_fqn) const;

  /// VPM value slot.
  void set_value(EntityId e, std::string value);
  [[nodiscard]] const std::string& value(EntityId e) const;

  // -- typing ---------------------------------------------------------------
  /// Declares `instance` an instance of `type` (both are entities; a type
  /// is any entity used as one, typically under a "metamodel" namespace).
  void set_instance_of(EntityId instance, EntityId type);
  [[nodiscard]] const std::vector<EntityId>& types_of(EntityId e) const;
  /// True if `e` is declared an instance of `type` (directly).
  [[nodiscard]] bool is_instance_of(EntityId e, EntityId type) const;
  /// All living entities declared instances of `type`.
  [[nodiscard]] std::vector<EntityId> instances_of(EntityId type) const;

  // -- relations ------------------------------------------------------------
  /// Creates a directed relation `src --name--> trg`.
  RelationId create_relation(std::string name, EntityId src, EntityId trg);
  [[nodiscard]] bool relation_alive(RelationId r) const noexcept;
  [[nodiscard]] const std::string& relation_name(RelationId r) const;
  [[nodiscard]] EntityId source(RelationId r) const;
  [[nodiscard]] EntityId target(RelationId r) const;
  /// Outgoing relations of `e`, optionally filtered by name.
  [[nodiscard]] std::vector<RelationId> relations_from(
      EntityId e, std::string_view name = {}) const;
  /// Incoming relations of `e`, optionally filtered by name.
  [[nodiscard]] std::vector<RelationId> relations_to(
      EntityId e, std::string_view name = {}) const;
  void delete_relation(RelationId r);

  // -- statistics / debugging -------------------------------------------------
  [[nodiscard]] std::size_t entity_count() const noexcept;  ///< living only
  [[nodiscard]] std::size_t relation_count() const noexcept;
  /// Indented tree dump of the subtree under `e` (for tests and debugging).
  [[nodiscard]] std::string dump(EntityId e = kRoot) const;

 private:
  struct Entity {
    std::string name;
    EntityId parent{0};
    bool alive = true;
    std::string value;
    std::map<std::string, EntityId, std::less<>> children;
    std::vector<EntityId> types;
    std::vector<RelationId> out;
    std::vector<RelationId> in;
  };
  struct Relation {
    std::string name;
    EntityId src{0};
    EntityId trg{0};
    bool alive = true;
  };

  [[nodiscard]] const Entity& entity_ref(EntityId e) const;
  [[nodiscard]] Entity& entity_ref(EntityId e);
  [[nodiscard]] const Relation& relation_ref(RelationId r) const;
  void dump_rec(EntityId e, std::size_t depth, std::string& out) const;

  std::vector<Entity> entities_;
  std::vector<Relation> relations_;
  std::size_t live_entities_ = 0;
  std::size_t live_relations_ = 0;
};

}  // namespace upsim::vpm
