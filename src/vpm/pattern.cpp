#include "vpm/pattern.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace upsim::vpm {

Pattern::Pattern(std::string name) : name_(std::move(name)) {}

std::size_t Pattern::var_index(std::string_view var) {
  const auto it = var_by_name_.find(var);
  if (it != var_by_name_.end()) return it->second;
  const std::size_t idx = variables_.size();
  variables_.emplace_back(var);
  var_by_name_.emplace(std::string(var), idx);
  return idx;
}

Pattern& Pattern::entity(std::string_view var) {
  var_index(var);
  return *this;
}

Pattern& Pattern::type_of(std::string_view var, std::string type_fqn) {
  types_.push_back(TypeConstraint{var_index(var), std::move(type_fqn)});
  return *this;
}

Pattern& Pattern::below(std::string_view var, std::string container_fqn) {
  belows_.push_back(BelowConstraint{var_index(var), std::move(container_fqn)});
  return *this;
}

Pattern& Pattern::named(std::string_view var, std::string local_name) {
  names_.push_back(NameConstraint{var_index(var), std::move(local_name)});
  return *this;
}

Pattern& Pattern::value_is(std::string_view var, std::string value) {
  values_.push_back(ValueConstraint{var_index(var), std::move(value)});
  return *this;
}

Pattern& Pattern::related(std::string_view src, std::string relation_name,
                          std::string_view trg) {
  relations_.push_back(RelationConstraint{var_index(src),
                                          std::move(relation_name),
                                          var_index(trg)});
  return *this;
}

Pattern& Pattern::not_equal(std::string_view a, std::string_view b) {
  not_equals_.push_back(NotEqualConstraint{var_index(a), var_index(b)});
  return *this;
}

namespace {

/// Collects the containment subtree below `container`.
std::vector<EntityId> subtree_of(const ModelSpace& space, EntityId container) {
  std::vector<EntityId> out;
  std::deque<EntityId> queue{container};
  while (!queue.empty()) {
    const EntityId e = queue.front();
    queue.pop_front();
    for (const EntityId c : space.children(e)) {
      out.push_back(c);
      queue.push_back(c);
    }
  }
  return out;
}

}  // namespace

void Pattern::enumerate(
    const ModelSpace& space,
    const std::function<bool(const std::vector<EntityId>&)>& on_match) const {
  const std::size_t n = variables_.size();
  if (n == 0) return;

  // Per-variable candidate sets from the most selective generator available:
  // named-below > type > below > full scan over the root subtree.
  std::vector<std::vector<EntityId>> candidates(n);
  std::vector<bool> have(n, false);

  auto intersect_in = [&](std::size_t var, std::vector<EntityId> set) {
    std::sort(set.begin(), set.end(),
              [](EntityId a, EntityId b) { return index(a) < index(b); });
    if (!have[var]) {
      candidates[var] = std::move(set);
      have[var] = true;
      return;
    }
    std::vector<EntityId> merged;
    std::set_intersection(
        candidates[var].begin(), candidates[var].end(), set.begin(), set.end(),
        std::back_inserter(merged),
        [](EntityId a, EntityId b) { return index(a) < index(b); });
    candidates[var] = std::move(merged);
  };

  for (const TypeConstraint& c : types_) {
    const auto type = space.find(c.type_fqn);
    if (!type) return;  // no such type -> pattern cannot match
    intersect_in(c.var, space.instances_of(*type));
  }
  for (const BelowConstraint& c : belows_) {
    const auto container = space.find(c.container_fqn);
    if (!container) return;
    intersect_in(c.var, subtree_of(space, *container));
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!have[v]) intersect_in(v, subtree_of(space, kRoot));
  }

  // Name and value filters are cheap; prune candidate sets up front.
  for (const NameConstraint& c : names_) {
    auto& set = candidates[c.var];
    std::erase_if(set, [&](EntityId e) { return space.name(e) != c.local_name; });
  }
  for (const ValueConstraint& c : values_) {
    auto& set = candidates[c.var];
    std::erase_if(set, [&](EntityId e) { return space.value(e) != c.value; });
  }

  // Backtracking over variables in declaration order.
  std::vector<EntityId> binding(n, kRoot);
  std::vector<bool> bound(n, false);

  auto consistent = [&](std::size_t just_bound) {
    for (const RelationConstraint& c : relations_) {
      if (c.src != just_bound && c.trg != just_bound) continue;
      if (!bound[c.src] || !bound[c.trg]) continue;
      bool found = false;
      for (const RelationId r :
           space.relations_from(binding[c.src], c.relation_name)) {
        if (space.target(r) == binding[c.trg]) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    for (const NotEqualConstraint& c : not_equals_) {
      if (bound[c.a] && bound[c.b] && binding[c.a] == binding[c.b]) {
        return false;
      }
    }
    return true;
  };

  // Returns false to abort the whole enumeration (used by match_one).
  std::function<bool(std::size_t)> recurse = [&](std::size_t var) -> bool {
    if (var == n) return on_match(binding);
    for (const EntityId e : candidates[var]) {
      binding[var] = e;
      bound[var] = true;
      if (consistent(var) && !recurse(var + 1)) return false;
      bound[var] = false;
    }
    return true;
  };
  recurse(0);
}

std::vector<Binding> Pattern::match(const ModelSpace& space) const {
  std::vector<Binding> out;
  enumerate(space, [&](const std::vector<EntityId>& binding) {
    Binding b;
    for (std::size_t v = 0; v < variables_.size(); ++v) {
      b.emplace(variables_[v], binding[v]);
    }
    out.push_back(std::move(b));
    return true;
  });
  return out;
}

std::optional<Binding> Pattern::match_one(const ModelSpace& space) const {
  std::optional<Binding> result;
  enumerate(space, [&](const std::vector<EntityId>& binding) {
    Binding b;
    for (std::size_t v = 0; v < variables_.size(); ++v) {
      b.emplace(variables_[v], binding[v]);
    }
    result = std::move(b);
    return false;  // stop after the first match
  });
  return result;
}

std::size_t Pattern::count(const ModelSpace& space) const {
  std::size_t n = 0;
  enumerate(space, [&](const std::vector<EntityId>&) {
    ++n;
    return true;
  });
  return n;
}

}  // namespace upsim::vpm
