#include "vpm/vtcl.hpp"

#include <cctype>
#include <set>

#include "util/error.hpp"

namespace upsim::vpm {
namespace {

enum class TokenKind { Ident, Quoted, LParen, RParen, LBrace, RBrace,
                       Comma, Semicolon, Equals, End };

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line;
  std::size_t column;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) { advance(); }

  [[nodiscard]] const Token& current() const noexcept { return token_; }

  void advance() {
    skip_trivia();
    token_.line = line_;
    token_.column = column_;
    if (pos_ >= source_.size()) {
      token_ = Token{TokenKind::End, "", line_, column_};
      return;
    }
    const char c = source_[pos_];
    switch (c) {
      case '(': token_ = make(TokenKind::LParen, "("); return;
      case ')': token_ = make(TokenKind::RParen, ")"); return;
      case '{': token_ = make(TokenKind::LBrace, "{"); return;
      case '}': token_ = make(TokenKind::RBrace, "}"); return;
      case ',': token_ = make(TokenKind::Comma, ","); return;
      case ';': token_ = make(TokenKind::Semicolon, ";"); return;
      case '=': token_ = make(TokenKind::Equals, "="); return;
      case '\'':
      case '"': token_ = quoted(c); return;
      default: break;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::string text;
      while (pos_ < source_.size()) {
        const char d = source_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) == 0 && d != '_' &&
            d != '.' && d != '-') {
          break;
        }
        text += consume();
      }
      token_ = Token{TokenKind::Ident, std::move(text), token_.line,
                     token_.column};
      return;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("VTCL: " + what, token_.line, token_.column);
  }

 private:
  char consume() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Token make(TokenKind kind, std::string text) {
    const Token t{kind, std::move(text), line_, column_};
    consume();
    return t;
  }

  Token quoted(char quote) {
    const std::size_t line = line_;
    const std::size_t column = column_;
    consume();  // opening quote
    std::string text;
    while (pos_ < source_.size() && source_[pos_] != quote) {
      text += consume();
    }
    if (pos_ >= source_.size()) {
      token_.line = line;
      token_.column = column;
      fail("unterminated quoted reference");
    }
    consume();  // closing quote
    return Token{TokenKind::Quoted, std::move(text), line, column};
  }

  void skip_trivia() {
    for (;;) {
      while (pos_ < source_.size() &&
             std::isspace(static_cast<unsigned char>(source_[pos_])) != 0) {
        consume();
      }
      if (pos_ + 1 < source_.size() && source_[pos_] == '/' &&
          source_[pos_ + 1] == '/') {
        while (pos_ < source_.size() && source_[pos_] != '\n') consume();
        continue;
      }
      return;
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
  Token token_{TokenKind::End, "", 1, 1};
};

class Parser {
 public:
  explicit Parser(std::string_view source) : lexer_(source) {}

  [[nodiscard]] bool at_end() const noexcept {
    return lexer_.current().kind == TokenKind::End;
  }

  Pattern parse_one() {
    expect_keyword("pattern");
    const std::string name = expect(TokenKind::Ident, "pattern name");
    Pattern pattern(name);
    // Parameters.
    std::set<std::string> params;
    expect(TokenKind::LParen, "'('");
    if (lexer_.current().kind != TokenKind::RParen) {
      for (;;) {
        const std::string param = expect(TokenKind::Ident, "parameter name");
        if (!params.insert(param).second) {
          throw ModelError("VTCL pattern '" + name + "': duplicate parameter '" +
                           param + "'");
        }
        pattern.entity(param);
        if (lexer_.current().kind != TokenKind::Comma) break;
        lexer_.advance();
      }
    }
    expect(TokenKind::RParen, "')'");
    expect(TokenKind::Equals, "'='");
    expect(TokenKind::LBrace, "'{'");

    std::set<std::string> constrained;
    while (lexer_.current().kind != TokenKind::RBrace) {
      parse_constraint(pattern, name, params, constrained);
    }
    expect(TokenKind::RBrace, "'}'");

    for (const std::string& param : params) {
      if (!constrained.contains(param)) {
        throw ModelError("VTCL pattern '" + name + "': parameter '" + param +
                         "' is never constrained (add at least entity(" +
                         param + "))");
      }
    }
    return pattern;
  }

 private:
  void parse_constraint(Pattern& pattern, const std::string& pattern_name,
                        const std::set<std::string>& params,
                        std::set<std::string>& constrained) {
    const std::string kind = expect(TokenKind::Ident, "constraint name");
    auto var = [&](const std::string& v) {
      if (!params.contains(v)) {
        throw ModelError("VTCL pattern '" + pattern_name +
                         "': undeclared variable '" + v + "'");
      }
      constrained.insert(v);
      return v;
    };
    expect(TokenKind::LParen, "'('");
    if (kind == "entity") {
      const std::string v = var(expect_ref("variable"));
      pattern.entity(v);
    } else if (kind == "type" || kind == "below" || kind == "name" ||
               kind == "value") {
      const std::string v = var(expect_ref("variable"));
      expect(TokenKind::Comma, "','");
      const std::string ref = expect_ref("reference");
      if (kind == "type") {
        pattern.type_of(v, ref);
      } else if (kind == "below") {
        pattern.below(v, ref);
      } else if (kind == "name") {
        pattern.named(v, ref);
      } else {
        pattern.value_is(v, ref);
      }
    } else if (kind == "relation") {
      const std::string src = var(expect_ref("source variable"));
      expect(TokenKind::Comma, "','");
      const std::string relation = expect_ref("relation name");
      expect(TokenKind::Comma, "','");
      const std::string trg = var(expect_ref("target variable"));
      pattern.related(src, relation, trg);
    } else if (kind == "neq") {
      const std::string a = var(expect_ref("variable"));
      expect(TokenKind::Comma, "','");
      const std::string b = var(expect_ref("variable"));
      pattern.not_equal(a, b);
    } else {
      lexer_.fail("unknown constraint '" + kind + "'");
    }
    expect(TokenKind::RParen, "')'");
    expect(TokenKind::Semicolon, "';'");
  }

  std::string expect(TokenKind kind, const char* what) {
    if (lexer_.current().kind != kind) {
      lexer_.fail(std::string("expected ") + what + ", got '" +
                  lexer_.current().text + "'");
    }
    std::string text = lexer_.current().text;
    lexer_.advance();
    return text;
  }

  /// An identifier or a quoted string.
  std::string expect_ref(const char* what) {
    const TokenKind kind = lexer_.current().kind;
    if (kind != TokenKind::Ident && kind != TokenKind::Quoted) {
      lexer_.fail(std::string("expected ") + what + ", got '" +
                  lexer_.current().text + "'");
    }
    std::string text = lexer_.current().text;
    lexer_.advance();
    return text;
  }

  void expect_keyword(const char* keyword) {
    if (lexer_.current().kind != TokenKind::Ident ||
        lexer_.current().text != keyword) {
      lexer_.fail(std::string("expected keyword '") + keyword + "'");
    }
    lexer_.advance();
  }

  Lexer lexer_;
};

}  // namespace

Pattern parse_pattern(std::string_view source) {
  Parser parser(source);
  Pattern pattern = parser.parse_one();
  if (!parser.at_end()) {
    throw ParseError("VTCL: trailing content after pattern definition");
  }
  return pattern;
}

std::vector<Pattern> parse_patterns(std::string_view source) {
  Parser parser(source);
  std::vector<Pattern> out;
  std::set<std::string> names;
  while (!parser.at_end()) {
    out.push_back(parser.parse_one());
    if (!names.insert(out.back().name()).second) {
      throw ModelError("VTCL: duplicate pattern name '" + out.back().name() +
                       "'");
    }
  }
  return out;
}

}  // namespace upsim::vpm
