// Declarative graph patterns over the VPM model space — a small analogue of
// the VIATRA2 textual command language (VTCL) the paper uses for model
// queries and the path-discovery step (Sec. V-C/V-D).
//
// A pattern declares variables and constraints; match() enumerates every
// assignment of living entities to variables that satisfies all constraints.
// Supported constraint forms:
//   entity(v)                      — v may be any entity (generator of last
//                                    resort; prefer a more selective one)
//   type_of(v, "mm.device")        — v is declared instanceOf that entity
//   below(v, "models.network")     — v is in the containment subtree
//   named(v, "t1")                 — v's local name equals
//   value_is(v, "42")              — v's value slot equals
//   related(a, "link", b)          — a relation named "link" runs a -> b
//   not_equal(a, b)                — injectivity between two variables
//
// Matching is backtracking search with candidate generation from the most
// selective available constraint per variable.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "vpm/model_space.hpp"

namespace upsim::vpm {

/// One match: variable name -> bound entity.
using Binding = std::map<std::string, EntityId>;

class Pattern {
 public:
  explicit Pattern(std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Declares a variable (implicitly declared by the constraint helpers as
  /// well; explicit declaration fixes the search order).
  Pattern& entity(std::string_view var);
  Pattern& type_of(std::string_view var, std::string type_fqn);
  Pattern& below(std::string_view var, std::string container_fqn);
  Pattern& named(std::string_view var, std::string local_name);
  Pattern& value_is(std::string_view var, std::string value);
  Pattern& related(std::string_view src, std::string relation_name,
                   std::string_view trg);
  Pattern& not_equal(std::string_view a, std::string_view b);

  [[nodiscard]] const std::vector<std::string>& variables() const noexcept {
    return variables_;
  }

  /// Enumerates all matches.  Deterministic order (entity-id lexicographic
  /// over the variable declaration order).
  [[nodiscard]] std::vector<Binding> match(const ModelSpace& space) const;

  /// First match, if any.
  [[nodiscard]] std::optional<Binding> match_one(const ModelSpace& space) const;

  /// Number of matches without materialising them beyond counting.
  [[nodiscard]] std::size_t count(const ModelSpace& space) const;

 private:
  struct TypeConstraint { std::size_t var; std::string type_fqn; };
  struct BelowConstraint { std::size_t var; std::string container_fqn; };
  struct NameConstraint { std::size_t var; std::string local_name; };
  struct ValueConstraint { std::size_t var; std::string value; };
  struct RelationConstraint {
    std::size_t src;
    std::string relation_name;
    std::size_t trg;
  };
  struct NotEqualConstraint { std::size_t a; std::size_t b; };

  std::size_t var_index(std::string_view var);
  void enumerate(const ModelSpace& space,
                 const std::function<bool(const std::vector<EntityId>&)>&
                     on_match) const;

  std::string name_;
  std::vector<std::string> variables_;
  std::map<std::string, std::size_t, std::less<>> var_by_name_;
  std::vector<TypeConstraint> types_;
  std::vector<BelowConstraint> belows_;
  std::vector<NameConstraint> names_;
  std::vector<ValueConstraint> values_;
  std::vector<RelationConstraint> relations_;
  std::vector<NotEqualConstraint> not_equals_;
};

}  // namespace upsim::vpm
