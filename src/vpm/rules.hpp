// Graph-transformation rules over the model space — the "machine" half of
// VIATRA2 (Sec. V-C: "a transformation language based on graph theory
// techniques and abstract state machines").  A rule pairs a declarative
// pattern with an imperative action; the engine offers the two classical
// execution modes:
//
//   for_each_match — one pass: enumerate all matches first, then apply the
//     action to each binding (so mutations cannot skew the iteration);
//   run_to_fixpoint — rounds of all rules until a full round changes
//     nothing, with an iteration guard against non-terminating rule sets.
//
// Actions return whether they modified the space; a binding whose entities
// were deleted by an earlier action in the same pass is skipped.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "vpm/pattern.hpp"

namespace upsim::vpm {

/// Action invoked per match; returns true if it changed the model space.
using RuleAction = std::function<bool(ModelSpace&, const Binding&)>;

struct Rule {
  Pattern pattern;
  RuleAction action;
};

/// Matches `pattern` once, then applies `action` to every binding whose
/// entities are all still alive at application time.  Returns the number
/// of applications that reported a change.
std::size_t for_each_match(ModelSpace& space, const Pattern& pattern,
                           const RuleAction& action);

struct FixpointResult {
  std::size_t rounds = 0;
  std::size_t applications = 0;  ///< changing applications across all rounds
  bool converged = false;        ///< false when max_rounds cut the run
};

/// Runs the rules in order, round after round, until a full round makes no
/// change or `max_rounds` is reached.
FixpointResult run_to_fixpoint(ModelSpace& space,
                               const std::vector<Rule>& rules,
                               std::size_t max_rounds = 1000);

}  // namespace upsim::vpm
