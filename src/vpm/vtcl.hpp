// A small textual pattern language in the spirit of the VIATRA2 textual
// command language (VTCL), which the paper uses for declarative model
// queries and the path-discovery machinery (Sec. V-C/V-D).
//
// Grammar (comments run from '//' to end of line):
//
//   pattern      := "pattern" IDENT "(" [ IDENT { "," IDENT } ] ")"
//                   "=" "{" { constraint ";" } "}"
//   constraint   := "entity"   "(" VAR ")"
//                 | "type"     "(" VAR "," REF ")"
//                 | "below"    "(" VAR "," REF ")"
//                 | "name"     "(" VAR "," REF ")"
//                 | "value"    "(" VAR "," REF ")"
//                 | "relation" "(" VAR "," IDENT "," VAR ")"
//                 | "neq"      "(" VAR "," VAR ")"
//   REF          := IDENT-with-dots  |  'single quoted'  |  "double quoted"
//
// Every parameter must be constrained by at least one constraint, and every
// variable used in a constraint must be a declared parameter — both are
// diagnosed with line/column information, as are all syntax errors.
//
// Example:
//
//   pattern printer_uplinks(printer, sw) = {
//     type(printer, models.usi_classes.classes.Printer);
//     type(sw, models.usi_classes.classes.HP2650);
//     relation(printer, link, sw);
//   }
#pragma once

#include <string_view>
#include <vector>

#include "vpm/pattern.hpp"

namespace upsim::vpm {

/// Parses exactly one pattern definition.  Throws upsim::ParseError on
/// syntax errors and upsim::ModelError on semantic ones (unknown variable,
/// unconstrained parameter, duplicate parameter).
[[nodiscard]] Pattern parse_pattern(std::string_view source);

/// Parses a whole "machine": zero or more pattern definitions.  Pattern
/// names must be unique within one source.
[[nodiscard]] std::vector<Pattern> parse_patterns(std::string_view source);

}  // namespace upsim::vpm
