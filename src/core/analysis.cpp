#include "core/analysis.hpp"

#include "core/rbd_builder.hpp"
#include "depend/availability.hpp"
#include "depend/reduction.hpp"
#include "util/error.hpp"

namespace upsim::core {

double component_availability(const graph::AttributeMap& attrs, bool linear) {
  const auto mtbf = attrs.find("mtbf");
  const auto mttr = attrs.find("mttr");
  if (mtbf == attrs.end() || mttr == attrs.end()) {
    throw NotFoundError("component lacks mtbf/mttr attributes");
  }
  double a = linear ? depend::availability_linear(mtbf->second, mttr->second)
                    : depend::availability_exact(mtbf->second, mttr->second);
  const auto redundant = attrs.find("redundant");
  if (redundant != attrs.end()) {
    a = depend::availability_redundant(a, static_cast<int>(redundant->second));
  }
  return a;
}

AvailabilityReport analyze_availability(const UpsimResult& result,
                                        const AnalysisOptions& options) {
  const graph::Graph& g = result.upsim_graph;
  const auto terminal_pairs = result.terminal_pairs();

  const auto problem =
      depend::ReliabilityProblem::from_attributes(g, terminal_pairs, false);
  const auto problem_linear =
      depend::ReliabilityProblem::from_attributes(g, terminal_pairs, true);

  const auto evaluate = [&](const depend::ReliabilityProblem& p) {
    return options.use_reduction
               ? depend::exact_availability_reduced(p, options.exact)
               : depend::exact_availability(p, options.exact);
  };

  AvailabilityReport report;
  report.exact = evaluate(problem);
  report.exact_linear = evaluate(problem_linear);

  report.per_pair_exact.reserve(terminal_pairs.size());
  double rbd_product = 1.0;
  double independent_product = 1.0;
  for (std::size_t i = 0; i < terminal_pairs.size(); ++i) {
    depend::ReliabilityProblem single = problem;
    single.terminal_pairs = {terminal_pairs[i]};
    report.per_pair_exact.push_back(evaluate(single));
    independent_product *= report.per_pair_exact.back();
    rbd_product *= build_pair_models(result, i).rbd->availability();
  }
  report.independent_pairs = independent_product;
  report.rbd = rbd_product;

  if (options.monte_carlo_samples > 0) {
    report.monte_carlo = depend::monte_carlo_availability(
        problem, options.monte_carlo_samples, options.monte_carlo_seed,
        options.pool);
  }
  return report;
}

}  // namespace upsim::core
