// Structural comparison of object models — "what changed in my perceived
// infrastructure" after a mapping/topology/migration event (the dynamicity
// scenarios of Sec. V-A3 all end with exactly this question).
#pragma once

#include <string>
#include <vector>

#include "uml/object_model.hpp"

namespace upsim::core {

struct ModelDiff {
  std::vector<std::string> added_instances;    ///< sorted
  std::vector<std::string> removed_instances;  ///< sorted
  std::vector<std::string> added_links;        ///< "a--b" endpoint form, sorted
  std::vector<std::string> removed_links;
  /// Instances present in both but with a different classifier.
  std::vector<std::string> retyped_instances;

  [[nodiscard]] bool empty() const noexcept {
    return added_instances.empty() && removed_instances.empty() &&
           added_links.empty() && removed_links.empty() &&
           retyped_instances.empty();
  }
  /// "+a +b -c" style one-line summary for logs and reports.
  [[nodiscard]] std::string summary() const;
};

/// Diffs `after` against `before`.  Links are compared by unordered
/// endpoint pair (the link's own name is an artefact of generation order).
[[nodiscard]] ModelDiff diff_models(const uml::ObjectModel& before,
                                    const uml::ObjectModel& after);

}  // namespace upsim::core
