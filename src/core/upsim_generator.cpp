#include "core/upsim_generator.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "transform/mapping_importer.hpp"
#include "transform/space_discovery.hpp"
#include "transform/uml_importer.hpp"
#include "transform/upsim_emitter.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace upsim::core {

const std::vector<std::vector<std::string>>& UpsimResult::path_names(
    std::size_t i) const {
  if (i >= named_paths.size()) {
    throw NotFoundError("UpsimResult: pair index out of range");
  }
  return named_paths[i];
}

std::size_t UpsimResult::total_paths() const noexcept {
  std::size_t n = 0;
  for (const auto& set : path_sets) n += set.paths.size();
  return n;
}

std::vector<std::pair<graph::VertexId, graph::VertexId>>
UpsimResult::terminal_pairs() const {
  std::vector<std::pair<graph::VertexId, graph::VertexId>> out;
  out.reserve(pairs.size());
  for (const auto& pair : pairs) {
    out.emplace_back(upsim_graph.vertex_by_name(pair.requester),
                     upsim_graph.vertex_by_name(pair.provider));
  }
  return out;
}

UpsimGenerator::UpsimGenerator(const uml::ObjectModel& infrastructure,
                               GeneratorOptions options)
    : infrastructure_(&infrastructure), options_(options) {
  const auto problems = infrastructure.validate();
  if (!problems.empty()) {
    throw ModelError("UpsimGenerator: invalid infrastructure: " +
                     util::join(problems, "; "));
  }
  // Step 5: native import of class + object models.
  {
    obs::ScopedSpan span("pipeline.step5_import_models", "pipeline");
    transform::import_class_model(space_, infrastructure.class_model());
    transform::import_object_model(space_, infrastructure);
  }
  {
    obs::ScopedSpan span("pipeline.step5_project", "pipeline");
    graph_ = transform::project_from_space(space_, infrastructure,
                                           options_.projection);
  }
}

UpsimResult UpsimGenerator::generate(const service::CompositeService& composite,
                                     const mapping::ServiceMapping& mapping,
                                     std::string upsim_name) {
  const auto problems = mapping.validate(*infrastructure_, &composite);
  if (!problems.empty()) {
    throw ModelError("UpsimGenerator: invalid mapping for '" +
                     composite.name() + "': " + util::join(problems, "; "));
  }

  obs::ScopedSpan generate_span("pipeline.generate", "pipeline");
  util::Stopwatch watch;
  StepTimings timings;

  // Step 6: custom mapping import (replacing any previous run of this name).
  {
    obs::ScopedSpan span("pipeline.step6_import_mapping", "pipeline");
    transform::remove_mapping(space_, upsim_name);
    transform::clear_paths(space_, upsim_name);
    transform::import_mapping(space_, upsim_name, mapping, *infrastructure_);
  }
  timings.import_mapping_ms = watch.lap_millis();

  // Step 7: path discovery per pair, stored in the model space.
  const std::vector<mapping::ServiceMappingPair> pairs =
      mapping.pairs_for(composite);
  std::vector<pathdisc::PathSet> raw_sets;
  {
    obs::ScopedSpan span("pipeline.step7_discovery", "pipeline");
    std::vector<std::pair<graph::VertexId, graph::VertexId>> endpoint_ids;
    endpoint_ids.reserve(pairs.size());
    for (const auto& pair : pairs) {
      endpoint_ids.emplace_back(graph_.vertex_by_name(pair.requester),
                                graph_.vertex_by_name(pair.provider));
    }
    if (options_.engine == DiscoveryEngine::GraphProjection) {
      raw_sets = pathdisc::discover_all(graph_, endpoint_ids,
                                        options_.discovery, options_.pool);
    } else {
      // The paper's design point: walk the "link" relations of the model
      // space itself, then translate the name sequences back to graph ids
      // so the rest of the pipeline is engine-agnostic.
      const std::string instances_ns =
          "models." + infrastructure_->name() + ".instances";
      raw_sets.resize(pairs.size());
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto in_space = transform::discover_in_space(
            space_, instances_ns, pairs[i].requester, pairs[i].provider);
        raw_sets[i].source = endpoint_ids[i].first;
        raw_sets[i].target = endpoint_ids[i].second;
        raw_sets[i].nodes_expanded = in_space.nodes_expanded;
        raw_sets[i].paths.reserve(in_space.paths.size());
        for (const auto& names : in_space.paths) {
          pathdisc::Path path;
          path.reserve(names.size());
          for (const std::string& name : names) {
            path.push_back(graph_.vertex_by_name(name));
          }
          raw_sets[i].paths.push_back(std::move(path));
        }
        // The graph engine records these inside pathdisc::discover; keep
        // the model-space engine's metrics shape identical.
        if (obs::enabled()) {
          auto& registry = obs::Registry::global();
          registry.counter("pathdisc.pairs").add(1);
          registry.counter("pathdisc.vertices_visited")
              .add(raw_sets[i].nodes_expanded);
          registry.counter("pathdisc.paths_found").add(raw_sets[i].count());
          (void)registry.counter("pathdisc.truncations");
          registry.histogram("pathdisc.paths_per_pair")
              .record(static_cast<double>(raw_sets[i].count()));
          registry.histogram("pathdisc.vertices_per_pair")
              .record(static_cast<double>(raw_sets[i].nodes_expanded));
        }
      }
    }
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (raw_sets[i].empty()) {
        throw ModelError("UpsimGenerator: no path between requester '" +
                         pairs[i].requester + "' and provider '" +
                         pairs[i].provider + "' of atomic service '" +
                         pairs[i].atomic_service + "'");
      }
      transform::store_paths(space_, upsim_name,
                             "pair" + std::to_string(i) + "_" +
                                 pairs[i].atomic_service,
                             graph_, raw_sets[i], *infrastructure_);
    }
  }
  timings.discovery_ms = watch.lap_millis();

  // Step 8: merge stored paths and emit the UPSIM object diagram.
  auto [upsim, upsim_graph] = [&] {
    obs::ScopedSpan span("pipeline.step8_merge_emit", "pipeline");
    const auto stored = transform::load_paths(space_, upsim_name);
    const auto kept = transform::merge_instances(stored);
    uml::ObjectModel emitted =
        transform::emit_upsim(*infrastructure_, upsim_name, kept);
    graph::Graph projected = transform::project(emitted, options_.projection);
    return std::pair{std::move(emitted), std::move(projected)};
  }();
  timings.merge_emit_ms = watch.lap_millis();

  UpsimResult result{std::move(upsim), std::move(upsim_graph), pairs,
                     std::move(raw_sets), {}, timings};
  result.named_paths.reserve(result.path_sets.size());
  for (const auto& set : result.path_sets) {
    std::vector<std::vector<std::string>> names;
    names.reserve(set.paths.size());
    for (const auto& path : set.paths) {
      names.push_back(pathdisc::path_names(graph_, path));
    }
    result.named_paths.push_back(std::move(names));
  }
  return result;
}

std::vector<UpsimResult> UpsimGenerator::generate_batch(
    const service::CompositeService& composite,
    const std::vector<mapping::ServiceMapping>& mappings,
    std::string_view name_prefix) {
  std::vector<UpsimResult> out;
  out.reserve(mappings.size());
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    out.push_back(generate(composite, mappings[i],
                           std::string(name_prefix) + std::to_string(i)));
  }
  return out;
}

}  // namespace upsim::core
