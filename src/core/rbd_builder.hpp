// The UPSIM -> RBD / fault-tree transformation of the paper's companion
// work [20] ("Model-driven evaluation of user-perceived service
// availability"), as a public API: for one atomic service's pair, each
// discovered path becomes a series arrangement of its devices and links,
// the redundant paths go in parallel, and the dual fault tree is AND over
// paths of OR over path components.
#pragma once

#include <string>
#include <vector>

#include "core/upsim_generator.hpp"
#include "depend/fault_tree.hpp"
#include "depend/rbd.hpp"

namespace upsim::core {

/// Both dependability views of one pair, plus the block inventory.
struct PairDependabilityModels {
  depend::BlockPtr rbd;             ///< parallel-of-series availability view
  depend::FaultTreePtr fault_tree;  ///< AND-of-OR failure view
  /// Component names per path (vertices and the chosen edge per hop), the
  /// block inventory of both models.
  std::vector<std::vector<std::string>> component_paths;
};

/// Builds both models for the pair at `pair_index` of `result` (the order
/// of UpsimResult::pairs).  Paths are re-discovered on the UPSIM graph so
/// every edge block is identified exactly; parallel links collapse to the
/// most available representative.  Throws NotFoundError on a bad index.
[[nodiscard]] PairDependabilityModels build_pair_models(
    const UpsimResult& result, std::size_t pair_index);

}  // namespace upsim::core
