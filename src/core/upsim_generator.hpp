// The UPSIM generation methodology (Sec. V-B, Fig. 4) — the paper's core
// contribution, end to end:
//
//   Step 1-3 (manual in the paper): the caller supplies the class model,
//            the infrastructure object diagram and the composite service.
//   Step 4:  the caller supplies the service mapping (XML or in-memory).
//   Step 5:  the constructor imports the UML models into the VPM model
//            space with the native importer (src/transform).
//   Step 6:  generate() imports the service mapping with the custom
//            mapping importer.
//   Step 7:  generate() discovers all paths between every pair's requester
//            and provider and stores them in the model space.
//   Step 8:  generate() merges the paths and emits the UPSIM as a fresh
//            UML object diagram whose instances keep their classifiers —
//            and therefore all dependability properties.
//
// The generator is reusable: one import of the infrastructure serves any
// number of perspectives (different mappings), which is exactly the
// dynamicity argument of Sec. V-A3 — bench_dynamicity quantifies it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mapping/mapping.hpp"
#include "pathdisc/path_discovery.hpp"
#include "service/service.hpp"
#include "transform/projection.hpp"
#include "uml/object_model.hpp"
#include "util/thread_pool.hpp"
#include "vpm/model_space.hpp"

namespace upsim::core {

/// Which engine executes Step 7.
enum class DiscoveryEngine {
  /// All-paths DFS on the graph projection (default; ~5x faster).
  GraphProjection,
  /// DFS interpreted directly over the VPM model space — the paper's
  /// VTCL design point.  Identical path lists (tested); no parallel pool
  /// or discovery limits (the faithful algorithm has neither).
  ModelSpace,
};

struct GeneratorOptions {
  pathdisc::Options discovery;
  transform::ProjectionOptions projection;
  /// Optional pool for parallel per-pair discovery (Step 7).
  util::ThreadPool* pool = nullptr;
  DiscoveryEngine engine = DiscoveryEngine::GraphProjection;
};

/// Per-step wall-clock timings of one generate() call, milliseconds.
struct StepTimings {
  double import_mapping_ms = 0.0;  ///< Step 6
  double discovery_ms = 0.0;       ///< Step 7
  double merge_emit_ms = 0.0;      ///< Step 8
  [[nodiscard]] double total_ms() const noexcept {
    return import_mapping_ms + discovery_ms + merge_emit_ms;
  }
};

/// The result of generating one user-perceived service infrastructure
/// model.
struct UpsimResult {
  /// The UPSIM object diagram (instances share the input class model).
  uml::ObjectModel upsim;
  /// Graph projection of the UPSIM (for downstream dependability analysis).
  graph::Graph upsim_graph;
  /// Pairs in composite-service execution order.
  std::vector<mapping::ServiceMappingPair> pairs;
  /// Discovered path set per pair, same order as `pairs`.  Vertex ids in
  /// these sets refer to the *infrastructure* graph owned by the generator.
  std::vector<pathdisc::PathSet> path_sets;
  /// Paths per pair as instance-name sequences (same indexing as
  /// `path_sets`); self-contained for reporting.
  std::vector<std::vector<std::vector<std::string>>> named_paths;
  StepTimings timings;

  /// Paths of pair `i` as instance-name sequences.
  [[nodiscard]] const std::vector<std::vector<std::string>>& path_names(
      std::size_t i) const;
  /// Total number of discovered paths across all pairs.
  [[nodiscard]] std::size_t total_paths() const noexcept;
  /// Terminal pairs as vertex ids of `upsim_graph` (for reliability).
  [[nodiscard]] std::vector<std::pair<graph::VertexId, graph::VertexId>>
  terminal_pairs() const;
};

class UpsimGenerator {
 public:
  /// Imports `infrastructure` (Step 5) and keeps a graph projection for
  /// path discovery.  The infrastructure, its class model and the options
  /// pool must outlive the generator.
  UpsimGenerator(const uml::ObjectModel& infrastructure,
                 GeneratorOptions options = {});

  UpsimGenerator(const UpsimGenerator&) = delete;
  UpsimGenerator& operator=(const UpsimGenerator&) = delete;

  /// Runs Steps 6-8 for one composite service and mapping.  `upsim_name`
  /// names the emitted object diagram; it doubles as the model-space run
  /// key, so repeated generation under the same name replaces the previous
  /// run's mapping and paths (the mapping-only update path).
  [[nodiscard]] UpsimResult generate(
      const service::CompositeService& composite,
      const mapping::ServiceMapping& mapping, std::string upsim_name);

  /// Generates one UPSIM per mapping (e.g. one per user position); results
  /// are in input order.  Discovery inside each run uses the configured
  /// pool; the runs themselves are sequential because they share the model
  /// space.
  [[nodiscard]] std::vector<UpsimResult> generate_batch(
      const service::CompositeService& composite,
      const std::vector<mapping::ServiceMapping>& mappings,
      std::string_view name_prefix);

  [[nodiscard]] const vpm::ModelSpace& space() const noexcept {
    return space_;
  }
  [[nodiscard]] const graph::Graph& infrastructure_graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const uml::ObjectModel& infrastructure() const noexcept {
    return *infrastructure_;
  }

 private:
  const uml::ObjectModel* infrastructure_;
  GeneratorOptions options_;
  vpm::ModelSpace space_;
  graph::Graph graph_;
};

}  // namespace upsim::core
