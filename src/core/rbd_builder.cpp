#include "core/rbd_builder.hpp"

#include <unordered_map>

#include "core/analysis.hpp"
#include "pathdisc/path_discovery.hpp"
#include "util/error.hpp"

namespace upsim::core {

PairDependabilityModels build_pair_models(const UpsimResult& result,
                                          std::size_t pair_index) {
  if (pair_index >= result.pairs.size()) {
    throw NotFoundError("build_pair_models: pair index out of range");
  }
  const graph::Graph& g = result.upsim_graph;
  const auto& pair = result.pairs[pair_index];
  const auto set = pathdisc::discover(g, pair.requester, pair.provider);
  if (set.empty()) {
    throw ModelError("build_pair_models: requester '" + pair.requester +
                     "' and provider '" + pair.provider +
                     "' are disconnected in the UPSIM");
  }

  PairDependabilityModels models;
  std::unordered_map<std::string, double> availability;
  models.component_paths.reserve(set.count());
  for (const auto& path : set.paths) {
    std::vector<std::string> blocks;
    for (std::size_t i = 0; i < path.size(); ++i) {
      const graph::Vertex& v = g.vertex(path[i]);
      blocks.push_back(v.name);
      availability.emplace(v.name, component_availability(v.attributes));
      if (i + 1 < path.size()) {
        // Parallel links collapse to the most available representative.
        const graph::Edge* best = nullptr;
        double best_a = -1.0;
        for (const graph::EdgeId e : g.incident_edges(path[i])) {
          if (g.opposite(e, path[i]) != path[i + 1]) continue;
          const double a = component_availability(g.edge(e).attributes);
          if (a > best_a) {
            best_a = a;
            best = &g.edge(e);
          }
        }
        UPSIM_ASSERT(best != nullptr);
        blocks.push_back(best->name);
        availability.emplace(best->name, best_a);
      }
    }
    models.component_paths.push_back(std::move(blocks));
  }

  const auto availability_of = [&](const std::string& name) {
    return availability.at(name);
  };
  models.rbd = depend::rbd_from_paths(models.component_paths, availability_of);
  models.fault_tree = depend::fault_tree_from_paths(
      models.component_paths,
      [&](const std::string& name) { return 1.0 - availability.at(name); });
  return models;
}

}  // namespace upsim::core
