#include "core/diff.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace upsim::core {

namespace {

std::string link_key(const uml::Link& link) {
  std::string a = link.end_a().name();
  std::string b = link.end_b().name();
  if (b < a) std::swap(a, b);
  return a + "--" + b;
}

/// Multiset of endpoint pairs (parallel links count separately).
std::map<std::string, std::size_t> link_census(const uml::ObjectModel& m) {
  std::map<std::string, std::size_t> out;
  for (const auto& link : m.links()) ++out[link_key(*link)];
  return out;
}

}  // namespace

std::string ModelDiff::summary() const {
  std::string out;
  auto append = [&](char sign, const std::vector<std::string>& items) {
    for (const std::string& item : items) {
      if (!out.empty()) out += " ";
      out += sign + item;
    }
  };
  append('+', added_instances);
  append('-', removed_instances);
  append('+', added_links);
  append('-', removed_links);
  append('~', retyped_instances);
  return out.empty() ? "(no changes)" : out;
}

ModelDiff diff_models(const uml::ObjectModel& before,
                      const uml::ObjectModel& after) {
  ModelDiff diff;
  std::set<std::string> before_names;
  for (const auto* inst : before.instances()) {
    before_names.insert(inst->name());
  }
  for (const auto* inst : after.instances()) {
    const auto* old = before.find_instance(inst->name());
    if (old == nullptr) {
      diff.added_instances.push_back(inst->name());
    } else if (old->classifier().name() != inst->classifier().name()) {
      diff.retyped_instances.push_back(inst->name());
    }
  }
  for (const std::string& name : before_names) {
    if (after.find_instance(name) == nullptr) {
      diff.removed_instances.push_back(name);
    }
  }

  const auto before_links = link_census(before);
  const auto after_links = link_census(after);
  for (const auto& [key, count] : after_links) {
    const auto it = before_links.find(key);
    const std::size_t old_count = it == before_links.end() ? 0 : it->second;
    for (std::size_t i = old_count; i < count; ++i) {
      diff.added_links.push_back(key);
    }
  }
  for (const auto& [key, count] : before_links) {
    const auto it = after_links.find(key);
    const std::size_t new_count = it == after_links.end() ? 0 : it->second;
    for (std::size_t i = new_count; i < count; ++i) {
      diff.removed_links.push_back(key);
    }
  }

  std::sort(diff.added_instances.begin(), diff.added_instances.end());
  std::sort(diff.removed_instances.begin(), diff.removed_instances.end());
  std::sort(diff.added_links.begin(), diff.added_links.end());
  std::sort(diff.removed_links.begin(), diff.removed_links.end());
  std::sort(diff.retyped_instances.begin(), diff.retyped_instances.end());
  return diff;
}

}  // namespace upsim::core
