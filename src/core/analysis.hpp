// User-perceived service dependability analysis on a generated UPSIM
// (Sec. VII of the paper and its companion transformation to RBDs [20]).
//
// Given an UpsimResult, this computes the steady-state availability of the
// composite service as perceived by the requester: the probability that,
// with every component failing independently at its MTBF/MTTR-derived
// unavailability, every atomic service's requester can still reach its
// provider.  Several estimators of different fidelity are reported side by
// side; E6 in EXPERIMENTS.md tabulates them:
//
//   exact            — factoring over the UPSIM, correlation-aware across
//                      atomic services (the reference value)
//   independent_pairs— product of per-pair exact availabilities (treats
//                      atomic services as independent; upper-bounds exact)
//   rbd              — the [20] transformation: per pair a parallel-of-
//                      series RBD over paths (blocks repeated across paths
//                      treated as independent, which over-estimates
//                      availability — redundant paths share core switches),
//                      multiplied across pairs
//   exact_linear     — exact structure but component availabilities from
//                      the paper's linearised Formula 1
//   monte_carlo      — simulation cross-check
#pragma once

#include <cstdint>

#include "core/upsim_generator.hpp"
#include "depend/reliability.hpp"

namespace upsim::core {

struct AnalysisOptions {
  /// Samples for the Monte-Carlo cross-check; 0 disables it.
  std::size_t monte_carlo_samples = 200000;
  std::uint64_t monte_carlo_seed = 42;
  util::ThreadPool* pool = nullptr;
  depend::ExactOptions exact;
  /// Run the exact computations after series-parallel reduction (same
  /// values, orders of magnitude faster on access networks; see
  /// depend/reduction.hpp).  Disable to exercise the raw engine.
  bool use_reduction = true;
};

struct AvailabilityReport {
  double exact = 0.0;
  double independent_pairs = 0.0;
  double rbd = 0.0;
  double exact_linear = 0.0;
  depend::MonteCarloResult monte_carlo;  ///< samples == 0 when disabled
  /// Exact availability of each atomic service's pair alone, in the
  /// composite's execution order.
  std::vector<double> per_pair_exact;
};

/// Runs the full analysis on `result.upsim_graph`.  Every vertex and edge
/// must carry mtbf/mttr attributes (ensured by the default projection).
[[nodiscard]] AvailabilityReport analyze_availability(
    const UpsimResult& result, const AnalysisOptions& options = {});

/// Availability of a single component from its graph attributes, exposed
/// for reports (exact formula unless `linear`).
[[nodiscard]] double component_availability(const graph::AttributeMap& attrs,
                                            bool linear = false);

}  // namespace upsim::core
