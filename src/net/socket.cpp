#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace upsim::net {

namespace {

[[nodiscard]] std::string errno_text(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

[[nodiscard]] sockaddr_in make_address(const std::string& host,
                                       std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("net: not an IPv4 address: '" + host + "'");
  }
  return addr;
}

void set_timeout(int fd, int optname, int ms, const char* what) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof tv) != 0) {
    throw NetError("net: " + errno_text(what));
  }
}

/// poll() restarted across EINTR with the remaining budget; returns the
/// revents of `fd` (0 on timeout).
[[nodiscard]] short poll_one(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return pfd.revents;
    if (rc == 0) return 0;
    if (errno != EINTR) throw NetError("net: " + errno_text("poll"));
  }
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::send_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the server
    // process with SIGPIPE.
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent > 0) {
      p += sent;
      n -= static_cast<std::size_t>(sent);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TimeoutError("net: send timed out");
    }
    throw NetError("net: " + errno_text("send"));
  }
}

std::size_t Socket::recv_some(void* buf, std::size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got >= 0) return static_cast<std::size_t>(got);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TimeoutError("net: receive timed out");
    }
    throw NetError("net: " + errno_text("recv"));
  }
}

bool Socket::recv_exact(void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const std::size_t got = recv_some(p + done, n - done);
    if (got == 0) {
      if (done == 0) return false;
      throw NetError("net: peer closed connection mid-message (" +
                     std::to_string(done) + " of " + std::to_string(n) +
                     " bytes)");
    }
    done += got;
  }
  return true;
}

void Socket::set_recv_timeout_ms(int ms) {
  set_timeout(fd_, SO_RCVTIMEO, ms, "setsockopt(SO_RCVTIMEO)");
}

void Socket::set_send_timeout_ms(int ms) {
  set_timeout(fd_, SO_SNDTIMEO, ms, "setsockopt(SO_SNDTIMEO)");
}

void Socket::set_nodelay(bool on) {
  const int flag = on ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof flag) != 0) {
    throw NetError("net: " + errno_text("setsockopt(TCP_NODELAY)"));
  }
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms) {
  const sockaddr_in addr = make_address(host, port);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw NetError("net: " + errno_text("socket"));

  // Non-blocking connect + poll bounds the handshake; the socket goes back
  // to blocking mode afterwards (per-operation timeouts take over).
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK) < 0) {
    throw NetError("net: " + errno_text("fcntl"));
  }
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      throw NetError("net: connect to " + host + ":" + std::to_string(port) +
                     " failed: " + std::strerror(errno));
    }
    const short revents =
        poll_one(sock.fd(), POLLOUT, timeout_ms <= 0 ? -1 : timeout_ms);
    if (revents == 0) {
      throw TimeoutError("net: connect to " + host + ":" +
                         std::to_string(port) + " timed out after " +
                         std::to_string(timeout_ms) + " ms");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw NetError("net: " + errno_text("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      throw NetError("net: connect to " + host + ":" + std::to_string(port) +
                     " failed: " + std::strerror(err));
    }
  }
  if (::fcntl(sock.fd(), F_SETFL, flags) < 0) {
    throw NetError("net: " + errno_text("fcntl"));
  }
  sock.set_nodelay(true);
  return sock;
}

Listener::Listener(const std::string& host, std::uint16_t port, int backlog) {
  sockaddr_in addr = make_address(host, port);
  sock_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock_.valid()) throw NetError("net: " + errno_text("socket"));
  const int one = 1;
  if (::setsockopt(sock_.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) !=
      0) {
    throw NetError("net: " + errno_text("setsockopt(SO_REUSEADDR)"));
  }
  if (::bind(sock_.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw NetError("net: bind to " + host + ":" + std::to_string(port) +
                   " failed: " + std::strerror(errno));
  }
  if (::listen(sock_.fd(), backlog) != 0) {
    throw NetError("net: " + errno_text("listen"));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(sock_.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw NetError("net: " + errno_text("getsockname"));
  }
  port_ = ntohs(bound.sin_port);
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  if (!sock_.valid()) throw NetError("net: accept on closed listener");
  const short revents = poll_one(sock_.fd(), POLLIN, timeout_ms);
  if (revents == 0) return std::nullopt;
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return std::nullopt;  // raced with a vanished client; just re-poll
    }
    throw NetError("net: " + errno_text("accept"));
  }
  Socket client(fd);
  client.set_nodelay(true);
  return client;
}

}  // namespace upsim::net
