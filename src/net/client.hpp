// Client side of the upsimd wire protocol: a blocking, connection-caching
// RPC client with connect/request timeouts and bounded retry on transient
// transport failures.
//
// Every server method is idempotent (queries recompute, invalidations
// converge), so a retry after a connection-level failure is always safe:
// the client transparently reconnects and resends when the TCP connection
// breaks before a response arrives.  A *timeout waiting for the response*
// is not retried — the request may still be executing, and hammering a
// saturated server with duplicates is how overloads become outages — it
// surfaces as TimeoutError for the caller to decide.
//
// The client owns exactly one connection and is NOT thread-safe; serving
// many threads means one Client per thread (see examples/upsim_loadgen.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/json.hpp"

namespace upsim::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Bounds the wait for a response frame (and any mid-response stall).
  int request_timeout_ms = 30000;
  int send_timeout_ms = 5000;
  /// Cap on a single response payload (0 = the protocol's u32 cap).
  std::size_t max_response_bytes = 64u << 20;
  /// Additional attempts after a transient transport failure (reconnect +
  /// resend); 0 disables retrying.
  int max_retries = 2;
  /// Flat pause between attempts, doubled per retry.
  int retry_backoff_ms = 20;
  /// Stamp every request envelope with a fresh "trace" id so the server's
  /// spans, access-log line, and trace export correlate back to this call.
  /// Off, the envelope matches pre-trace clients byte for byte and the
  /// server assigns an id of its own.
  bool send_trace = true;
  /// Route every request to this registry model ("tenant/model").  Empty
  /// omits the envelope member entirely — the request is byte-identical to
  /// a pre-registry client and the server serves its default model.
  std::string model;
};

/// One parsed server response (see src/server/protocol.hpp for the shape).
struct Response {
  int status = 0;           ///< protocol status code (200 = ok)
  std::uint64_t id = 0;     ///< echoed request id
  obs::JsonValue document;  ///< the whole response document

  [[nodiscard]] bool ok() const noexcept { return status == 200; }
  /// The "result" member; throws NotFoundError on error responses.
  [[nodiscard]] const obs::JsonValue& result() const {
    return document.at("result");
  }
  /// Error code/message of a non-ok response ("" when ok).
  [[nodiscard]] std::string error_code() const;
  [[nodiscard]] std::string error_message() const;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  /// Calls `method` with a raw JSON `params` object and parses the
  /// response.  Connects lazily; retries transient transport failures.
  /// Throws NetError/TimeoutError for transport problems and ParseError
  /// for a malformed response — protocol-level errors (status != 200) are
  /// returned, not thrown.
  [[nodiscard]] Response call(std::string_view method,
                              std::string_view params_json = "{}");

  /// Like call() but returns the raw response payload bytes untouched —
  /// the byte-for-byte differential tests compare these against in-process
  /// serialization.  `id_out` receives the request id used.
  [[nodiscard]] std::string call_raw(std::string_view method,
                                     std::string_view params_json,
                                     std::uint64_t* id_out = nullptr);

  /// Sends an arbitrary payload as one frame and returns the next response
  /// frame, no request framing, no retry — protocol tests use this to probe
  /// the server with malformed documents.
  [[nodiscard]] std::string roundtrip_raw(std::string_view payload);

  [[nodiscard]] bool connected() const noexcept { return sock_.valid(); }
  void disconnect() noexcept { sock_.close(); }

  /// Trace id stamped on the most recent call()/call_raw() (0 before the
  /// first call or with options.send_trace off) — retries reuse it, so it
  /// names the request, not the attempt.
  [[nodiscard]] std::uint64_t last_trace_id() const noexcept {
    return last_trace_id_;
  }

  /// Re-points subsequent requests at another model (loadgen rotates one
  /// client across tenants this way).  "" reverts to the default model.
  void set_model(std::string model) { options_.model = std::move(model); }
  [[nodiscard]] const std::string& model() const noexcept {
    return options_.model;
  }

 private:
  void ensure_connected();
  [[nodiscard]] std::string build_request(std::uint64_t id,
                                          std::uint64_t trace_id,
                                          std::string_view method,
                                          std::string_view params_json) const;
  /// One send/receive exchange on the current connection; throws on any
  /// transport failure after disconnecting.
  [[nodiscard]] std::string exchange(std::string_view payload);

  ClientOptions options_;
  Socket sock_;
  std::uint64_t next_id_ = 1;
  std::uint64_t last_trace_id_ = 0;
};

}  // namespace upsim::net
