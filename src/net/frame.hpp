// Message framing for the upsimd wire protocol: every message is a 4-byte
// big-endian payload length followed by that many bytes of UTF-8 JSON.
//
//   +----------------+---------------------------+
//   | length (u32 BE)| payload (length bytes)    |
//   +----------------+---------------------------+
//
// The length covers the payload only.  A reader enforces a maximum payload
// size *before* allocating — a hostile 4 GiB length prefix costs nothing —
// and distinguishes a clean end-of-stream at a frame boundary (the peer
// hung up between requests) from a mid-frame close (a truncated message).
// The framing layer knows nothing about JSON; src/server/protocol.hpp
// defines what the payloads mean.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/socket.hpp"

namespace upsim::net {

/// Frame header size on the wire.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Hard cap implied by the u32 length field.
inline constexpr std::size_t kFrameAbsoluteMax = 0xFFFFFFFFu;

/// Announced payload length exceeded the reader's limit.  The stream is not
/// resynchronizable past this (the payload was never read), so the
/// connection must be closed after reporting the error.
class FrameTooLargeError : public NetError {
 public:
  FrameTooLargeError(std::size_t announced, std::size_t limit)
      : NetError("net: frame of " + std::to_string(announced) +
                 " bytes exceeds limit of " + std::to_string(limit) +
                 " bytes"),
        announced_(announced) {}
  [[nodiscard]] std::size_t announced() const noexcept { return announced_; }

 private:
  std::size_t announced_;
};

/// Sends one frame (header + payload in a single send_all call, so small
/// messages leave in one segment).  Throws NetError/TimeoutError.
void write_frame(Socket& sock, std::string_view payload);

/// Reads one frame.  Returns nullopt on a clean end-of-stream before any
/// header byte; throws FrameTooLargeError when the announced length exceeds
/// `max_payload_bytes` (0 = only the u32 cap), NetError on a mid-frame
/// close, TimeoutError when the socket's receive timeout fires.
[[nodiscard]] std::optional<std::string> read_frame(
    Socket& sock, std::size_t max_payload_bytes);

}  // namespace upsim::net
