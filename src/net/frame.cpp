#include "net/frame.hpp"

#include <cstring>

namespace upsim::net {

void write_frame(Socket& sock, std::string_view payload) {
  if (payload.size() > kFrameAbsoluteMax) {
    throw NetError("net: payload of " + std::to_string(payload.size()) +
                   " bytes does not fit a u32 length prefix");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string wire;
  wire.reserve(kFrameHeaderBytes + payload.size());
  wire.push_back(static_cast<char>((len >> 24) & 0xFF));
  wire.push_back(static_cast<char>((len >> 16) & 0xFF));
  wire.push_back(static_cast<char>((len >> 8) & 0xFF));
  wire.push_back(static_cast<char>(len & 0xFF));
  wire.append(payload);
  sock.send_all(wire.data(), wire.size());
}

std::optional<std::string> read_frame(Socket& sock,
                                      std::size_t max_payload_bytes) {
  unsigned char header[kFrameHeaderBytes];
  if (!sock.recv_exact(header, sizeof header)) return std::nullopt;
  const std::uint32_t len = (static_cast<std::uint32_t>(header[0]) << 24) |
                            (static_cast<std::uint32_t>(header[1]) << 16) |
                            (static_cast<std::uint32_t>(header[2]) << 8) |
                            static_cast<std::uint32_t>(header[3]);
  if (max_payload_bytes != 0 && len > max_payload_bytes) {
    throw FrameTooLargeError(len, max_payload_bytes);
  }
  std::string payload(len, '\0');
  if (len != 0 && !sock.recv_exact(payload.data(), len)) {
    throw NetError("net: peer closed connection before frame payload");
  }
  return payload;
}

}  // namespace upsim::net
