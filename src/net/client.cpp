#include "net/client.hpp"

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace upsim::net {

namespace {

/// Extracts the protocol status/id from a parsed response document.
Response to_response(obs::JsonValue doc) {
  Response r;
  if (!doc.is_object() || !doc.has("status")) {
    throw ParseError("net: response document has no 'status'");
  }
  r.status = static_cast<int>(doc.at("status").number);
  if (doc.has("id")) r.id = static_cast<std::uint64_t>(doc.at("id").number);
  r.document = std::move(doc);
  return r;
}

}  // namespace

std::string Response::error_code() const {
  if (ok() || !document.has("error")) return {};
  return document.at("error").at("code").string;
}

std::string Response::error_message() const {
  if (ok() || !document.has("error")) return {};
  return document.at("error").at("message").string;
}

Client::Client(ClientOptions options) : options_(std::move(options)) {}

void Client::ensure_connected() {
  if (sock_.valid()) return;
  sock_ = connect_tcp(options_.host, options_.port,
                      options_.connect_timeout_ms);
  sock_.set_recv_timeout_ms(options_.request_timeout_ms);
  sock_.set_send_timeout_ms(options_.send_timeout_ms);
}

std::string Client::build_request(std::uint64_t id, std::uint64_t trace_id,
                                  std::string_view method,
                                  std::string_view params_json) const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id");
  w.value(id);
  w.key("method");
  w.value(method);
  w.key("params");
  w.raw_value(params_json.empty() ? "{}" : params_json);
  if (trace_id != 0) {
    w.key("trace");
    w.value(obs::format_trace_id(trace_id));
  }
  if (!options_.model.empty()) {
    w.key("model");
    w.value(options_.model);
  }
  w.end_object();
  return std::move(w).str();
}

std::string Client::exchange(std::string_view payload) {
  try {
    ensure_connected();
    write_frame(sock_, payload);
    auto frame = read_frame(sock_, options_.max_response_bytes);
    if (!frame) {
      throw NetError("net: server closed connection before responding");
    }
    return *std::move(frame);
  } catch (...) {
    // Whatever broke, the connection state is unknown — drop it so the
    // next attempt starts from a fresh connect.
    disconnect();
    throw;
  }
}

std::string Client::call_raw(std::string_view method,
                             std::string_view params_json,
                             std::uint64_t* id_out) {
  const std::uint64_t id = next_id_++;
  if (id_out != nullptr) *id_out = id;
  last_trace_id_ = options_.send_trace ? obs::generate_trace_id() : 0;
  const std::string payload =
      build_request(id, last_trace_id_, method, params_json);

  int backoff_ms = options_.retry_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    try {
      return exchange(payload);
    } catch (const TimeoutError&) {
      // The server may still be working on it; duplicating the request
      // would only deepen the overload.  Not transient by policy.
      throw;
    } catch (const NetError&) {
      if (attempt >= options_.max_retries) throw;
      if (obs::enabled()) {
        obs::Registry::global().counter("client.retries").add(1);
      }
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms *= 2;
      }
    }
  }
}

Response Client::call(std::string_view method, std::string_view params_json) {
  return to_response(obs::json_parse(call_raw(method, params_json)));
}

std::string Client::roundtrip_raw(std::string_view payload) {
  return exchange(payload);
}

}  // namespace upsim::net
