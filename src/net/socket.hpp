// POSIX TCP socket wrappers for the upsimd serving stack: an RAII `Socket`
// with send/receive timeouts, a bounded-timeout `connect_tcp`, and a
// `Listener` that binds, listens and accepts with a poll-based timeout so
// an accept loop can observe a stop flag.
//
// Scope is deliberately minimal — IPv4 over TCP on the addresses the
// serving layer needs ("127.0.0.1", "0.0.0.0", dotted quads) — because the
// wire protocol above it (net/frame.hpp) is transport-agnostic and nothing
// else in upsim talks to the network.  All failures throw NetError (or the
// TimeoutError subclass so callers can tell "slow" from "broken"), carrying
// the errno text of the failing call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace upsim::net {

/// Any socket-layer failure (connect/bind/send/receive/...).
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error(what) {}
};

/// A configured timeout elapsed before the operation completed.
class TimeoutError : public NetError {
 public:
  explicit TimeoutError(const std::string& what) : NetError(what) {}
};

/// Move-only owner of a connected TCP socket file descriptor.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (-1 = empty).
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Blocks until all `n` bytes are sent.  Throws TimeoutError when the
  /// send timeout elapses mid-write, NetError on any other failure
  /// (including the peer closing the connection).
  void send_all(const void* data, std::size_t n);

  /// Receives up to `n` bytes; returns 0 on orderly peer shutdown.  Throws
  /// TimeoutError when the receive timeout elapses with nothing read.
  [[nodiscard]] std::size_t recv_some(void* buf, std::size_t n);

  /// Receives exactly `n` bytes; returns false when the peer closed before
  /// the *first* byte (clean end-of-stream), throws NetError when it closed
  /// mid-way (a truncated message is an error, an idle close is not).
  [[nodiscard]] bool recv_exact(void* buf, std::size_t n);

  /// 0 disables the respective timeout (block forever).
  void set_recv_timeout_ms(int ms);
  void set_send_timeout_ms(int ms);
  /// Disables Nagle's algorithm — a must for small request/response frames.
  void set_nodelay(bool on);

  /// Half-closes the read side: a peer blocked sending sees EPIPE, our own
  /// pending/future receives return end-of-stream.  Used by the server to
  /// drain a connection (stop reading, finish writing) during shutdown.
  void shutdown_read() noexcept;
  /// Full shutdown (FIN both ways) without releasing the descriptor.  A
  /// handler thread ends its connection this way so another thread holding
  /// a reference may still call shutdown_* safely; the owner close()s
  /// later.
  void shutdown_both() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Connects to `host:port`, waiting at most `timeout_ms` (0 = no limit) for
/// the connection to establish.  Throws TimeoutError/NetError.
[[nodiscard]] Socket connect_tcp(const std::string& host, std::uint16_t port,
                                 int timeout_ms = 0);

/// Listening TCP socket bound to `host:port`.  Port 0 binds an ephemeral
/// port, readable back through port() — tests and the loadgen's self-hosted
/// mode depend on that.
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port, int backlog = 128);
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;
  ~Listener() = default;

  /// The actually bound port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }

  /// Waits up to `timeout_ms` for a connection; nullopt on timeout (so the
  /// caller's loop can check its stop flag).  Throws NetError once closed.
  [[nodiscard]] std::optional<Socket> accept(int timeout_ms);

  void close() noexcept { sock_.close(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace upsim::net
