#include "graph/widest_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace upsim::graph {

WidestPathResult widest_path(
    const Graph& g, VertexId source, VertexId target,
    const std::function<double(EdgeId)>& capacity,
    const std::function<bool(VertexId)>& usable_vertex,
    const std::function<bool(EdgeId)>& usable_edge) {
  (void)g.vertex(source);
  (void)g.vertex(target);
  auto vertex_ok = [&](VertexId v) {
    return usable_vertex == nullptr || usable_vertex(v);
  };
  auto edge_ok = [&](EdgeId e) {
    return usable_edge == nullptr || usable_edge(e);
  };
  auto checked = [](double c) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      throw ModelError("widest_path: capacity must be finite and "
                       "non-negative");
    }
    return c;
  };

  WidestPathResult result;
  if (!vertex_ok(source) || !vertex_ok(target)) return result;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (source == target) {
    result.path = {source};
    result.width = kInf;
    return result;
  }

  std::vector<double> width(g.vertex_count(), -1.0);
  std::vector<std::int64_t> parent_edge(g.vertex_count(), -1);
  using Item = std::pair<double, std::uint32_t>;  // (width so far, vertex)
  std::priority_queue<Item> queue;                // max-heap
  width[index(source)] = kInf;
  queue.emplace(kInf, index(source));
  while (!queue.empty()) {
    const auto [w, vi] = queue.top();
    queue.pop();
    if (w < width[vi]) continue;  // stale
    const VertexId v{vi};
    if (v == target) break;
    for (const EdgeId e : g.incident_edges(v)) {
      if (!edge_ok(e)) continue;
      const VertexId next = g.opposite(e, v);
      if (!vertex_ok(next)) continue;
      const double candidate = std::min(w, checked(capacity(e)));
      if (candidate > width[index(next)]) {
        width[index(next)] = candidate;
        parent_edge[index(next)] = static_cast<std::int64_t>(index(e));
        queue.emplace(candidate, index(next));
      }
    }
  }
  if (width[index(target)] < 0.0) return result;  // unreachable
  result.width = width[index(target)];
  VertexId cur = target;
  result.path.push_back(cur);
  while (cur != source) {
    const auto e = EdgeId{static_cast<std::uint32_t>(parent_edge[index(cur)])};
    cur = g.opposite(e, cur);
    result.path.push_back(cur);
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

}  // namespace upsim::graph
