// Weighted shortest paths on the graph substrate (Dijkstra).
//
// Used by the responsiveness analysis (Sec. VII names responsiveness as one
// of the user-perceived properties a UPSIM enables): the latency a user
// sees is the cost of the best currently-working path, so the analysis
// needs cheapest-path queries under arbitrary per-component weights.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace upsim::graph {

/// Weight callbacks; both must return non-negative finite costs.  Vertex
/// weights model per-hop processing cost and are charged for every vertex
/// on the path including the endpoints.
struct WeightFunctions {
  std::function<double(VertexId)> vertex_cost = [](VertexId) { return 0.0; };
  std::function<double(EdgeId)> edge_cost = [](EdgeId) { return 1.0; };
};

struct ShortestPathResult {
  std::vector<VertexId> path;  ///< empty when unreachable
  double cost = 0.0;           ///< total cost; meaningless when empty

  [[nodiscard]] bool reachable() const noexcept { return !path.empty(); }
};

/// Cheapest s-t path under the given weights.  `usable_vertex`/`usable_edge`
/// (optional) restrict the search to a sub-state of the graph — the
/// responsiveness analysis passes the Up/Down sample here.  Throws
/// ModelError on negative weights.
[[nodiscard]] ShortestPathResult shortest_path(
    const Graph& g, VertexId source, VertexId target,
    const WeightFunctions& weights = {},
    const std::function<bool(VertexId)>& usable_vertex = nullptr,
    const std::function<bool(EdgeId)>& usable_edge = nullptr);

/// Reads a named numeric attribute as a weight, with a default for
/// components that do not carry it.
[[nodiscard]] WeightFunctions attribute_weights(const Graph& g,
                                                const std::string& vertex_attr,
                                                double vertex_default,
                                                const std::string& edge_attr,
                                                double edge_default);

}  // namespace upsim::graph
