#include "graph/k_shortest.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace upsim::graph {

namespace {

std::vector<std::uint32_t> path_ids(const std::vector<VertexId>& path) {
  std::vector<std::uint32_t> out;
  out.reserve(path.size());
  for (const VertexId v : path) out.push_back(index(v));
  return out;
}

}  // namespace

std::vector<ShortestPathResult> k_shortest_paths(
    const Graph& g, VertexId source, VertexId target, std::size_t k,
    const WeightFunctions& weights) {
  if (k == 0) throw ModelError("k_shortest_paths: k must be >= 1");

  std::vector<ShortestPathResult> accepted;
  {
    auto first = shortest_path(g, source, target, weights);
    if (!first.reachable()) return accepted;
    accepted.push_back(std::move(first));
  }

  // Candidate pool, ordered by (cost, vertex sequence) for determinism.
  auto candidate_less = [](const ShortestPathResult& a,
                           const ShortestPathResult& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return path_ids(a.path) < path_ids(b.path);
  };
  std::vector<ShortestPathResult> candidates;
  std::set<std::vector<std::uint32_t>> seen;
  seen.insert(path_ids(accepted[0].path));

  while (accepted.size() < k) {
    const auto& previous = accepted.back().path;
    // Spur from every prefix of the last accepted path.
    for (std::size_t i = 0; i + 1 < previous.size(); ++i) {
      const VertexId spur = previous[i];
      const std::vector<VertexId> root(previous.begin(),
                                       previous.begin() +
                                           static_cast<std::ptrdiff_t>(i) + 1);

      // Edges leaving the spur node along any accepted path sharing this
      // root are banned; root-interior vertices are banned entirely.
      std::set<std::uint32_t> banned_edges;
      for (const auto& result : accepted) {
        if (result.path.size() <= i) continue;
        if (!std::equal(root.begin(), root.end(), result.path.begin())) {
          continue;
        }
        // Ban every edge from spur to the next vertex of this path
        // (parallel edges included, else Yen re-finds the same sequence).
        const VertexId next = result.path[i + 1];
        for (const EdgeId e : g.incident_edges(spur)) {
          if (g.opposite(e, spur) == next) banned_edges.insert(index(e));
        }
      }
      std::set<std::uint32_t> banned_vertices;
      for (std::size_t j = 0; j < i; ++j) {
        banned_vertices.insert(index(previous[j]));
      }

      const auto spur_result = shortest_path(
          g, spur, target, weights,
          [&](VertexId v) { return !banned_vertices.contains(index(v)); },
          [&](EdgeId e) { return !banned_edges.contains(index(e)); });
      if (!spur_result.reachable()) continue;

      // Total = root + spur path (spur vertex shared).
      ShortestPathResult total;
      total.path = root;
      total.path.insert(total.path.end(), spur_result.path.begin() + 1,
                        spur_result.path.end());
      // Cost: recompute root cost (vertex costs of root interior + edges
      // along the root) + spur cost minus the double-counted spur vertex.
      double root_cost = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        root_cost += weights.vertex_cost(previous[j]);
        // cheapest edge between consecutive root vertices
        double best = -1.0;
        for (const EdgeId e : g.incident_edges(previous[j])) {
          if (g.opposite(e, previous[j]) != previous[j + 1]) continue;
          const double c = weights.edge_cost(e);
          if (best < 0.0 || c < best) best = c;
        }
        root_cost += best;
      }
      total.cost = root_cost + spur_result.cost;
      if (!seen.insert(path_ids(total.path)).second) continue;
      candidates.push_back(std::move(total));
    }
    if (candidates.empty()) break;
    const auto best =
        std::min_element(candidates.begin(), candidates.end(), candidate_less);
    accepted.push_back(std::move(*best));
    candidates.erase(best);
  }
  return accepted;
}

}  // namespace upsim::graph
