// Yen's algorithm: the k cheapest loopless s-t paths.
//
// The all-paths enumeration of pathdisc is exhaustive by design (every
// redundant path belongs in the UPSIM); when only the best few routes
// matter — latency percentile estimates, restoration planning — Yen gives
// them without paying for the full factorial path set.
#pragma once

#include <vector>

#include "graph/shortest_path.hpp"

namespace upsim::graph {

/// The up-to-k cheapest simple paths from `source` to `target`, sorted by
/// ascending cost (ties broken deterministically by the vertex sequence).
/// Fewer than k results means the pair has fewer simple paths.  Throws
/// ModelError for k == 0 or negative weights.
[[nodiscard]] std::vector<ShortestPathResult> k_shortest_paths(
    const Graph& g, VertexId source, VertexId target, std::size_t k,
    const WeightFunctions& weights = {});

}  // namespace upsim::graph
