#include "graph/shortest_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace upsim::graph {

ShortestPathResult shortest_path(
    const Graph& g, VertexId source, VertexId target,
    const WeightFunctions& weights,
    const std::function<bool(VertexId)>& usable_vertex,
    const std::function<bool(EdgeId)>& usable_edge) {
  (void)g.vertex(source);
  (void)g.vertex(target);
  auto vertex_ok = [&](VertexId v) {
    return usable_vertex == nullptr || usable_vertex(v);
  };
  auto edge_ok = [&](EdgeId e) {
    return usable_edge == nullptr || usable_edge(e);
  };
  auto checked_cost = [](double c, const char* what) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      throw ModelError(std::string("shortest_path: ") + what +
                       " weight must be finite and non-negative");
    }
    return c;
  };

  ShortestPathResult result;
  if (!vertex_ok(source) || !vertex_ok(target)) return result;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.vertex_count(), kInf);
  std::vector<std::int64_t> parent_edge(g.vertex_count(), -1);
  using Item = std::pair<double, std::uint32_t>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;

  dist[index(source)] = checked_cost(weights.vertex_cost(source), "vertex");
  queue.emplace(dist[index(source)], index(source));
  while (!queue.empty()) {
    const auto [d, vi] = queue.top();
    queue.pop();
    if (d > dist[vi]) continue;  // stale entry
    const VertexId v{vi};
    if (v == target) break;
    for (const EdgeId e : g.incident_edges(v)) {
      if (!edge_ok(e)) continue;
      const VertexId w = g.opposite(e, v);
      if (!vertex_ok(w)) continue;
      const double candidate = d + checked_cost(weights.edge_cost(e), "edge") +
                               checked_cost(weights.vertex_cost(w), "vertex");
      if (candidate < dist[index(w)]) {
        dist[index(w)] = candidate;
        parent_edge[index(w)] = static_cast<std::int64_t>(index(e));
        queue.emplace(candidate, index(w));
      }
    }
  }

  if (dist[index(target)] == kInf) return result;  // unreachable
  result.cost = dist[index(target)];
  VertexId cur = target;
  result.path.push_back(cur);
  while (cur != source) {
    const auto e = EdgeId{static_cast<std::uint32_t>(parent_edge[index(cur)])};
    cur = g.opposite(e, cur);
    result.path.push_back(cur);
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

WeightFunctions attribute_weights(const Graph& g,
                                  const std::string& vertex_attr,
                                  double vertex_default,
                                  const std::string& edge_attr,
                                  double edge_default) {
  WeightFunctions weights;
  weights.vertex_cost = [&g, vertex_attr, vertex_default](VertexId v) {
    const auto& attrs = g.vertex(v).attributes;
    const auto it = attrs.find(vertex_attr);
    return it == attrs.end() ? vertex_default : it->second;
  };
  weights.edge_cost = [&g, edge_attr, edge_default](EdgeId e) {
    const auto& attrs = g.edge(e).attributes;
    const auto it = attrs.find(edge_attr);
    return it == attrs.end() ? edge_default : it->second;
  };
  return weights;
}

}  // namespace upsim::graph
