// Widest (maximum-bottleneck) paths: the route a capacity-aware network
// would pick, used by the performability analysis.  The width of a path is
// the minimum edge capacity along it; widest_path maximises that minimum.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace upsim::graph {

struct WidestPathResult {
  std::vector<VertexId> path;  ///< empty when unreachable
  /// Bottleneck capacity of the widest path; +infinity for the trivial
  /// source == target path, meaningless when unreachable.
  double width = 0.0;

  [[nodiscard]] bool reachable() const noexcept { return !path.empty(); }
};

/// Maximum-bottleneck s-t path (modified Dijkstra).  `capacity` must return
/// non-negative finite values; `usable_vertex`/`usable_edge` optionally
/// restrict the search to the surviving components of a failure state.
[[nodiscard]] WidestPathResult widest_path(
    const Graph& g, VertexId source, VertexId target,
    const std::function<double(EdgeId)>& capacity,
    const std::function<bool(VertexId)>& usable_vertex = nullptr,
    const std::function<bool(EdgeId)>& usable_edge = nullptr);

}  // namespace upsim::graph
