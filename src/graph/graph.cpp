#include "graph/graph.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace upsim::graph {

VertexId Graph::add_vertex(std::string name, std::string type,
                           AttributeMap attributes) {
  if (!util::is_identifier(name)) {
    throw ModelError("invalid vertex name: '" + name + "'");
  }
  if (by_name_.contains(name)) {
    throw ModelError("duplicate vertex name: '" + name + "'");
  }
  const auto id = VertexId{static_cast<std::uint32_t>(vertices_.size())};
  by_name_.emplace(name, id);
  vertices_.push_back(
      Vertex{std::move(name), std::move(type), std::move(attributes)});
  adjacency_.emplace_back();
  return id;
}

EdgeId Graph::add_edge(VertexId a, VertexId b, std::string name,
                       AttributeMap attributes) {
  if (index(a) >= vertices_.size() || index(b) >= vertices_.size()) {
    throw ModelError("add_edge: endpoint out of range");
  }
  if (a == b) {
    throw ModelError("add_edge: self-loop on vertex '" + vertices_[index(a)].name +
                     "' (a Connector must join two distinct Devices)");
  }
  if (name.empty()) {
    name = vertices_[index(a)].name + "--" + vertices_[index(b)].name + "#" +
           std::to_string(edges_.size());
  }
  if (edge_by_name_.contains(name)) {
    throw ModelError("duplicate edge name: '" + name + "'");
  }
  const auto id = EdgeId{static_cast<std::uint32_t>(edges_.size())};
  edge_by_name_.emplace(name, id);
  edges_.push_back(Edge{a, b, std::move(name), std::move(attributes)});
  adjacency_[index(a)].push_back(id);
  adjacency_[index(b)].push_back(id);
  return id;
}

EdgeId Graph::add_edge(std::string_view a, std::string_view b,
                       std::string name, AttributeMap attributes) {
  return add_edge(vertex_by_name(a), vertex_by_name(b), std::move(name),
                  std::move(attributes));
}

const Vertex& Graph::vertex(VertexId v) const {
  if (index(v) >= vertices_.size()) throw NotFoundError("vertex id out of range");
  return vertices_[index(v)];
}

Vertex& Graph::vertex(VertexId v) {
  if (index(v) >= vertices_.size()) throw NotFoundError("vertex id out of range");
  return vertices_[index(v)];
}

const Edge& Graph::edge(EdgeId e) const {
  if (index(e) >= edges_.size()) throw NotFoundError("edge id out of range");
  return edges_[index(e)];
}

Edge& Graph::edge(EdgeId e) {
  if (index(e) >= edges_.size()) throw NotFoundError("edge id out of range");
  return edges_[index(e)];
}

std::optional<VertexId> Graph::find_vertex(std::string_view name) const
    noexcept {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeId> Graph::find_edge(std::string_view name) const noexcept {
  const auto it = edge_by_name_.find(std::string(name));
  if (it == edge_by_name_.end()) return std::nullopt;
  return it->second;
}

VertexId Graph::vertex_by_name(std::string_view name) const {
  const auto v = find_vertex(name);
  if (!v) throw NotFoundError("unknown vertex: '" + std::string(name) + "'");
  return *v;
}

const std::vector<EdgeId>& Graph::incident_edges(VertexId v) const {
  if (index(v) >= adjacency_.size()) {
    throw NotFoundError("vertex id out of range");
  }
  return adjacency_[index(v)];
}

VertexId Graph::opposite(EdgeId e, VertexId v) const {
  const Edge& ed = edge(e);
  if (ed.a == v) return ed.b;
  if (ed.b == v) return ed.a;
  throw ModelError("vertex '" + vertex(v).name + "' is not an endpoint of edge '" +
                   ed.name + "'");
}

std::size_t Graph::degree(VertexId v) const { return incident_edges(v).size(); }

bool Graph::connected(VertexId a, VertexId b) const {
  if (index(a) >= vertices_.size() || index(b) >= vertices_.size()) {
    throw NotFoundError("vertex id out of range");
  }
  if (a == b) return true;
  std::vector<bool> seen(vertices_.size(), false);
  std::deque<VertexId> queue{a};
  seen[index(a)] = true;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const EdgeId e : adjacency_[index(v)]) {
      const VertexId w = opposite(e, v);
      if (w == b) return true;
      if (!seen[index(w)]) {
        seen[index(w)] = true;
        queue.push_back(w);
      }
    }
  }
  return false;
}

std::size_t Graph::component_count() const {
  std::vector<bool> seen(vertices_.size(), false);
  std::size_t components = 0;
  for (std::size_t start = 0; start < vertices_.size(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::deque<std::size_t> queue{start};
    seen[start] = true;
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop_front();
      for (const EdgeId e : adjacency_[v]) {
        const std::size_t w = index(opposite(e, VertexId{static_cast<std::uint32_t>(v)}));
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
  }
  return components;
}

std::vector<VertexId> Graph::reachable_from(VertexId v) const {
  if (index(v) >= vertices_.size()) throw NotFoundError("vertex id out of range");
  std::vector<bool> seen(vertices_.size(), false);
  std::vector<VertexId> out;
  std::deque<VertexId> queue{v};
  seen[index(v)] = true;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    out.push_back(u);
    for (const EdgeId e : adjacency_[index(u)]) {
      const VertexId w = opposite(e, u);
      if (!seen[index(w)]) {
        seen[index(w)] = true;
        queue.push_back(w);
      }
    }
  }
  return out;
}

Graph Graph::induced_subgraph(const std::vector<VertexId>& keep) const {
  Graph out;
  std::vector<bool> kept(vertices_.size(), false);
  for (const VertexId v : keep) {
    const Vertex& src = vertex(v);
    if (kept[index(v)]) continue;  // multiple occurrences are ignored
    kept[index(v)] = true;
    out.add_vertex(src.name, src.type, src.attributes);
  }
  for (const Edge& e : edges_) {
    if (kept[index(e.a)] && kept[index(e.b)]) {
      out.add_edge(vertices_[index(e.a)].name, vertices_[index(e.b)].name,
                   e.name, e.attributes);
    }
  }
  return out;
}

std::string Graph::to_dot(std::string_view graph_name) const {
  std::string out = "graph " + std::string(graph_name) + " {\n";
  for (const Vertex& v : vertices_) {
    out += "  \"" + v.name + "\"";
    if (!v.type.empty()) {
      out += " [label=\"" + v.name + ":" + v.type + "\"]";
    }
    out += ";\n";
  }
  for (const Edge& e : edges_) {
    out += "  \"" + vertices_[index(e.a)].name + "\" -- \"" +
           vertices_[index(e.b)].name + "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace upsim::graph
