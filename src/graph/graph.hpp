// Undirected multigraph with stable integer ids and string-keyed vertices.
//
// This is the shared substrate under path discovery (Sec. V-D of the paper),
// topology generation, and the reliability algorithms.  Vertices and edges
// carry an opaque name plus a numeric attribute map (used for MTBF/MTTR and
// availability annotations); the higher-level UML/VPM layers own the rich
// property model and project into this structure for algorithmic work.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace upsim::graph {

/// Strongly-typed vertex index.  Valid ids are dense [0, vertex_count).
enum class VertexId : std::uint32_t {};
/// Strongly-typed edge index.  Valid ids are dense [0, edge_count).
enum class EdgeId : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t index(VertexId v) noexcept {
  return static_cast<std::uint32_t>(v);
}
[[nodiscard]] constexpr std::uint32_t index(EdgeId e) noexcept {
  return static_cast<std::uint32_t>(e);
}

/// Numeric attributes attached to a vertex or edge (e.g. "mtbf", "mttr",
/// "availability").  Missing keys are simply absent; algorithms that need a
/// key state so and throw NotFoundError when it is missing.
using AttributeMap = std::unordered_map<std::string, double>;

struct Vertex {
  std::string name;        ///< unique within the graph, non-empty
  std::string type;        ///< free-form type label (e.g. "C6500", "Server")
  AttributeMap attributes;
};

struct Edge {
  VertexId a;
  VertexId b;
  std::string name;        ///< unique within the graph; may be auto-derived
  AttributeMap attributes;
};

/// Undirected multigraph.  Self-loops are rejected (a network link never
/// connects a device to itself — the paper's Connector joins two Devices);
/// parallel edges are allowed (redundant links between the same devices).
class Graph {
 public:
  Graph() = default;

  // -- construction --------------------------------------------------------
  /// Adds a vertex; `name` must be a unique non-empty identifier.
  VertexId add_vertex(std::string name, std::string type = {},
                      AttributeMap attributes = {});
  /// Adds an undirected edge between existing vertices.  `name` must be
  /// unique if given; empty derives "a--b#k".  Throws ModelError on
  /// self-loops or unknown endpoints.
  EdgeId add_edge(VertexId a, VertexId b, std::string name = {},
                  AttributeMap attributes = {});
  /// Convenience: adds an edge between vertices looked up by name.
  EdgeId add_edge(std::string_view a, std::string_view b, std::string name = {},
                  AttributeMap attributes = {});

  // -- lookup --------------------------------------------------------------
  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return vertices_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] const Vertex& vertex(VertexId v) const;
  [[nodiscard]] Vertex& vertex(VertexId v);
  [[nodiscard]] const Edge& edge(EdgeId e) const;
  [[nodiscard]] Edge& edge(EdgeId e);
  /// Vertex id by name, or nullopt.
  [[nodiscard]] std::optional<VertexId> find_vertex(
      std::string_view name) const noexcept;
  /// Vertex id by name, or throws NotFoundError.
  [[nodiscard]] VertexId vertex_by_name(std::string_view name) const;
  /// Edge id by name, or nullopt.
  [[nodiscard]] std::optional<EdgeId> find_edge(
      std::string_view name) const noexcept;
  /// Edges incident to `v`, in insertion order.
  [[nodiscard]] const std::vector<EdgeId>& incident_edges(VertexId v) const;
  /// The endpoint of `e` opposite to `v`.  Throws ModelError if `v` is not
  /// an endpoint of `e`.
  [[nodiscard]] VertexId opposite(EdgeId e, VertexId v) const;
  /// Degree counting parallel edges.
  [[nodiscard]] std::size_t degree(VertexId v) const;

  // -- algorithms used across modules ---------------------------------------
  /// True if a path exists between `a` and `b` (BFS).
  [[nodiscard]] bool connected(VertexId a, VertexId b) const;
  /// Number of connected components.
  [[nodiscard]] std::size_t component_count() const;
  /// Vertices reachable from `v`, including `v` itself.
  [[nodiscard]] std::vector<VertexId> reachable_from(VertexId v) const;

  /// Vertex-induced subgraph: keeps exactly the vertices in `keep` and every
  /// edge whose both endpoints are kept.  Names, types and attributes are
  /// preserved — this is the "filter on the complete topology" that
  /// generates a UPSIM (Sec. VI-H).
  [[nodiscard]] Graph induced_subgraph(const std::vector<VertexId>& keep) const;

  /// GraphViz DOT rendering (undirected).  Types become node labels.
  [[nodiscard]] std::string to_dot(std::string_view graph_name = "G") const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
  std::unordered_map<std::string, VertexId> by_name_;
  std::unordered_map<std::string, EdgeId> edge_by_name_;
};

}  // namespace upsim::graph
