// Service mapping pairs (Sec. V-A3, Fig. 3 and Table I of the paper).
//
// A mapping binds each atomic service to the ICT components acting as its
// requester and provider for one user perspective.  It is deliberately a
// separate artefact from the infrastructure and service models so that
// dynamic changes (user mobility, migration, substitution) touch only this
// file.  The on-disk format is the paper's XML:
//
//   <servicemapping>
//     <atomicservice id="request_printing">
//       <requester id="t1"/>
//       <provider id="printS"/>
//     </atomicservice>
//     ...
//   </servicemapping>
//
// Both the Fig. 3 style (requester/provider as child elements with an id
// attribute) and id-as-text-content are accepted on input; output always
// uses the attribute form.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/service.hpp"
#include "uml/object_model.hpp"
#include "xml/dom.hpp"

namespace upsim::mapping {

/// Source positions collected while parsing a mapping file, keyed by atomic
/// service: the <atomicservice> element itself and its requester/provider
/// children.  Feeds lint diagnostics; mappings built in memory have none.
struct MappingLocations {
  std::map<std::string, xml::Location> pairs;
  std::map<std::string, xml::Location> requesters;
  std::map<std::string, xml::Location> providers;
};

/// One (atomic service, requester, provider) triple — a row of Table I.
struct ServiceMappingPair {
  std::string atomic_service;  ///< unique key within a mapping
  std::string requester;       ///< instance name in the infrastructure model
  std::string provider;        ///< instance name in the infrastructure model
};

/// The mapping for one user perspective: at most one pair per atomic
/// service.  Pairs for atomic services irrelevant to an analysed composite
/// are allowed and simply ignored during UPSIM generation (Sec. VI-D).
class ServiceMapping {
 public:
  ServiceMapping() = default;

  /// Adds or replaces the pair for an atomic service.  Replacement (not
  /// error) is intentional: changing requesters/providers with minimal
  /// effort is the mapping's purpose.
  void map(std::string atomic_service, std::string requester,
           std::string provider);

  [[nodiscard]] std::optional<ServiceMappingPair> find(
      std::string_view atomic_service) const;
  [[nodiscard]] const ServiceMappingPair& get(
      std::string_view atomic_service) const;
  [[nodiscard]] bool contains(std::string_view atomic_service) const noexcept;
  void erase(std::string_view atomic_service);

  [[nodiscard]] std::size_t size() const noexcept { return pairs_.size(); }
  /// All pairs ordered by atomic-service name.
  [[nodiscard]] std::vector<ServiceMappingPair> pairs() const;

  /// The pairs a composite service needs, in execution order.  Throws
  /// NotFoundError when an atomic service of the composite has no pair.
  [[nodiscard]] std::vector<ServiceMappingPair> pairs_for(
      const service::CompositeService& composite) const;

  /// Checks this mapping against an infrastructure and (optionally) a
  /// composite service: requesters/providers must name instances of the
  /// object model; when a composite is given, each of its atomic services
  /// must be mapped.  Returns human-readable problems; empty means valid.
  [[nodiscard]] std::vector<std::string> validate(
      const uml::ObjectModel& infrastructure,
      const service::CompositeService* composite = nullptr) const;

  // -- XML (Fig. 3) ---------------------------------------------------------
  [[nodiscard]] std::string to_xml() const;
  void save(const std::string& path) const;
  /// `locations`, when non-null, receives the source position of every pair.
  [[nodiscard]] static ServiceMapping from_xml(
      std::string_view xml, MappingLocations* locations = nullptr);
  [[nodiscard]] static ServiceMapping load(
      const std::string& path, MappingLocations* locations = nullptr);

 private:
  std::map<std::string, ServiceMappingPair, std::less<>> pairs_;
};

}  // namespace upsim::mapping
