#include "mapping/mapping.hpp"

#include <fstream>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"

namespace upsim::mapping {

void ServiceMapping::map(std::string atomic_service, std::string requester,
                         std::string provider) {
  for (const std::string* id : {&atomic_service, &requester, &provider}) {
    if (!util::is_identifier(*id)) {
      throw ModelError("service mapping: invalid identifier '" + *id + "'");
    }
  }
  ServiceMappingPair pair{atomic_service, std::move(requester),
                          std::move(provider)};
  pairs_.insert_or_assign(std::move(atomic_service), std::move(pair));
}

std::optional<ServiceMappingPair> ServiceMapping::find(
    std::string_view atomic_service) const {
  const auto it = pairs_.find(atomic_service);
  if (it == pairs_.end()) return std::nullopt;
  return it->second;
}

const ServiceMappingPair& ServiceMapping::get(
    std::string_view atomic_service) const {
  const auto it = pairs_.find(atomic_service);
  if (it == pairs_.end()) {
    throw NotFoundError("service mapping has no pair for atomic service '" +
                        std::string(atomic_service) + "'");
  }
  return it->second;
}

bool ServiceMapping::contains(std::string_view atomic_service) const noexcept {
  return pairs_.find(atomic_service) != pairs_.end();
}

void ServiceMapping::erase(std::string_view atomic_service) {
  const auto it = pairs_.find(atomic_service);
  if (it != pairs_.end()) pairs_.erase(it);
}

std::vector<ServiceMappingPair> ServiceMapping::pairs() const {
  std::vector<ServiceMappingPair> out;
  out.reserve(pairs_.size());
  for (const auto& [_, p] : pairs_) out.push_back(p);
  return out;
}

std::vector<ServiceMappingPair> ServiceMapping::pairs_for(
    const service::CompositeService& composite) const {
  std::vector<ServiceMappingPair> out;
  out.reserve(composite.atomic_services().size());
  for (const std::string& atomic : composite.atomic_services()) {
    const auto it = pairs_.find(atomic);
    if (it == pairs_.end()) {
      throw NotFoundError("composite service '" + composite.name() +
                          "': atomic service '" + atomic +
                          "' has no service mapping pair");
    }
    out.push_back(it->second);
  }
  return out;
}

std::vector<std::string> ServiceMapping::validate(
    const uml::ObjectModel& infrastructure,
    const service::CompositeService* composite) const {
  std::vector<std::string> problems;
  for (const auto& [atomic, pair] : pairs_) {
    if (infrastructure.find_instance(pair.requester) == nullptr) {
      problems.push_back("pair '" + atomic + "': requester '" +
                         pair.requester +
                         "' is not an instance of the infrastructure");
    }
    if (infrastructure.find_instance(pair.provider) == nullptr) {
      problems.push_back("pair '" + atomic + "': provider '" + pair.provider +
                         "' is not an instance of the infrastructure");
    }
    if (pair.requester == pair.provider) {
      problems.push_back("pair '" + atomic +
                         "': requester and provider are the same component '" +
                         pair.requester + "'");
    }
  }
  if (composite != nullptr) {
    for (const std::string& atomic : composite->atomic_services()) {
      if (!contains(atomic)) {
        problems.push_back("composite '" + composite->name() +
                           "': atomic service '" + atomic + "' is unmapped");
      }
    }
  }
  return problems;
}

std::string ServiceMapping::to_xml() const {
  auto root = std::make_unique<xml::Element>("servicemapping");
  for (const auto& [atomic, pair] : pairs_) {
    xml::Element& as = root->append_child("atomicservice");
    as.set_attribute("id", atomic);
    as.append_child("requester").set_attribute("id", pair.requester);
    as.append_child("provider").set_attribute("id", pair.provider);
  }
  return xml::Document(std::move(root)).to_string();
}

void ServiceMapping::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write mapping file: " + path);
  out << to_xml();
}

namespace {

/// Accepts <requester id="x"/> (Fig. 3) as well as <requester>x</requester>.
/// Returns the endpoint id and the endpoint element's source position.
std::pair<std::string, xml::Location> read_endpoint(const xml::Element& as,
                                                    std::string_view role) {
  const xml::Element& endpoint = as.required_child(role);
  if (const auto id = endpoint.attribute("id")) {
    return {std::string(*id), endpoint.location()};
  }
  const auto text = endpoint.trimmed_text();
  if (!text.empty()) return {std::string(text), endpoint.location()};
  throw ModelError("mapping: <" + std::string(role) + "> of atomic service '" +
                   std::string(as.attribute("id").value_or("?")) +
                   "' has neither an id attribute nor text content");
}

}  // namespace

ServiceMapping ServiceMapping::from_xml(std::string_view raw,
                                        MappingLocations* locations) {
  const xml::Document doc = xml::parse(raw);
  const xml::Element& root = doc.root();
  // The paper's fragment shows bare <atomicservice> elements; a wrapping
  // <servicemapping> root is what a whole file needs.  Accept both: a root
  // that *is* an atomicservice, or a root containing them.
  std::vector<const xml::Element*> entries;
  if (root.name() == "atomicservice") {
    entries.push_back(&root);
  } else {
    entries = root.children_named("atomicservice");
  }
  if (entries.empty()) {
    throw ModelError("mapping: no <atomicservice> entries under root <" +
                     root.name() + ">");
  }
  ServiceMapping mapping;
  for (const xml::Element* as : entries) {
    const std::string id = as->required_attribute("id");
    if (mapping.contains(id)) {
      throw ModelError("mapping: duplicate atomic service '" + id +
                       "' (the atomic service is the unique key)");
    }
    auto [requester, requester_at] = read_endpoint(*as, "requester");
    auto [provider, provider_at] = read_endpoint(*as, "provider");
    mapping.map(id, std::move(requester), std::move(provider));
    if (locations != nullptr) {
      locations->pairs.emplace(id, as->location());
      locations->requesters.emplace(id, requester_at);
      locations->providers.emplace(id, provider_at);
    }
  }
  return mapping;
}

ServiceMapping ServiceMapping::load(const std::string& path,
                                    MappingLocations* locations) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read mapping file: " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return from_xml(content, locations);
}

}  // namespace upsim::mapping
