#include "transform/upsim_emitter.hpp"

#include <algorithm>
#include <unordered_set>

#include "transform/uml_importer.hpp"
#include "util/error.hpp"

namespace upsim::transform {

using vpm::EntityId;
using vpm::ModelSpace;

EntityId store_paths(ModelSpace& space, std::string_view run_name,
                     std::string_view pair_key, const graph::Graph& g,
                     const pathdisc::PathSet& paths,
                     const uml::ObjectModel& infrastructure) {
  const EntityId runs = space.ensure_path("paths");
  const EntityId run = space.ensure_entity(runs, std::string(run_name));
  if (space.child(run, std::string(pair_key))) {
    throw ModelError("store_paths: run '" + std::string(run_name) +
                     "' already has paths for pair '" + std::string(pair_key) +
                     "'");
  }
  const EntityId pair_node =
      space.create_entity(run, std::string(pair_key));
  for (std::size_t i = 0; i < paths.paths.size(); ++i) {
    const EntityId path_node =
        space.create_entity(pair_node, "p" + std::to_string(i));
    for (const graph::VertexId v : paths.paths[i]) {
      const std::string& instance_name = g.vertex(v).name;
      const EntityId instance = space.get(
          instance_entity_fqn(infrastructure, instance_name));
      // Ordered hops: the relation name encodes the position so the path
      // can be reconstructed exactly.
      space.create_relation("hop", path_node, instance);
    }
  }
  return pair_node;
}

std::vector<std::vector<std::string>> load_paths(const ModelSpace& space,
                                                 std::string_view run_name) {
  const auto run = space.find("paths." + std::string(run_name));
  if (!run) {
    throw NotFoundError("load_paths: no stored run '" + std::string(run_name) +
                        "'");
  }
  std::vector<std::vector<std::string>> out;
  for (const EntityId pair_node : space.children(*run)) {
    // Children are name-ordered ("p0", "p1", ... "p10" sorts awkwardly);
    // sort numerically by the index suffix.
    std::vector<EntityId> path_nodes = space.children(pair_node);
    std::sort(path_nodes.begin(), path_nodes.end(),
              [&](EntityId a, EntityId b) {
                return std::stoul(space.name(a).substr(1)) <
                       std::stoul(space.name(b).substr(1));
              });
    for (const EntityId path_node : path_nodes) {
      std::vector<std::string> path;
      for (const vpm::RelationId hop : space.relations_from(path_node, "hop")) {
        path.push_back(space.name(space.target(hop)));
      }
      out.push_back(std::move(path));
    }
  }
  return out;
}

void clear_paths(ModelSpace& space, std::string_view run_name) {
  const auto run = space.find("paths." + std::string(run_name));
  if (run) space.delete_entity(*run);
}

std::vector<std::string> merge_instances(
    const std::vector<std::vector<std::string>>& paths) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  for (const auto& path : paths) {
    for (const std::string& name : path) {
      if (seen.insert(name).second) out.push_back(name);
    }
  }
  return out;
}

uml::ObjectModel emit_upsim(const uml::ObjectModel& infrastructure,
                            std::string upsim_name,
                            const std::vector<std::string>& keep) {
  uml::ObjectModel upsim(std::move(upsim_name), infrastructure.class_model());
  std::unordered_set<std::string> kept;
  for (const std::string& name : keep) {
    if (!kept.insert(name).second) continue;  // multiple occurrences ignored
    const uml::InstanceSpecification& inst =
        infrastructure.get_instance(name);
    upsim.instantiate(inst.name(), inst.classifier());
  }
  for (const auto& link : infrastructure.links()) {
    if (kept.contains(link->end_a().name()) &&
        kept.contains(link->end_b().name())) {
      upsim.link(link->end_a().name(), link->end_b().name(),
                 link->association().name(), link->name());
    }
  }
  return upsim;
}

}  // namespace upsim::transform
