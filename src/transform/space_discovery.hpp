// Path discovery executed directly on the VPM model space.
//
// The paper implements its path-discovery algorithm in VTCL, i.e. it walks
// the *model space* ("the algorithm sees the infrastructure as a graph",
// Sec. VI-G) rather than an extracted adjacency structure.  This module
// reproduces that design point: a DFS over instance entities following the
// directed "link" relations the UML importer created.  The projection-based
// engine in src/pathdisc is the optimised alternative; both must produce
// identical path lists (tests assert it) and bench_pipeline quantifies the
// cost of interpreting the model space directly — the ablation behind our
// choice to project.
#pragma once

#include <string>
#include <vector>

#include "vpm/model_space.hpp"

namespace upsim::transform {

struct SpaceDiscoveryResult {
  /// Paths as instance-name sequences, in DFS discovery order.
  std::vector<std::vector<std::string>> paths;
  std::size_t nodes_expanded = 0;
};

/// Enumerates all simple paths between two instance entities of an imported
/// object model, walking "link" relations.  `instances_ns` is the FQN of
/// the instances namespace (e.g. "models.usi_network.instances"); requester
/// and provider are instance names inside it.  Neighbour order is the
/// relation insertion order, which equals the link insertion order of the
/// imported model — so discovery order matches pathdisc on the projection.
[[nodiscard]] SpaceDiscoveryResult discover_in_space(
    const vpm::ModelSpace& space, const std::string& instances_ns,
    const std::string& requester, const std::string& provider);

}  // namespace upsim::transform
