// The "UML native importer" of the methodology (Fig. 4, Step 5): loads UML
// class/object/activity models into the VPM model space.
//
// Imported layout (all under the model-space root):
//
//   metamodel.uml.{Class, Association, Instance, Link, Activity, Action}
//   models.<classModel>.classes.<ClassName>          instanceOf ..uml.Class
//   models.<classModel>.associations.<AssocName>     instanceOf ..uml.Association
//   models.<objectModel>.instances.<instName>        instanceOf ..uml.Instance
//                                                    and of its class entity
//   relations: instance --link--> instance (one per direction per Link,
//              so undirected adjacency is patternable in either direction)
//   models.services.<activity>.<nodeName>            actions instanceOf
//                                                    ..uml.Action
//   relations: node --flow--> node
//
// The importer records structure and typing; attribute *values* stay in the
// UML model (classes carry only static attributes, so the emitter recovers
// every property from the classifier when materialising a UPSIM).
#pragma once

#include <string>

#include "uml/activity.hpp"
#include "uml/object_model.hpp"
#include "vpm/model_space.hpp"

namespace upsim::transform {

/// Ensures the metamodel namespace exists; idempotent.  Returns the
/// "metamodel.uml" entity.
vpm::EntityId ensure_uml_metamodel(vpm::ModelSpace& space);

/// Imports a class model (classes + associations).  Idempotent per name;
/// re-importing an already-present model throws ModelError (delete the
/// "models.<name>" subtree first to refresh).
vpm::EntityId import_class_model(vpm::ModelSpace& space,
                                 const uml::ClassModel& classes);

/// Imports an object model; its class model must have been imported first
/// (classifier typing points at the class entities).
vpm::EntityId import_object_model(vpm::ModelSpace& space,
                                  const uml::ObjectModel& objects);

/// Imports an activity diagram under "models.services".
vpm::EntityId import_activity(vpm::ModelSpace& space,
                              const uml::Activity& activity);

/// FQN helpers used by the other pipeline stages.
[[nodiscard]] std::string class_entity_fqn(const uml::ClassModel& classes,
                                           std::string_view class_name);
[[nodiscard]] std::string instance_entity_fqn(const uml::ObjectModel& objects,
                                              std::string_view instance_name);

}  // namespace upsim::transform
