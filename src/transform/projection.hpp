// Projections between the modeling layers and the algorithmic graph layer.
//
// The UML object diagram (or its imported image in the VPM model space) is
// the authoritative topology; path discovery and reliability analysis run
// on a graph::Graph projection of it.  Vertex/edge attributes carry the
// dependability properties read from the availability profile (Fig. 6):
// "mtbf", "mttr" and "redundant" — inherited by every instance from its
// classifier, as the paper's static-attribute rule guarantees.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "uml/object_model.hpp"
#include "vpm/model_space.hpp"

namespace upsim::transform {

struct ProjectionOptions {
  /// Stereotype attribute names to read (availability profile, Fig. 6).
  std::string mtbf_attribute = "MTBF";
  std::string mttr_attribute = "MTTR";
  std::string redundant_attribute = "redundantComponents";
  /// When true, an instance/link whose classifier lacks the attributes is a
  /// ModelError; when false it is projected without them (pure topology).
  bool require_dependability_attributes = true;
  /// Additional numeric stereotype attributes to carry over when present:
  /// (stereotype attribute, graph attribute).  The default projects the
  /// network profile's throughput (Fig. 7) for performability analysis.
  std::vector<std::pair<std::string, std::string>> extra_attributes = {
      {"throughput", "throughput_mbps"},
      {"latency", "latency_ms"},
  };
};

/// Projects an object model to a graph: one vertex per instance (vertex
/// name = instance name, vertex type = classifier name), one edge per link.
/// Vertex attributes come from the instance classifier's stereotype values,
/// edge attributes from the link association's stereotype values.
[[nodiscard]] graph::Graph project(const uml::ObjectModel& objects,
                                   const ProjectionOptions& options = {});

/// Projects the imported image of an object model out of the VPM model
/// space (entities under "models.<name>.instances" plus their "link"
/// relations).  Attributes are recovered from `objects`' class model via
/// the instance names — the paper keeps properties on classes, so the
/// model-space image stores structure only.  Both projections agree on the
/// same model; tests assert that.
[[nodiscard]] graph::Graph project_from_space(
    const vpm::ModelSpace& space, const uml::ObjectModel& objects,
    const ProjectionOptions& options = {});

}  // namespace upsim::transform
