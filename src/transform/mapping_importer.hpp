// The custom service-mapping importer (Fig. 4, Step 6; Sec. V-C).
//
// Mirrors the paper's Eclipse plug-in: it parses the mapping (already a
// ServiceMapping after xml load), traverses its entries and creates VPM
// entities conforming to a small mapping metamodel:
//
//   metamodel.mapping.Pair
//   mappings.<mappingName>.<atomicService>   instanceOf metamodel.mapping.Pair
//   relations: pair --requester--> instance entity
//              pair --provider--->  instance entity
//
// Requester/provider must resolve to instances of an already-imported
// object model; unresolved ids raise ModelError (the paper's importer
// "finds appropriate VPM entities ... corresponding to the type of each
// element").
#pragma once

#include <string>

#include "mapping/mapping.hpp"
#include "uml/object_model.hpp"
#include "vpm/model_space.hpp"

namespace upsim::transform {

/// Ensures the mapping metamodel namespace; idempotent.
vpm::EntityId ensure_mapping_metamodel(vpm::ModelSpace& space);

/// Imports `mapping` under "mappings.<mapping_name>", resolving component
/// ids against `infrastructure` (which must already be imported).
vpm::EntityId import_mapping(vpm::ModelSpace& space, std::string mapping_name,
                             const mapping::ServiceMapping& mapping,
                             const uml::ObjectModel& infrastructure);

/// Removes a previously imported mapping subtree (used when regenerating a
/// UPSIM after a mapping-only change — the cheap dynamicity path of
/// Sec. V-A3).  No-op when absent.
void remove_mapping(vpm::ModelSpace& space, std::string_view mapping_name);

}  // namespace upsim::transform
