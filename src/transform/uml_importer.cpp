#include "transform/uml_importer.hpp"

#include "util/error.hpp"

namespace upsim::transform {

using vpm::EntityId;
using vpm::ModelSpace;

EntityId ensure_uml_metamodel(ModelSpace& space) {
  const EntityId mm = space.ensure_path("metamodel.uml");
  for (const char* kind :
       {"Class", "Association", "Instance", "Link", "Activity", "Action"}) {
    space.ensure_entity(mm, kind);
  }
  return mm;
}

std::string class_entity_fqn(const uml::ClassModel& classes,
                             std::string_view class_name) {
  return "models." + classes.name() + ".classes." + std::string(class_name);
}

std::string instance_entity_fqn(const uml::ObjectModel& objects,
                                std::string_view instance_name) {
  return "models." + objects.name() + ".instances." +
         std::string(instance_name);
}

EntityId import_class_model(ModelSpace& space, const uml::ClassModel& classes) {
  ensure_uml_metamodel(space);
  const EntityId models = space.ensure_path("models");
  if (space.child(models, classes.name())) {
    throw ModelError("import_class_model: model '" + classes.name() +
                     "' already imported");
  }
  const EntityId root = space.create_entity(models, classes.name());
  const EntityId class_ns = space.create_entity(root, "classes");
  const EntityId assoc_ns = space.create_entity(root, "associations");
  const EntityId class_type = space.get("metamodel.uml.Class");
  const EntityId assoc_type = space.get("metamodel.uml.Association");

  for (const uml::Class* cls : classes.classes()) {
    const EntityId e = space.create_entity(class_ns, cls->name());
    space.set_instance_of(e, class_type);
    // Record generalisation so queries can walk the hierarchy.
    if (cls->parent() != nullptr) {
      // Parent entities are created lazily in a second pass below when
      // ordering would matter; ClassModel iterates alphabetically, so
      // resolve parents afterwards.
    }
  }
  for (const uml::Class* cls : classes.classes()) {
    if (cls->parent() == nullptr) continue;
    const EntityId child = space.get(class_entity_fqn(classes, cls->name()));
    const EntityId parent =
        space.get(class_entity_fqn(classes, cls->parent()->name()));
    space.create_relation("specialises", child, parent);
  }
  for (const uml::Association* assoc : classes.associations()) {
    const EntityId e = space.create_entity(assoc_ns, assoc->name());
    space.set_instance_of(e, assoc_type);
    space.create_relation(
        "endA", e, space.get(class_entity_fqn(classes, assoc->end_a().name())));
    space.create_relation(
        "endB", e, space.get(class_entity_fqn(classes, assoc->end_b().name())));
  }
  return root;
}

EntityId import_object_model(ModelSpace& space,
                             const uml::ObjectModel& objects) {
  ensure_uml_metamodel(space);
  const uml::ClassModel& classes = objects.class_model();
  if (!space.find("models." + classes.name())) {
    throw ModelError("import_object_model: class model '" + classes.name() +
                     "' must be imported before object model '" +
                     objects.name() + "'");
  }
  const EntityId models = space.ensure_path("models");
  if (space.child(models, objects.name())) {
    throw ModelError("import_object_model: model '" + objects.name() +
                     "' already imported");
  }
  const EntityId root = space.create_entity(models, objects.name());
  const EntityId inst_ns = space.create_entity(root, "instances");
  const EntityId instance_type = space.get("metamodel.uml.Instance");

  for (const uml::InstanceSpecification* inst : objects.instances()) {
    const EntityId e = space.create_entity(inst_ns, inst->name());
    space.set_instance_of(e, instance_type);
    space.set_instance_of(
        e, space.get(class_entity_fqn(classes, inst->classifier().name())));
  }
  for (const auto& link : objects.links()) {
    const EntityId a =
        space.get(instance_entity_fqn(objects, link->end_a().name()));
    const EntityId b =
        space.get(instance_entity_fqn(objects, link->end_b().name()));
    // Two directed relations make the undirected link traversable from
    // either endpoint in patterns and in the path-discovery step.
    space.create_relation("link", a, b);
    space.create_relation("link", b, a);
  }
  return root;
}

EntityId import_activity(ModelSpace& space, const uml::Activity& activity) {
  ensure_uml_metamodel(space);
  const EntityId services = space.ensure_path("models.services");
  if (space.child(services, activity.name())) {
    throw ModelError("import_activity: activity '" + activity.name() +
                     "' already imported");
  }
  const EntityId root = space.create_entity(services, activity.name());
  const EntityId activity_type = space.get("metamodel.uml.Activity");
  const EntityId action_type = space.get("metamodel.uml.Action");
  space.set_instance_of(root, activity_type);

  std::vector<EntityId> node_entities;
  node_entities.reserve(activity.node_count());
  for (std::size_t i = 0; i < activity.node_count(); ++i) {
    const auto id = uml::ActivityNodeId{static_cast<std::uint32_t>(i)};
    const uml::ActivityNode& node = activity.node(id);
    // Node names can repeat across kinds in principle; qualify with index
    // to guarantee uniqueness while keeping the readable name as value.
    const EntityId e =
        space.create_entity(root, "n" + std::to_string(i) + "_" + node.name);
    space.set_value(e, node.name);
    if (node.kind == uml::ActivityNodeKind::Action) {
      space.set_instance_of(e, action_type);
    }
    node_entities.push_back(e);
  }
  for (std::size_t i = 0; i < activity.node_count(); ++i) {
    const auto id = uml::ActivityNodeId{static_cast<std::uint32_t>(i)};
    for (const uml::ActivityNodeId succ : activity.successors(id)) {
      space.create_relation("flow", node_entities[i],
                            node_entities[uml::index(succ)]);
    }
  }
  return root;
}

}  // namespace upsim::transform
