#include "transform/mapping_importer.hpp"

#include "transform/uml_importer.hpp"
#include "util/error.hpp"

namespace upsim::transform {

using vpm::EntityId;
using vpm::ModelSpace;

EntityId ensure_mapping_metamodel(ModelSpace& space) {
  const EntityId mm = space.ensure_path("metamodel.mapping");
  space.ensure_entity(mm, "Pair");
  return mm;
}

EntityId import_mapping(ModelSpace& space, std::string mapping_name,
                        const mapping::ServiceMapping& mapping,
                        const uml::ObjectModel& infrastructure) {
  ensure_mapping_metamodel(space);
  const EntityId mappings = space.ensure_path("mappings");
  if (space.child(mappings, mapping_name)) {
    throw ModelError("import_mapping: mapping '" + mapping_name +
                     "' already imported");
  }
  const EntityId root = space.create_entity(mappings, std::move(mapping_name));
  const EntityId pair_type = space.get("metamodel.mapping.Pair");

  for (const mapping::ServiceMappingPair& pair : mapping.pairs()) {
    auto resolve = [&](const std::string& component_id,
                       const char* role) -> EntityId {
      const auto entity =
          space.find(instance_entity_fqn(infrastructure, component_id));
      if (!entity) {
        throw ModelError("import_mapping: " + std::string(role) + " '" +
                         component_id + "' of atomic service '" +
                         pair.atomic_service +
                         "' does not resolve to an imported instance of '" +
                         infrastructure.name() + "'");
      }
      return *entity;
    };
    const EntityId requester = resolve(pair.requester, "requester");
    const EntityId provider = resolve(pair.provider, "provider");
    const EntityId entry = space.create_entity(root, pair.atomic_service);
    space.set_instance_of(entry, pair_type);
    space.create_relation("requester", entry, requester);
    space.create_relation("provider", entry, provider);
  }
  return root;
}

void remove_mapping(ModelSpace& space, std::string_view mapping_name) {
  const auto mapping =
      space.find("mappings." + std::string(mapping_name));
  if (mapping) space.delete_entity(*mapping);
}

}  // namespace upsim::transform
