#include "transform/space_discovery.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace upsim::transform {

using vpm::EntityId;
using vpm::ModelSpace;
using vpm::RelationId;

namespace {

class SpaceDfs {
 public:
  SpaceDfs(const ModelSpace& space, EntityId target,
           SpaceDiscoveryResult& out)
      : space_(space), target_(target), out_(out) {}

  void run(EntityId source) {
    on_path_.insert(vpm::index(source));
    path_.push_back(source);
    visit(source);
  }

 private:
  void visit(EntityId entity) {
    ++out_.nodes_expanded;
    if (entity == target_) {
      std::vector<std::string> names;
      names.reserve(path_.size());
      for (const EntityId e : path_) names.push_back(space_.name(e));
      out_.paths.push_back(std::move(names));
      return;
    }
    for (const RelationId r : space_.relations_from(entity, "link")) {
      const EntityId next = space_.target(r);
      if (on_path_.contains(vpm::index(next))) continue;
      on_path_.insert(vpm::index(next));
      path_.push_back(next);
      visit(next);
      path_.pop_back();
      on_path_.erase(vpm::index(next));
    }
  }

  const ModelSpace& space_;
  EntityId target_;
  SpaceDiscoveryResult& out_;
  std::vector<EntityId> path_;
  std::unordered_set<std::uint32_t> on_path_;
};

}  // namespace

SpaceDiscoveryResult discover_in_space(const ModelSpace& space,
                                       const std::string& instances_ns,
                                       const std::string& requester,
                                       const std::string& provider) {
  const auto ns = space.find(instances_ns);
  if (!ns) {
    throw NotFoundError("discover_in_space: no namespace '" + instances_ns +
                        "'");
  }
  const auto source = space.child(*ns, requester);
  const auto target = space.child(*ns, provider);
  if (!source || !target) {
    throw NotFoundError("discover_in_space: unknown instance '" +
                        (source ? provider : requester) + "' in '" +
                        instances_ns + "'");
  }
  SpaceDiscoveryResult out;
  SpaceDfs dfs(space, *target, out);
  dfs.run(*source);
  return out;
}

}  // namespace upsim::transform
