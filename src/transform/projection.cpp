#include "transform/projection.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "transform/uml_importer.hpp"
#include "util/error.hpp"

namespace upsim::transform {

namespace {

/// Reads the dependability attributes of a stereotyped element into a
/// graph attribute map.
graph::AttributeMap dependability_attributes(
    const uml::StereotypedElement& element, const ProjectionOptions& options,
    const std::string& what) {
  graph::AttributeMap attrs;
  const auto mtbf = element.stereotype_value(options.mtbf_attribute);
  const auto mttr = element.stereotype_value(options.mttr_attribute);
  if (mtbf && mttr) {
    attrs.emplace("mtbf", mtbf->as_real());
    attrs.emplace("mttr", mttr->as_real());
    if (const auto red = element.stereotype_value(options.redundant_attribute)) {
      attrs.emplace("redundant", static_cast<double>(red->as_integer()));
    }
  } else if (options.require_dependability_attributes) {
    throw ModelError("projection: " + what + " lacks stereotype attributes '" +
                     options.mtbf_attribute + "'/'" + options.mttr_attribute +
                     "' required for dependability analysis");
  }
  for (const auto& [stereotype_attr, graph_attr] : options.extra_attributes) {
    if (const auto value = element.stereotype_value(stereotype_attr)) {
      attrs.emplace(graph_attr, value->as_real());
    }
  }
  return attrs;
}

}  // namespace

graph::Graph project(const uml::ObjectModel& objects,
                     const ProjectionOptions& options) {
  obs::ScopedSpan span("transform.project", "transform");
  graph::Graph g;
  for (const uml::InstanceSpecification* inst : objects.instances()) {
    g.add_vertex(inst->name(), inst->classifier().name(),
                 dependability_attributes(inst->classifier(), options,
                                          "class '" +
                                              inst->classifier().name() + "'"));
  }
  for (const auto& link : objects.links()) {
    g.add_edge(link->end_a().name(), link->end_b().name(), link->name(),
               dependability_attributes(link->association(), options,
                                        "association '" +
                                            link->association().name() + "'"));
  }
  return g;
}

graph::Graph project_from_space(const vpm::ModelSpace& space,
                                const uml::ObjectModel& objects,
                                const ProjectionOptions& options) {
  obs::ScopedSpan span("transform.project_from_space", "transform");
  const auto instances_ns =
      space.find("models." + objects.name() + ".instances");
  if (!instances_ns) {
    throw NotFoundError("project_from_space: object model '" + objects.name() +
                        "' is not imported");
  }
  graph::Graph g;
  const std::vector<vpm::EntityId> instance_entities =
      space.children(*instances_ns);
  for (const vpm::EntityId e : instance_entities) {
    const uml::InstanceSpecification& inst =
        objects.get_instance(space.name(e));
    g.add_vertex(inst.name(), inst.classifier().name(),
                 dependability_attributes(inst.classifier(), options,
                                          "class '" +
                                              inst.classifier().name() + "'"));
  }
  // Each undirected UML link was imported as two directed "link"
  // relations.  Emit edges in the object model's original link order —
  // edge-insertion order is observable (it pins DFS discovery order, which
  // reproduces the Sec. VI-G listing), so both projections and the
  // model-space discovery engine must agree on it.  The model space is
  // still authoritative: a link whose relation image is missing raises an
  // invariant failure.
  for (const auto& link : objects.links()) {
    const auto a = space.child(*instances_ns, link->end_a().name());
    const auto b = space.child(*instances_ns, link->end_b().name());
    bool found = false;
    if (a && b) {
      for (const vpm::RelationId r : space.relations_from(*a, "link")) {
        if (space.target(r) == *b) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      throw InvariantError(
          "project_from_space: UML link '" + link->name() +
          "' has no model-space image");
    }
    g.add_edge(link->end_a().name(), link->end_b().name(), link->name(),
               dependability_attributes(link->association(), options,
                                        "association '" +
                                            link->association().name() +
                                            "'"));
  }
  return g;
}

}  // namespace upsim::transform
