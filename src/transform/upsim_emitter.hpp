// UPSIM generation (Fig. 4, Steps 7-8; Sec. V-E and VI-H).
//
// Step 7 stores every discovered path in a reserved subtree of the model
// space ("paths.<runName>.<pairKey>.p<i>" with ordered "hop" relations to
// the instance entities).  Step 8 merges all stored paths of a run into a
// single node set and emits the UPSIM as a fresh UML object diagram: a
// filter over the complete topology where only instances appearing on at
// least one path survive (multiple occurrences ignored), together with
// every link whose both endpoints survive.  Emitted instanceSpecifications
// share the classifiers of the input model, so all stereotype properties
// (MTBF, MTTR, ...) carry over automatically.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "pathdisc/path_discovery.hpp"
#include "uml/object_model.hpp"
#include "vpm/model_space.hpp"

namespace upsim::transform {

/// Stores the discovered paths of one service mapping pair in the model
/// space under "paths.<run_name>.<pair_key>".  `g` must be the projection
/// the paths were discovered on (vertex names resolve instance entities).
/// Returns the subtree entity.
vpm::EntityId store_paths(vpm::ModelSpace& space, std::string_view run_name,
                          std::string_view pair_key,
                          const graph::Graph& g,
                          const pathdisc::PathSet& paths,
                          const uml::ObjectModel& infrastructure);

/// Reads every stored path of a run back as instance-name sequences, in
/// (pair key, path index) order.
[[nodiscard]] std::vector<std::vector<std::string>> load_paths(
    const vpm::ModelSpace& space, std::string_view run_name);

/// Deletes a run's stored paths.  No-op when absent.
void clear_paths(vpm::ModelSpace& space, std::string_view run_name);

/// Step 8 proper: the union of instance names across the given paths, in
/// first-occurrence order.
[[nodiscard]] std::vector<std::string> merge_instances(
    const std::vector<std::vector<std::string>>& paths);

/// Emits the UPSIM object diagram named `upsim_name`: exactly the
/// instances in `keep` (which must exist in `infrastructure`) and every
/// link of `infrastructure` joining two kept instances.
[[nodiscard]] uml::ObjectModel emit_upsim(
    const uml::ObjectModel& infrastructure, std::string upsim_name,
    const std::vector<std::string>& keep);

}  // namespace upsim::transform
