// ModelRegistry — multi-tenant model serving with versioned hot-swap.
//
// The ROADMAP's "millions of users" shape: one daemon, many organizations,
// many models.  A model is addressed by a `tenant/model` id; the registry
// owns one PerspectiveEngine per *active* version of each model and moves
// versions through a fixed lifecycle:
//
//   upload    parse the bundle XML, run the lint::Analyzer gate (errors
//             reject with the rendered findings; warnings pass), build the
//             engine — all on the calling thread, which the server runs on
//             a pool worker so uploads never block serving — and stage the
//             version.  Staged versions hold a built, query-ready engine.
//   activate  atomically switch the served version.  The swap is one
//             shared_ptr store; queries that already resolved the old
//             version keep their refcounted handle and complete against
//             the old engine, which is torn down when the last in-flight
//             holder releases it (drain by refcount — no wait loop, no
//             lock on the query side).
//   delete    drop a staged version, or the whole model.
//
// Query hot path: the *default* model (old clients send no "model"
// envelope member) is resolved through a lock-free
// std::atomic<std::shared_ptr<ServingModel>> load; named models take one
// shared_mutex read lock for the id lookup.  Mutations (upload bookkeeping,
// activate, delete) take the write lock but never hold it across a bundle
// parse or an engine build.
//
// Per-tenant quotas guard the shared daemon: model count and per-bundle
// byte caps reject uploads (403-flavoured RegistryError), a concurrent
// in-flight request cap sheds query load (429-flavoured QuotaError) via
// RAII RequestTicket.  All engines share one util::ThreadPool — engine
// queries never submit nested pool tasks, so N models do not mean
// N * hardware_concurrency threads.
//
// Observation feedback: every model id owns one ObservationStore that
// survives versions; report_observations folds into it and pushes
// element-scoped overrides into the active engine, and activate() re-plays
// the store onto the incoming engine so measured MTBF/MTTR estimates
// persist across hot-swaps.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/perspective_engine.hpp"
#include "lint/diagnostics.hpp"
#include "registry/observation.hpp"
#include "service/service.hpp"
#include "umlio/serialize.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace upsim::registry {

/// A registry operation that cannot proceed, carrying an HTTP-flavoured
/// status (the server responds with it verbatim) and a machine code.
class RegistryError : public Error {
 public:
  RegistryError(int status, std::string code, const std::string& message)
      : Error(message), status_(status), code_(std::move(code)) {}

  [[nodiscard]] int status() const noexcept { return status_; }
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  int status_;
  std::string code_;
};

/// Quota violation: 403 (model count / bundle bytes) or 429 (concurrency).
class QuotaError : public RegistryError {
 public:
  using RegistryError::RegistryError;
};

/// Per-tenant limits; 0 = unlimited.
struct TenantQuota {
  std::size_t max_models = 0;           ///< distinct model ids per tenant
  std::size_t max_bundle_bytes = 0;     ///< per uploaded bundle document
  std::size_t max_concurrent_requests = 0;  ///< in-flight model requests
  /// When true, semantic lint findings (UPS1xx infrastructure mode) that no
  /// baseline fingerprint suppresses promote from upload warnings to a
  /// RegistryError(400, "semantic_lint_failed") rejection.
  bool strict_semantic = false;
};

/// `tenant/model` — both segments non-empty, charset [A-Za-z0-9._-].
struct ModelId {
  std::string tenant;
  std::string model;

  [[nodiscard]] std::string full() const { return tenant + "/" + model; }
  /// Throws RegistryError(400, "bad_model_id") on shape violations.
  [[nodiscard]] static ModelId parse(std::string_view id);
};

/// One built, servable model version.  Handed to queries as
/// shared_ptr<ServingModel>; the last holder tears the engine down — that
/// refcount *is* the drain mechanism.
struct ServingModel {
  std::string id;             ///< "tenant/model"
  std::uint64_t version = 0;  ///< 1-based, per model id
  std::size_t bundle_bytes = 0;

  /// Uploaded models own their bundle and engine; the adopted default
  /// model points at externally owned ones (bundle_ stays null).
  std::unique_ptr<umlio::UmlBundle> owned_bundle;
  std::unique_ptr<engine::PerspectiveEngine> owned_engine;

  engine::PerspectiveEngine* engine = nullptr;        ///< never null
  const service::ServiceCatalog* services = nullptr;  ///< never null
  std::size_t lint_warnings = 0;
  /// Semantic pass findings (infrastructure mode) that survived the
  /// upload's baseline suppression; ride model_upload responses.
  std::vector<lint::Diagnostic> semantic_findings;
  std::size_t semantic_suppressed = 0;
};

/// Decrements its tenant's in-flight counter on destruction.  Default
/// constructed = no quota enforced (counts nothing).
class RequestTicket {
 public:
  RequestTicket() = default;
  explicit RequestTicket(std::shared_ptr<std::atomic<std::int64_t>> counter)
      : counter_(std::move(counter)) {}
  RequestTicket(RequestTicket&&) noexcept = default;
  RequestTicket& operator=(RequestTicket&& other) noexcept {
    release();
    counter_ = std::move(other.counter_);
    return *this;
  }
  RequestTicket(const RequestTicket&) = delete;
  RequestTicket& operator=(const RequestTicket&) = delete;
  ~RequestTicket() { release(); }

 private:
  void release() {
    if (counter_) counter_->fetch_sub(1, std::memory_order_relaxed);
    counter_.reset();
  }
  std::shared_ptr<std::atomic<std::int64_t>> counter_;
};

struct UploadResult {
  std::string id;
  std::uint64_t version = 0;
  std::size_t lint_warnings = 0;
  std::vector<lint::Diagnostic> semantic_findings;
  std::size_t semantic_suppressed = 0;
};

/// Caller-supplied knobs for one upload.
struct UploadOptions {
  /// Baseline fingerprints (lint::fingerprint) suppressing known semantic
  /// findings — the wire-side spelling of `.upsim-lint-baseline.json`.
  std::vector<std::string> baseline_fingerprints;
};

struct ActivateResult {
  std::string id;
  std::uint64_t version = 0;
  std::uint64_t previous_version = 0;  ///< 0 = nothing was active
  /// Observation estimates re-applied onto the incoming engine.
  std::size_t observations_applied = 0;
};

struct ModelInfo {
  std::string id;
  std::string tenant;
  std::uint64_t active_version = 0;  ///< 0 = degraded (nothing active)
  std::vector<std::uint64_t> staged_versions;
  /// Retired version engines still held by in-flight queries.
  std::size_t draining = 0;
  std::uint64_t observations = 0;
};

class ModelRegistry {
 public:
  struct Options {
    /// Template for every built engine; `pool` null = the registry owns a
    /// shared pool of `engine.threads` workers that all engines use.
    engine::EngineOptions engine;
    /// Quota applied to every tenant.
    TenantQuota quota;
    /// The id old clients (no "model" member) resolve to.
    std::string default_id = "default/default";
  };

  ModelRegistry();
  explicit ModelRegistry(Options options);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers an externally owned engine + catalog as the already-active
  /// version 1 of the default model (the pre-registry single-bundle shape;
  /// Server's legacy constructor calls this).  Throws RegistryError(409)
  /// if the default id already has versions.
  void adopt(engine::PerspectiveEngine& engine,
             const service::ServiceCatalog& services);

  /// Parses `bundle_xml`, runs the lint gate (syntactic, then the semantic
  /// pass in infrastructure mode), builds the engine, stages the new
  /// version.  Semantic findings not absorbed by the upload's baseline
  /// fingerprints ride the result as warnings — or reject with
  /// RegistryError(400, "semantic_lint_failed") under a strict_semantic
  /// quota.  Throws ParseError/ModelError on malformed bundles,
  /// RegistryError(400, "lint_failed") on lint errors,
  /// RegistryError(400, "incomplete_bundle") when objects or services are
  /// missing, QuotaError(403) on model-count/bundle-byte quota violations.
  UploadResult upload(std::string_view id, std::string_view bundle_xml,
                      const UploadOptions& upload_options = {});

  /// Switches the served version (0 = newest staged).  Re-applies the
  /// model's observation store onto the incoming engine.  The outgoing
  /// version drains via its shared_ptr refcount.  Throws
  /// RegistryError(404) for unknown id/version.
  ActivateResult activate(std::string_view id, std::uint64_t version = 0);

  /// version > 0: drops that staged version (active versions cannot be
  /// dropped this way — RegistryError(409, "version_active")).
  /// version 0: drops the whole model, active version included (in-flight
  /// holders still complete) and its observation store.
  void erase(std::string_view id, std::uint64_t version = 0);

  /// Active version of `id`; null when unknown or nothing active.
  /// One shared-lock map lookup.
  [[nodiscard]] std::shared_ptr<ServingModel> acquire(std::string_view id);

  /// Active default model; null = degraded.  Lock-free atomic load — the
  /// old-client hot path.
  [[nodiscard]] std::shared_ptr<ServingModel> acquire_default() const;

  /// Takes one in-flight slot for `tenant`; throws QuotaError(429) when the
  /// tenant is at max_concurrent_requests.
  [[nodiscard]] RequestTicket ticket(const std::string& tenant);

  /// The model's observation store (created on demand; survives versions).
  /// Throws RegistryError(404) for an unknown model id.
  [[nodiscard]] std::shared_ptr<ObservationStore> observations(
      std::string_view id);

  [[nodiscard]] std::vector<ModelInfo> list() const;
  [[nodiscard]] std::size_t model_count() const;
  [[nodiscard]] std::size_t tenant_count() const;
  /// Retired engines across all models still held by in-flight queries.
  [[nodiscard]] std::size_t draining_count() const;

  [[nodiscard]] const std::string& default_id() const noexcept {
    return options_.default_id;
  }
  [[nodiscard]] util::ThreadPool& pool() noexcept { return *pool_; }

 private:
  struct ModelEntry {
    ModelId parsed;
    std::uint64_t next_version = 1;
    std::map<std::uint64_t, std::shared_ptr<ServingModel>> staged;
    std::shared_ptr<ServingModel> active;
    std::vector<std::weak_ptr<ServingModel>> retired;
    std::shared_ptr<ObservationStore> observations;

    [[nodiscard]] bool empty() const {
      return staged.empty() && active == nullptr;
    }
  };

  struct TenantState {
    std::shared_ptr<std::atomic<std::int64_t>> in_flight =
        std::make_shared<std::atomic<std::int64_t>>(0);
    std::size_t model_count = 0;
  };

  void init();

  /// Builds a ServingModel from parsed pieces (lint gates + engine build).
  /// No registry lock held.
  std::shared_ptr<ServingModel> build_locked_free(
      ModelId parsed, std::string_view bundle_xml,
      const UploadOptions& upload_options);

  /// Drops dead weak_ptrs; returns live count.  Caller holds the lock.
  static std::size_t prune_retired_locked(ModelEntry& entry);

  Options options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_;

  mutable std::shared_mutex mutex_;
  std::map<std::string, ModelEntry> models_;
  std::map<std::string, TenantState> tenants_;

  /// Mirror of models_[default_id].active, readable without mutex_.
  std::atomic<std::shared_ptr<ServingModel>> default_model_;
};

}  // namespace upsim::registry
