#include "registry/model_registry.hpp"

#include <algorithm>
#include <utility>

#include "lint/analyzer.hpp"
#include "lint/baseline.hpp"
#include "lint/semantic.hpp"

namespace upsim::registry {

namespace {

bool valid_segment(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
  });
}

}  // namespace

ModelId ModelId::parse(std::string_view id) {
  auto slash = id.find('/');
  if (slash == std::string_view::npos ||
      id.find('/', slash + 1) != std::string_view::npos) {
    throw RegistryError(400, "bad_model_id",
                        "model id must be tenant/model, got '" +
                            std::string(id) + "'");
  }
  ModelId parsed{std::string(id.substr(0, slash)),
                 std::string(id.substr(slash + 1))};
  if (!valid_segment(parsed.tenant) || !valid_segment(parsed.model)) {
    throw RegistryError(400, "bad_model_id",
                        "model id segments must be non-empty [A-Za-z0-9._-], "
                        "got '" +
                            std::string(id) + "'");
  }
  return parsed;
}

ModelRegistry::ModelRegistry() { init(); }

ModelRegistry::ModelRegistry(Options options) : options_(std::move(options)) {
  init();
}

void ModelRegistry::init() {
  // Validate the configured default id up front so a typo fails loudly.
  (void)ModelId::parse(options_.default_id);
  if (options_.engine.pool != nullptr) {
    pool_ = options_.engine.pool;
  } else {
    owned_pool_ = std::make_unique<util::ThreadPool>(options_.engine.threads);
    pool_ = owned_pool_.get();
  }
}

void ModelRegistry::adopt(engine::PerspectiveEngine& engine,
                          const service::ServiceCatalog& services) {
  ModelId parsed = ModelId::parse(options_.default_id);
  auto model = std::make_shared<ServingModel>();
  model->id = options_.default_id;
  model->version = 1;
  model->engine = &engine;
  model->services = &services;

  std::unique_lock lock(mutex_);
  auto [it, inserted] = models_.try_emplace(options_.default_id);
  if (!inserted && !it->second.empty()) {
    throw RegistryError(409, "model_exists",
                        "default model '" + options_.default_id +
                            "' already has versions; cannot adopt");
  }
  ModelEntry& entry = it->second;
  entry.parsed = parsed;
  entry.next_version = 2;
  entry.active = model;
  if (inserted) ++tenants_[parsed.tenant].model_count;
  default_model_.store(std::move(model));
}

std::shared_ptr<ServingModel> ModelRegistry::build_locked_free(
    ModelId parsed, std::string_view bundle_xml,
    const UploadOptions& upload_options) {
  auto bundle = std::make_unique<umlio::UmlBundle>(umlio::from_xml(bundle_xml));
  if (bundle->objects == nullptr || bundle->services == nullptr) {
    throw RegistryError(400, "incomplete_bundle",
                        "bundle must carry an object model and services");
  }

  lint::Input input;
  input.objects = bundle->objects.get();
  input.services = bundle->services.get();
  lint::Report report = lint::analyze(input);
  if (report.has_errors()) {
    std::string message = "bundle rejected by lint (" +
                          std::to_string(report.error_count()) + " errors):";
    std::size_t shown = 0;
    for (const lint::Diagnostic& d : report.diagnostics()) {
      if (d.severity != lint::Severity::Error) continue;
      message += std::string(" [") + d.code() + "] " + d.message + ";";
      if (++shown == 5) break;
    }
    throw RegistryError(400, "lint_failed", message);
  }

  // Semantic pass, infrastructure mode: no mappings exist at upload time,
  // so the graph's own articulation skeleton is what there is to judge.
  lint::SemanticOptions sem_options;
  sem_options.mtbf_attribute = options_.engine.projection.mtbf_attribute;
  sem_options.mttr_attribute = options_.engine.projection.mttr_attribute;
  lint::SemanticInput sem_input;
  sem_input.objects = bundle->objects.get();
  lint::Report semantic = lint::analyze_semantic(sem_input, sem_options);
  std::size_t semantic_suppressed = 0;
  if (!upload_options.baseline_fingerprints.empty()) {
    semantic = lint::apply_baseline(
        semantic,
        lint::baseline_from_fingerprints(upload_options.baseline_fingerprints),
        &semantic_suppressed);
  }
  if (options_.quota.strict_semantic && !semantic.empty()) {
    std::string message = "bundle rejected by semantic lint (" +
                          std::to_string(semantic.size()) +
                          " unsuppressed findings):";
    std::size_t shown = 0;
    for (const lint::Diagnostic& d : semantic.diagnostics()) {
      message += std::string(" [") + d.code() + "] " + d.message + ";";
      if (++shown == 5) break;
    }
    throw RegistryError(400, "semantic_lint_failed", message);
  }

  engine::EngineOptions eopts = options_.engine;
  eopts.pool = pool_;
  // The registry gate just ran; no need to lint again inside the engine.
  eopts.lint_model = false;

  auto model = std::make_shared<ServingModel>();
  model->id = parsed.full();
  model->bundle_bytes = bundle_xml.size();
  model->services = bundle->services.get();
  model->lint_warnings = report.warning_count();
  model->semantic_findings = semantic.diagnostics();
  model->semantic_suppressed = semantic_suppressed;
  model->owned_bundle = std::move(bundle);
  model->owned_engine = std::make_unique<engine::PerspectiveEngine>(
      *model->owned_bundle->objects, eopts);
  model->engine = model->owned_engine.get();
  return model;
}

UploadResult ModelRegistry::upload(std::string_view id,
                                   std::string_view bundle_xml,
                                   const UploadOptions& upload_options) {
  ModelId parsed = ModelId::parse(id);
  const std::string full = parsed.full();
  if (options_.quota.max_bundle_bytes != 0 &&
      bundle_xml.size() > options_.quota.max_bundle_bytes) {
    throw QuotaError(403, "bundle_too_large",
                     "bundle of " + std::to_string(bundle_xml.size()) +
                         " bytes exceeds the per-bundle quota of " +
                         std::to_string(options_.quota.max_bundle_bytes));
  }

  // Reserve the version (and the model slot, quota-checked) up front so
  // concurrent uploads serialize their bookkeeping but build in parallel.
  std::uint64_t version = 0;
  bool created = false;
  {
    std::unique_lock lock(mutex_);
    auto it = models_.find(full);
    if (it == models_.end()) {
      TenantState& tenant = tenants_[parsed.tenant];
      if (options_.quota.max_models != 0 &&
          tenant.model_count + 1 > options_.quota.max_models) {
        throw QuotaError(403, "model_quota",
                         "tenant '" + parsed.tenant + "' is at its quota of " +
                             std::to_string(options_.quota.max_models) +
                             " models");
      }
      it = models_.try_emplace(full).first;
      it->second.parsed = parsed;
      ++tenant.model_count;
      created = true;
    }
    version = it->second.next_version++;
  }

  std::shared_ptr<ServingModel> model;
  try {
    model = build_locked_free(parsed, bundle_xml, upload_options);
  } catch (...) {
    std::unique_lock lock(mutex_);
    auto it = models_.find(full);
    if (created && it != models_.end() && it->second.empty()) {
      models_.erase(it);
      --tenants_[parsed.tenant].model_count;
    }
    throw;
  }
  model->version = version;

  std::unique_lock lock(mutex_);
  models_[full].staged[version] = model;
  return UploadResult{full, version, model->lint_warnings,
                      model->semantic_findings, model->semantic_suppressed};
}

ActivateResult ModelRegistry::activate(std::string_view id,
                                       std::uint64_t version) {
  const std::string full(id);
  ActivateResult result;
  std::shared_ptr<ServingModel> outgoing;  // destroyed after the lock drops
  {
    std::unique_lock lock(mutex_);
    auto it = models_.find(full);
    if (it == models_.end()) {
      throw RegistryError(404, "unknown_model", "unknown model '" + full + "'");
    }
    ModelEntry& entry = it->second;
    if (version == 0) {
      if (entry.staged.empty()) {
        throw RegistryError(404, "no_staged_version",
                            "model '" + full + "' has no staged version");
      }
      version = entry.staged.rbegin()->first;
    }
    auto staged_it = entry.staged.find(version);
    if (staged_it == entry.staged.end()) {
      throw RegistryError(404, "unknown_version",
                          "model '" + full + "' has no staged version " +
                              std::to_string(version));
    }
    std::shared_ptr<ServingModel> incoming = std::move(staged_it->second);
    entry.staged.erase(staged_it);

    if (entry.observations != nullptr) {
      ApplyReport applied = entry.observations->apply_to(*incoming->engine);
      result.observations_applied = applied.elements_applied;
    }

    outgoing = std::move(entry.active);
    result.previous_version = outgoing ? outgoing->version : 0;
    entry.active = incoming;
    if (outgoing != nullptr) entry.retired.push_back(outgoing);
    prune_retired_locked(entry);
    if (full == options_.default_id) default_model_.store(incoming);

    result.id = full;
    result.version = version;
  }
  // `outgoing` dies here (or later, with the last in-flight query).
  return result;
}

void ModelRegistry::erase(std::string_view id, std::uint64_t version) {
  const std::string full(id);
  std::shared_ptr<ServingModel> dropped;  // destroyed after the lock drops
  std::map<std::uint64_t, std::shared_ptr<ServingModel>> dropped_staged;
  std::unique_lock lock(mutex_);
  auto it = models_.find(full);
  if (it == models_.end()) {
    throw RegistryError(404, "unknown_model", "unknown model '" + full + "'");
  }
  ModelEntry& entry = it->second;
  if (version != 0) {
    if (entry.active != nullptr && entry.active->version == version) {
      throw RegistryError(409, "version_active",
                          "version " + std::to_string(version) + " of '" +
                              full + "' is active; activate another version "
                              "or delete the whole model");
    }
    auto staged_it = entry.staged.find(version);
    if (staged_it == entry.staged.end()) {
      throw RegistryError(404, "unknown_version",
                          "model '" + full + "' has no staged version " +
                              std::to_string(version));
    }
    dropped = std::move(staged_it->second);
    entry.staged.erase(staged_it);
    return;
  }
  dropped = std::move(entry.active);
  dropped_staged = std::move(entry.staged);
  --tenants_[entry.parsed.tenant].model_count;
  models_.erase(it);
  if (full == options_.default_id) default_model_.store(nullptr);
}

std::shared_ptr<ServingModel> ModelRegistry::acquire(std::string_view id) {
  if (id.empty()) return acquire_default();
  std::shared_lock lock(mutex_);
  auto it = models_.find(std::string(id));
  return it == models_.end() ? nullptr : it->second.active;
}

std::shared_ptr<ServingModel> ModelRegistry::acquire_default() const {
  return default_model_.load();
}

RequestTicket ModelRegistry::ticket(const std::string& tenant) {
  const std::size_t max = options_.quota.max_concurrent_requests;
  if (max == 0) return RequestTicket{};
  std::shared_ptr<std::atomic<std::int64_t>> counter;
  {
    std::shared_lock lock(mutex_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) counter = it->second.in_flight;
  }
  if (counter == nullptr) {
    std::unique_lock lock(mutex_);
    counter = tenants_[tenant].in_flight;
  }
  std::int64_t previous = counter->fetch_add(1, std::memory_order_relaxed);
  if (previous >= static_cast<std::int64_t>(max)) {
    counter->fetch_sub(1, std::memory_order_relaxed);
    throw QuotaError(429, "too_many_requests",
                     "tenant '" + tenant + "' is at its quota of " +
                         std::to_string(max) + " concurrent requests");
  }
  return RequestTicket{std::move(counter)};
}

std::shared_ptr<ObservationStore> ModelRegistry::observations(
    std::string_view id) {
  const std::string full(id.empty() ? std::string_view(options_.default_id)
                                    : id);
  std::unique_lock lock(mutex_);
  auto it = models_.find(full);
  if (it == models_.end()) {
    throw RegistryError(404, "unknown_model", "unknown model '" + full + "'");
  }
  if (it->second.observations == nullptr) {
    it->second.observations = std::make_shared<ObservationStore>();
  }
  return it->second.observations;
}

std::size_t ModelRegistry::prune_retired_locked(ModelEntry& entry) {
  std::erase_if(entry.retired,
                [](const std::weak_ptr<ServingModel>& w) { return w.expired(); });
  return entry.retired.size();
}

std::vector<ModelInfo> ModelRegistry::list() const {
  std::shared_lock lock(mutex_);
  std::vector<ModelInfo> out;
  out.reserve(models_.size());
  for (const auto& [id, entry] : models_) {
    ModelInfo info;
    info.id = id;
    info.tenant = entry.parsed.tenant;
    info.active_version = entry.active ? entry.active->version : 0;
    info.staged_versions.reserve(entry.staged.size());
    for (const auto& [v, model] : entry.staged) info.staged_versions.push_back(v);
    info.draining = static_cast<std::size_t>(std::count_if(
        entry.retired.begin(), entry.retired.end(),
        [](const std::weak_ptr<ServingModel>& w) { return !w.expired(); }));
    info.observations =
        entry.observations ? entry.observations->observations() : 0;
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t ModelRegistry::model_count() const {
  std::shared_lock lock(mutex_);
  return models_.size();
}

std::size_t ModelRegistry::tenant_count() const {
  std::shared_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [tenant, state] : tenants_) {
    if (state.model_count > 0) ++n;
  }
  return n;
}

std::size_t ModelRegistry::draining_count() const {
  std::shared_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, entry] : models_) {
    n += static_cast<std::size_t>(std::count_if(
        entry.retired.begin(), entry.retired.end(),
        [](const std::weak_ptr<ServingModel>& w) { return !w.expired(); }));
  }
  return n;
}

}  // namespace upsim::registry
