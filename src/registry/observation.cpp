#include "registry/observation.hpp"

#include <utility>

#include "util/error.hpp"

namespace upsim::registry {

Estimate ObservationStore::ElementState::estimate() const {
  Estimate e;
  e.up_intervals = up_n;
  e.down_intervals = down_n;
  if (up_n > 0) e.mtbf_hours = up_total_hours / static_cast<double>(up_n);
  if (down_n > 0) e.mttr_hours = down_total_hours / static_cast<double>(down_n);
  return e;
}

ObservationStore::ObservationStore() : ObservationStore(Options{}) {}

ObservationStore::ObservationStore(Options options)
    : options_(std::move(options)) {}

Estimate ObservationStore::observe(const std::string& element, bool failure,
                                   double t_hours) {
  if (element.empty()) throw ModelError("observation names no element");
  if (t_hours < 0.0) throw ModelError("observation time must be >= 0");
  std::lock_guard lock(mutex_);
  ElementState& state = elements_[element];
  if (state.ever_observed && t_hours < state.last_change_hours) {
    throw ModelError("observations for '" + element +
                     "' must be time-ordered (got t=" +
                     std::to_string(t_hours) + " after t=" +
                     std::to_string(state.last_change_hours) + ")");
  }
  ++observations_;
  if (failure) {
    if (!state.down) {
      // Up since the last transition (or since t = 0): one MTBF sample.
      state.up_total_hours += t_hours - state.last_change_hours;
      ++state.up_n;
      state.down = true;
      state.last_change_hours = t_hours;
    }
    // Failure while already down: duplicate report, state only.
  } else {
    if (state.down) {
      state.down_total_hours += t_hours - state.last_change_hours;
      ++state.down_n;
      state.down = false;
      state.last_change_hours = t_hours;
    } else if (!state.ever_observed) {
      // First-ever event is a repair: the downtime start is unknown, so no
      // interval can be measured — just anchor the clock.
      state.last_change_hours = t_hours;
    }
    // Repair while already up (with history): duplicate report, ignored.
  }
  state.ever_observed = true;
  return state.estimate();
}

Estimate ObservationStore::estimate(const std::string& element) const {
  std::lock_guard lock(mutex_);
  auto it = elements_.find(element);
  return it == elements_.end() ? Estimate{} : it->second.estimate();
}

std::vector<std::pair<std::string, Estimate>> ObservationStore::snapshot()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, Estimate>> out;
  out.reserve(elements_.size());
  for (const auto& [name, state] : elements_) {
    if (state.up_n == 0 && state.down_n == 0) continue;
    out.emplace_back(name, state.estimate());
  }
  return out;
}

ApplyReport ObservationStore::apply_one_locked(
    engine::PerspectiveEngine& engine, const std::string& element,
    const ElementState& state) const {
  ApplyReport report;
  bool applied = false;
  try {
    if (state.up_n > 0) {
      auto r = engine.set_property_override(
          element, options_.mtbf_attribute,
          state.up_total_hours / static_cast<double>(state.up_n));
      report.affected_keys += r.affected_keys;
      applied = true;
    }
    if (state.down_n > 0) {
      auto r = engine.set_property_override(
          element, options_.mttr_attribute,
          state.down_total_hours / static_cast<double>(state.down_n));
      report.affected_keys += r.affected_keys;
      applied = true;
    }
  } catch (const NotFoundError&) {
    // The active bundle does not contain this element; keep the estimate —
    // a later version may.
    report.elements_skipped = 1;
    return report;
  }
  if (applied) report.elements_applied = 1;
  return report;
}

ApplyReport ObservationStore::apply_to(
    engine::PerspectiveEngine& engine,
    const std::vector<std::string>* only) const {
  std::lock_guard lock(mutex_);
  ApplyReport total;
  auto fold = [&total](const ApplyReport& one) {
    total.elements_applied += one.elements_applied;
    total.elements_skipped += one.elements_skipped;
    total.affected_keys += one.affected_keys;
  };
  if (only != nullptr) {
    for (const std::string& name : *only) {
      auto it = elements_.find(name);
      if (it == elements_.end()) continue;
      if (it->second.up_n == 0 && it->second.down_n == 0) continue;
      fold(apply_one_locked(engine, it->first, it->second));
    }
  } else {
    for (const auto& [name, state] : elements_) {
      if (state.up_n == 0 && state.down_n == 0) continue;
      fold(apply_one_locked(engine, name, state));
    }
  }
  return total;
}

std::uint64_t ObservationStore::observations() const {
  std::lock_guard lock(mutex_);
  return observations_;
}

}  // namespace upsim::registry
