// Observation-driven MTBF/MTTR estimation — the Paterson & Calinescu
// "observation-enhanced QoS analysis" loop closed over the wire.
//
// The paper freezes dependability attributes at model-load time; a fleet
// does not get that luxury.  Monitoring reports discrete failure/repair
// observations per infrastructure element; ObservationStore folds them
// into running alternating-renewal interval estimates:
//
//   every element starts Up at t = 0 (scenario convention);
//   a failure at t closes an up interval   -> one MTBF sample,
//   a repair  at t closes a down interval  -> one MTTR sample,
//
// and the running estimate is the interval mean — the exponential MLE,
// matching the generator model of scenario::generate_failure_trace, so a
// generated trace with known rates converges onto its own parameters
// (tests/test_registry.cpp pins the tolerance).
//
// Estimates flow into a live engine through the element-scoped
// set_property_override() path: structure-only caches survive, the epoch
// holds, and only availability answers routed through the updated elements
// change — never a coarse flush.
//
// Thread safety: all members are safe to call concurrently; one mutex
// guards the per-element table.  A store outlives model versions — the
// registry re-applies it to every newly activated engine so estimates
// survive hot-swaps.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/perspective_engine.hpp"

namespace upsim::registry {

/// Running estimate for one element.
struct Estimate {
  std::uint64_t up_intervals = 0;    ///< closed up intervals (MTBF samples)
  std::uint64_t down_intervals = 0;  ///< closed down intervals (MTTR samples)
  double mtbf_hours = 0.0;           ///< mean up interval; valid when up_intervals > 0
  double mttr_hours = 0.0;           ///< mean down interval; valid when down_intervals > 0
};

/// What one apply_to() pass changed on an engine.
struct ApplyReport {
  std::size_t elements_applied = 0;  ///< elements with >= 1 override set
  std::size_t elements_skipped = 0;  ///< estimates naming no engine element
  std::uint64_t affected_keys = 0;   ///< cumulative reverse-index matches
};

class ObservationStore {
 public:
  /// Graph attribute names the estimates override (the projected lowercase
  /// names, matching scenario property_update events).
  struct Options {
    std::string mtbf_attribute = "mtbf";
    std::string mttr_attribute = "mttr";
  };

  ObservationStore();
  explicit ObservationStore(Options options);

  /// Folds one observation in and returns the element's estimate after it.
  /// `t_hours` is scenario time; observations for one element must be
  /// non-decreasing in t (throws ModelError otherwise).  A failure while
  /// already down (or a repair while up with no history) only moves the
  /// state — duplicate monitoring reports never fabricate intervals.
  Estimate observe(const std::string& element, bool failure, double t_hours);

  /// Estimate for one element (zero-valued when never observed).
  [[nodiscard]] Estimate estimate(const std::string& element) const;

  /// All elements with at least one closed interval, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, Estimate>> snapshot() const;

  /// Pushes every usable estimate into `engine` via set_property_override.
  /// `only` restricts the pass to those element names (null = all).
  /// Elements the engine does not know are skipped, not an error — a newly
  /// activated bundle may cover a different element set.
  ApplyReport apply_to(engine::PerspectiveEngine& engine,
                       const std::vector<std::string>* only = nullptr) const;

  [[nodiscard]] std::uint64_t observations() const;

 private:
  struct ElementState {
    bool down = false;
    bool ever_observed = false;  ///< false: Up since t = 0 by convention
    double last_change_hours = 0.0;
    double up_total_hours = 0.0;
    double down_total_hours = 0.0;
    std::uint64_t up_n = 0;
    std::uint64_t down_n = 0;

    [[nodiscard]] Estimate estimate() const;
  };

  ApplyReport apply_one_locked(engine::PerspectiveEngine& engine,
                               const std::string& element,
                               const ElementState& state) const;

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, ElementState> elements_;
  std::uint64_t observations_ = 0;
};

}  // namespace upsim::registry
