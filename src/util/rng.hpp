// Deterministic random-number generation for synthetic topologies and
// Monte-Carlo sampling.
//
// All stochastic code in upsim takes an explicit seed so that experiments
// are reproducible run-to-run; nothing reads entropy from the environment.
#pragma once

#include <cstdint>
#include <random>

namespace upsim::util {

/// Thin wrapper over a 64-bit Mersenne engine with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential draw with the given rate (events per unit time).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Derives an independent child stream; used to give each worker thread
  /// its own engine while keeping the whole run a function of one seed.
  [[nodiscard]] Rng fork() {
    return Rng(static_cast<std::uint64_t>(engine_()) * 0x9E3779B97F4A7C15ULL +
               0xD1B54A32D192ED03ULL);
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace upsim::util
