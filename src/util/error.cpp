#include "util/error.hpp"

namespace upsim::detail {

void throw_invariant_failure(std::string_view expr, std::string_view file,
                             int line) {
  throw InvariantError("invariant violated: " + std::string(expr) + " at " +
                       std::string(file) + ":" + std::to_string(line));
}

}  // namespace upsim::detail
