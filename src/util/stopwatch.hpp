// Monotonic wall-clock stop-watch for the experiment harnesses.
#pragma once

#include <chrono>

namespace upsim::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Seconds elapsed, then restarts the window: one call replaces the
  /// read-then-reset() pair when timing consecutive stages.
  double lap() {
    const auto now = Clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

  /// Milliseconds variant of lap().
  double lap_millis() { return lap() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace upsim::util
