#include "util/table.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace upsim::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw ModelError("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw ModelError("TextTable: row has " + std::to_string(row.size()) +
                     " cells, header has " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render(std::size_t indent) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const std::string prefix(indent, ' ');
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = prefix + "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = emit_row(header_);
  std::string rule = prefix + "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

}  // namespace upsim::util
