#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace upsim::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool is_identifier(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto head = static_cast<unsigned char>(name.front());
  if (std::isalpha(head) == 0 && head != '_') return false;
  for (char c : name.substr(1)) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) == 0 && c != '_' && c != '.' && c != '-') return false;
  }
  return true;
}

std::string format_sig(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

}  // namespace upsim::util
