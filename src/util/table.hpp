// Plain-text table rendering for the experiment report binaries.
//
// The benchmarks that regenerate the paper's tables print through this so
// all reports share one format (aligned columns, `|` separators, a rule
// under the header row — close to the paper's Table I layout).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace upsim::util {

class TextTable {
 public:
  /// Creates a table with the given header row; every subsequent row must
  /// have the same number of cells.
  explicit TextTable(std::vector<std::string> header);

  /// Appends one data row.  Throws ModelError on column-count mismatch.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table; `indent` spaces prefix every line.
  [[nodiscard]] std::string render(std::size_t indent = 0) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace upsim::util
