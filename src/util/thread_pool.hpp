// A fixed-size work-stealing-free thread pool with a future-based submit API.
//
// Used by pathdisc (parallel multi-pair discovery) and depend (parallel
// Monte-Carlo sampling).  Tasks must not block on other tasks submitted to
// the same pool (no nested dependency support); all upsim uses are flat
// fan-out/fan-in, which this covers.
//
// When obs::enabled(), the pool reports into the global registry:
//   threadpool.queue_depth      gauge      tasks waiting after each move
//   threadpool.tasks_completed  counter    tasks finished
//   threadpool.task_wait_us     histogram  enqueue -> dequeue latency
//   threadpool.task_exec_us     histogram  task body execution time
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace upsim::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues `fn(args...)` and returns a future for its result.
  template <typename Fn, typename... Args>
  [[nodiscard]] auto submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using R = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<Fn>(fn),
         ... a = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(f), std::move(a)...);
        });
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::function<void()> fn;
    /// Valid only when `timed` (obs was enabled at enqueue time).
    std::chrono::steady_clock::time_point enqueued{};
    bool timed = false;
  };

  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Job> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace upsim::util
